#!/usr/bin/env python3
"""Architecture analyzer: the src/ include graph vs. the declared layering.

The repo's include convention (see CMakeLists.txt) is that every source
file includes project headers relative to src/ with quotes — e.g.
`#include "geom/grid_index.h"` — so the first path component of a quoted
include *is* the target module, and the module of a file is the first
directory under src/. This script parses that graph for all of src/ and
checks it against scripts/layering.json, which declares the layer order

    base -> {geom, qsr} -> {indoor, core}
         -> {io, louvre, mining, storage, sched} -> query

plus the explicit list of allowed module edges. A module may only depend
downward or sideways along a declared edge; the checker fails on

  - cycles anywhere in the observed module graph,
  - upward edges (a lower layer including a higher one), and
  - edges absent from the manifest (even downward ones),

naming each offending edge with a witness include site (file:line). There
is deliberately no suppression mechanism: a violation is fixed by moving
code (or, for a genuinely new legal dependency, by declaring the edge in
the manifest and keeping the graph acyclic).

Artifacts: a Graphviz `deps.dot` (layers as ranked clusters, violating
edges in red) and a machine-readable `deps.json` (modules, edges with
include counts and witnesses, violations). CI uploads both.

Exit codes: 0 clean, 1 violations found, 2 usage/manifest/IO error.
"""

import argparse
import json
import os
import re
import sys

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
SOURCE_EXTENSIONS = (".h", ".hpp", ".hh", ".inc", ".cc", ".cpp", ".cxx")


class ManifestError(Exception):
    """The layering manifest itself is malformed."""


class Edge:
    """One observed cross-module dependency, with include-site witnesses."""

    def __init__(self, src, dst):
        self.src = src
        self.dst = dst
        self.count = 0
        self.witnesses = []  # "file:line: #include "..."" strings

    def add(self, path, line_no, include):
        self.count += 1
        if len(self.witnesses) < 3:
            self.witnesses.append('%s:%d: #include "%s"' % (path, line_no, include))


class Manifest:
    """Parsed scripts/layering.json: layer ranks + allowed edge set."""

    def __init__(self, layers, edges):
        self.layers = layers            # list of lists of module names
        self.edges = edges              # module -> set of allowed targets
        self.rank = {}                  # module -> layer index (0 = bottom)
        for index, layer in enumerate(layers):
            for module in layer:
                self.rank[module] = index

    def allows(self, src, dst):
        return dst in self.edges.get(src, set())


def load_manifest(path):
    """Load and validate the layering manifest; raises ManifestError."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            raw = json.load(fh)
    except (OSError, ValueError) as err:
        raise ManifestError("cannot read manifest %s: %s" % (path, err))

    layers = raw.get("layers")
    if not isinstance(layers, list) or not layers:
        raise ManifestError("manifest needs a non-empty 'layers' list")
    seen = set()
    for layer in layers:
        if not isinstance(layer, list) or not layer:
            raise ManifestError("each layer must be a non-empty list of modules")
        for module in layer:
            if module in seen:
                raise ManifestError("module '%s' appears in two layers" % module)
            seen.add(module)

    raw_edges = raw.get("edges")
    if not isinstance(raw_edges, dict):
        raise ManifestError("manifest needs an 'edges' object")
    manifest = Manifest(layers, {m: set(t) for m, t in raw_edges.items()})
    for src, targets in manifest.edges.items():
        if src not in manifest.rank:
            raise ManifestError("edge source '%s' is not in any layer" % src)
        for dst in targets:
            if dst not in manifest.rank:
                raise ManifestError(
                    "edge %s -> %s: target is not in any layer" % (src, dst))
            if dst == src:
                raise ManifestError("self-edge on '%s'" % src)
            if manifest.rank[dst] > manifest.rank[src]:
                raise ManifestError(
                    "edge %s -> %s points upward (layer %d -> %d); the "
                    "manifest may only declare downward or same-layer edges"
                    % (src, dst, manifest.rank[src], manifest.rank[dst]))
    cycle = find_cycle(manifest.edges)
    if cycle:
        raise ManifestError(
            "declared edges contain a cycle: %s" % " -> ".join(cycle))
    for module in manifest.rank:
        manifest.edges.setdefault(module, set())
    return manifest


def find_cycle(edges):
    """Return one cycle in the module graph as [a, b, ..., a], else None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {}
    stack = []

    def visit(node):
        color[node] = GRAY
        stack.append(node)
        for nxt in sorted(edges.get(node, ())):
            state = color.get(nxt, WHITE)
            if state == GRAY:
                return stack[stack.index(nxt):] + [nxt]
            if state == WHITE:
                found = visit(nxt)
                if found:
                    return found
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(edges):
        if color.get(node, WHITE) == WHITE:
            found = visit(node)
            if found:
                return found
    return None


def scan_includes(src_root):
    """Walk src/ and return ({module: set(files)}, {(src,dst): Edge}, errors).

    Only quoted includes whose first path component is a known-looking
    module directory are graph edges; system includes and intra-module
    includes are ignored. Files under src/ whose module directory the
    caller's manifest does not declare are reported by the caller.
    """
    modules = {}
    edges = {}
    errors = []
    for dirpath, dirnames, filenames in os.walk(src_root):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(SOURCE_EXTENSIONS):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, src_root)
            parts = rel.split(os.sep)
            if len(parts) < 2:
                errors.append(
                    "%s: file sits directly under src/ — every source file "
                    "belongs to a module directory" % rel)
                continue
            module = parts[0]
            modules.setdefault(module, set()).add(rel)
            try:
                with open(path, "r", encoding="utf-8", errors="replace") as fh:
                    lines = fh.readlines()
            except OSError as err:
                errors.append("%s: unreadable: %s" % (rel, err))
                continue
            for line_no, line in enumerate(lines, start=1):
                match = INCLUDE_RE.match(line)
                if not match:
                    continue
                include = match.group(1)
                target = include.split("/", 1)[0]
                if "/" not in include:
                    # A bare quoted include ("foo.h") is not src/-relative;
                    # the include-convention lint owns that complaint.
                    continue
                if target == module:
                    continue
                edge = edges.setdefault((module, target), Edge(module, target))
                edge.add(rel, line_no, include)
    return modules, edges, errors


def check(manifest, modules, edges):
    """Return the list of violation strings for the observed graph."""
    violations = []
    for module in sorted(modules):
        if module not in manifest.rank:
            violations.append(
                "unknown module 'src/%s/' — not declared in any layer of the "
                "manifest (add it to scripts/layering.json)" % module)
    for (src, dst) in sorted(edges):
        edge = edges[(src, dst)]
        witness = edge.witnesses[0] if edge.witnesses else "?"
        if dst not in manifest.rank:
            violations.append(
                "edge %s -> %s targets unknown module '%s' (%s)"
                % (src, dst, dst, witness))
            continue
        if src not in manifest.rank:
            continue  # already reported as an unknown module
        if manifest.rank[dst] > manifest.rank[src]:
            violations.append(
                "upward edge %s -> %s: layer %d may not include layer %d (%s)"
                % (src, dst, manifest.rank[src], manifest.rank[dst], witness))
        elif not manifest.allows(src, dst):
            violations.append(
                "undeclared edge %s -> %s: not in the manifest's allowed "
                "edges for '%s' (%s)" % (src, dst, src, witness))
    observed = {}
    for (src, dst) in edges:
        observed.setdefault(src, set()).add(dst)
    cycle = find_cycle(observed)
    if cycle:
        violations.append(
            "include cycle between modules: %s" % " -> ".join(cycle))
    return violations


def edge_status(manifest, src, dst):
    if src not in manifest.rank or dst not in manifest.rank:
        return "unknown-module"
    if manifest.rank[dst] > manifest.rank[src]:
        return "upward"
    if not manifest.allows(src, dst):
        return "undeclared"
    return "ok"


def write_dot(path, manifest, modules, edges):
    lines = ["digraph sitm_deps {", "  rankdir=BT;",
             '  node [shape=box, fontname="Helvetica"];']
    for index, layer in enumerate(manifest.layers):
        lines.append("  subgraph cluster_layer_%d {" % index)
        lines.append('    label="layer %d"; style=dashed; rank=same;' % index)
        for module in layer:
            attr = "" if module in modules else ' [style=dotted]'
            lines.append("    %s%s;" % (module, attr))
        lines.append("  }")
    for module in sorted(modules):
        if module not in manifest.rank:
            lines.append('  %s [color=red, label="%s (unknown)"];'
                         % (module, module))
    for (src, dst) in sorted(edges):
        status = edge_status(manifest, src, dst)
        attrs = ['label="%d"' % edges[(src, dst)].count]
        if status != "ok":
            attrs.append("color=red")
            attrs.append("penwidth=2")
        lines.append("  %s -> %s [%s];" % (src, dst, ", ".join(attrs)))
    lines.append("}")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")


def write_json(path, manifest, modules, edges, violations):
    payload = {
        "layers": manifest.layers,
        "modules": {m: sorted(files) for m, files in sorted(modules.items())},
        "edges": [
            {
                "from": src,
                "to": dst,
                "includes": edges[(src, dst)].count,
                "status": edge_status(manifest, src, dst),
                "witnesses": edges[(src, dst)].witnesses,
            }
            for (src, dst) in sorted(edges)
        ],
        "violations": violations,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")


def run_analysis(root, manifest_path, dot_path=None, json_path=None,
                 out=sys.stdout, err=sys.stderr):
    """Analyze <root>/src against the manifest; returns the exit code."""
    src_root = os.path.join(root, "src")
    if not os.path.isdir(src_root):
        print("analyze_deps: no src/ directory under %s" % root, file=err)
        return 2
    try:
        manifest = load_manifest(manifest_path)
    except ManifestError as exc:
        print("analyze_deps: manifest error: %s" % exc, file=err)
        return 2
    modules, edges, scan_errors = scan_includes(src_root)
    if scan_errors:
        for error in scan_errors:
            print("analyze_deps: %s" % error, file=err)
        return 2
    violations = check(manifest, modules, edges)
    if dot_path:
        os.makedirs(os.path.dirname(os.path.abspath(dot_path)), exist_ok=True)
        write_dot(dot_path, manifest, modules, edges)
    if json_path:
        os.makedirs(os.path.dirname(os.path.abspath(json_path)), exist_ok=True)
        write_json(json_path, manifest, modules, edges, violations)
    if violations:
        for violation in violations:
            print("analyze_deps: VIOLATION: %s" % violation, file=err)
        print("analyze_deps: %d violation(s) in the module graph"
              % len(violations), file=err)
        return 1
    print("analyze_deps: %d modules, %d cross-module edges, layering clean"
          % (len(modules), len(edges)), file=out)
    return 0


def main(argv=None):
    script_dir = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(script_dir)
    parser = argparse.ArgumentParser(
        description="Check the src/ include graph against scripts/layering.json")
    parser.add_argument("--root", default=repo_root,
                        help="repo root containing src/ (default: repo)")
    parser.add_argument("--manifest",
                        default=os.path.join(script_dir, "layering.json"),
                        help="layer manifest (default: scripts/layering.json)")
    parser.add_argument("--dot", default=None, metavar="PATH",
                        help="write a Graphviz graph here (default: "
                             "<root>/build/analysis/deps.dot)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the machine-readable report here "
                             "(default: <root>/build/analysis/deps.json)")
    parser.add_argument("--no-artifacts", action="store_true",
                        help="skip writing deps.dot/deps.json")
    args = parser.parse_args(argv)
    dot_path = args.dot
    json_path = args.json
    if not args.no_artifacts:
        analysis_dir = os.path.join(args.root, "build", "analysis")
        if dot_path is None:
            dot_path = os.path.join(analysis_dir, "deps.dot")
        if json_path is None:
            json_path = os.path.join(analysis_dir, "deps.json")
    else:
        dot_path = args.dot
        json_path = args.json
    return run_analysis(args.root, args.manifest, dot_path, json_path)


if __name__ == "__main__":
    sys.exit(main())
