#!/usr/bin/env python3
"""Gates the on-disk size of the bench-emitted EventStore artifacts.

The benches leave deterministic BENCH_*.evst files behind (fixed
simulator seeds, deterministic encoders), so their byte counts are
comparable across machines — unlike timings. This script compares the
current artifacts against a pinned baseline JSON ({filename: bytes})
and fails on growth beyond --threshold (default 0.10 = +10%), the
bytes-per-tuple regression gate for the storage format.

Shrinkage is reported but never fails. An artifact listed in the
baseline but absent on disk FAILS the gate (a silently missing file
would un-gate it); an artifact on disk but not in the baseline is
reported as "added" and suggests --update. Refresh the baseline after
an intentional format change with:
  python3 scripts/check_store_sizes.py bench/baseline/store_sizes.json . --update

Exit status: 0 when the gate passes (or --update / --report-only ran),
1 on growth past the threshold or a missing artifact, 2 on usage or
parse errors. (Regression-tested by scripts/test_compare_benches.py.)

Usage:
  scripts/check_store_sizes.py <baseline_json> <current_dir> [options]

Options:
  --threshold FRACTION   growth threshold (default 0.10 = +10%)
  --update               rewrite the baseline from the current artifacts
  --report-only          print the table but always exit 0
"""

import argparse
import glob
import json
import os
import sys


def current_sizes(directory):
    """Returns {filename: bytes} for every BENCH_*.evst in `directory`."""
    sizes = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.evst"))):
        sizes[os.path.basename(path)] = os.path.getsize(path)
    return sizes


def main(argv):
    parser = argparse.ArgumentParser(
        description="gate BENCH_*.evst sizes against a pinned baseline")
    parser.add_argument("baseline", help="pinned baseline JSON")
    parser.add_argument("current_dir", help="directory with BENCH_*.evst")
    parser.add_argument("--threshold", type=float, default=0.10)
    parser.add_argument("--update", action="store_true")
    parser.add_argument("--report-only", action="store_true")
    try:
        args = parser.parse_args(argv)
    except SystemExit:
        return 2

    if not os.path.isdir(args.current_dir):
        print(f"error: {args.current_dir}: not a directory", file=sys.stderr)
        return 2
    sizes = current_sizes(args.current_dir)

    if args.update:
        if not sizes:
            print(f"error: no BENCH_*.evst under {args.current_dir}; "
                  "refusing to pin an empty baseline", file=sys.stderr)
            return 2
        os.makedirs(os.path.dirname(args.baseline) or ".", exist_ok=True)
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(sizes, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"pinned {len(sizes)} artifact sizes to {args.baseline}")
        return 0

    try:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: {args.baseline}: {err}", file=sys.stderr)
        return 2
    if (not isinstance(baseline, dict) or
            not all(isinstance(v, int) and v > 0 for v in baseline.values())):
        print(f"error: {args.baseline}: expected {{filename: bytes}} with "
              "positive sizes", file=sys.stderr)
        return 2

    failures = 0
    print(f"{'artifact':40} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in sorted(baseline):
        base = baseline[name]
        if name not in sizes:
            print(f"{name:40} {base:12} {'MISSING':>12} {'':>8}  FAIL")
            # A clear per-file error on stderr, not just a table row: CI
            # logs collapse stdout tables, and a silently missing file
            # is the one failure mode that un-gates the whole check.
            print(f"error: {name}: listed in {args.baseline} but missing "
                  f"from {args.current_dir} — regenerate the artifacts "
                  f"(scripts/run_benches.sh) or, if the bench was "
                  f"intentionally removed, re-pin with --update",
                  file=sys.stderr)
            failures += 1
            continue
        cur = sizes[name]
        delta = (cur - base) / base
        verdict = ""
        if delta > args.threshold:
            verdict = "  FAIL (grew past "
            verdict += f"+{args.threshold:.0%})"
            failures += 1
        print(f"{name:40} {base:12} {cur:12} {delta:+8.1%}{verdict}")
    for name in sorted(set(sizes) - set(baseline)):
        print(f"{name:40} {'(added)':>12} {sizes[name]:12} {'':>8}  "
              "not gated; pin with --update")

    if failures:
        print(f"{failures} artifact(s) failed the size gate "
              f"(threshold +{args.threshold:.0%})")
    if args.report_only:
        return 0
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
