#!/usr/bin/env bash
# Runs every bench_* binary and writes one BENCH_<id>.json per bench
# (google-benchmark JSON format) to the output directory.
#
# Usage:
#   scripts/run_benches.sh [bin_dir] [out_dir]
#
# Environment overrides:
#   SITM_BENCH_BIN_DIR   directory holding the bench binaries
#                        (default: $1, then build/bench)
#   SITM_BENCH_OUT_DIR   where BENCH_*.json land (default: $2, then the
#                        current directory — the repo root when invoked via
#                        the `run_benches` CMake target)
#   SITM_BENCH_ARGS      extra flags passed to every bench, e.g.
#                        "--benchmark_min_time=0.01" for a CI smoke run
set -euo pipefail

bin_dir="${SITM_BENCH_BIN_DIR:-${1:-build/bench}}"
out_dir="${SITM_BENCH_OUT_DIR:-${2:-$(pwd)}}"
extra_args="${SITM_BENCH_ARGS:-}"

mkdir -p "$out_dir"

if [ ! -d "$bin_dir" ]; then
  echo "run_benches: bench binary dir not found: $bin_dir" >&2
  echo "run_benches: build first: cmake --build build --target run_benches" >&2
  exit 1
fi

shopt -s nullglob
benches=("$bin_dir"/bench_*)
runnable=()
for bin in "${benches[@]}"; do
  [ -f "$bin" ] && [ -x "$bin" ] && runnable+=("$bin")
done
if [ "${#runnable[@]}" -eq 0 ]; then
  echo "run_benches: no bench_* binaries in $bin_dir" >&2
  exit 1
fi

echo "run_benches: ${#runnable[@]} benches, output -> $out_dir"
failed=0
written=0
for bin in "${runnable[@]}"; do
  name="$(basename "$bin")"
  id="${name#bench_}"
  out_json="$out_dir/BENCH_${id}.json"
  echo
  echo ">>> $name -> $out_json"
  # shellcheck disable=SC2086  # extra_args is intentionally word-split
  if "$bin" --benchmark_out="$out_json" --benchmark_out_format=json \
       $extra_args; then
    written=$((written + 1))
  else
    echo "run_benches: FAILED: $name" >&2
    failed=1
  fi
done

if [ "$failed" -ne 0 ]; then
  echo "run_benches: one or more benches failed" >&2
  exit 1
fi
echo
echo "run_benches: done; wrote $written JSON files"
