#!/usr/bin/env python3
"""Project-specific lint for the SITM tree — invariants no generic tool checks.

Rules (each findable nowhere else: clang-tidy and compiler warnings do
not know this repo's conventions):

  discarded-status     Every call of a function returning base::Status /
                       base::Result must be consumed: bare
                       expression-statement calls and `(void)` silencing
                       casts are errors. The classes are [[nodiscard]],
                       but class-attribute enforcement has compiler gaps
                       (class templates, older toolchains) and `(void)`
                       defeats it entirely; this rule has no gaps. The
                       callee set is derived by scanning src/ headers
                       for Status/Result-returning declarations.
  naked-thread         `std::thread` may appear only in the concurrency
                       substrates — base/parallel.* and the sched
                       executor (ad-hoc threads bypass their determinism
                       and shutdown discipline). `std::thread::id` /
                       `std::thread::hardware_concurrency` type and
                       static accesses are fine anywhere.
  direct-threadpool    Constructing a ThreadPool outside base/ and
                       sched/ is forbidden: layers take a
                       sched::Executor* and go through the task-graph
                       adapters, so scheduling policy (and span tracing)
                       stays in one place. The two substrate test
                       harnesses (tests/base_parallel_test.cc,
                       tests/parallel_stress_test.cc) are exempt — they
                       test the pool itself.
  nondeterministic-rng std::random_device / std::mt19937 / srand / rand
                       are forbidden outside base/rng.h: every random
                       stream must come from sitm::Rng with an explicit
                       seed, or bench/test reproducibility dies.
  pragma-once          Every header carries `#pragma once` (include
                       guards invite copy-paste guard collisions that
                       silently drop declarations).
  include-convention   Project includes are src/-relative: no `"../`,
                       no `"src/` prefixes (they break the single
                       exported include root; see CMakeLists.txt).
  lock-scope-io        Blocking file I/O (fstreams, fopen/fread/fwrite,
                       mmap) inside a MutexLock / manual Lock() /
                       SITM_REQUIRES region. Critical sections must be
                       short and bounded; stage the bytes outside the
                       lock (see TraceSink::WriteJson for the shape).
  lock-scope-store     EventStoreWriter Append/Finish under a lock:
                       both do real I/O and Finish fsyncs — a store
                       flush inside a critical section stalls every
                       thread behind that mutex.
  lock-scope-executor  Submitting parallel work (ParallelFor /
                       ParallelMap / RunGraph / RunGraphInline /
                       Executor::Run) while holding a lock: the workers
                       may need the very mutex the submitter holds —
                       the classic self-deadlock the task-graph
                       adapters exist to prevent.
  lock-wait-no-predicate  CondVar::Wait call sites must sit in a
                       while/do/for predicate loop re-checking the
                       condition (spurious wakeups; see base/mutex.h).
  missing-nodiscard    Status/Result<...>-returning declarations in
                       src/ headers must carry [[nodiscard]] — the
                       discarded-status rule catches bare statements,
                       but only the attribute reaches expression
                       contexts (ternaries, comma operators) and
                       other TUs. friend declarations are exempt
                       (C++17 forbids attributes there).

Suppression: append `sitm-lint: allow(<rule>)` in a comment on the
offending line (or the line directly above) — e.g. the pool's own test
harness legitimately spawns raw std::thread submitters.

Usage: scripts/lint_sitm.py [--root DIR]
Exit status: 0 clean, 1 findings, 2 usage errors.
(Regression-tested by scripts/test_lint_sitm.py, run in CI.)
"""

import argparse
import os
import re
import sys

# Directories scanned relative to the root, and what rules apply where.
SOURCE_DIRS = ("src", "tests", "bench", "examples")
HEADER_DIRS = ("src", "bench")

ALLOW_RE = re.compile(r"sitm-lint:\s*allow\(([a-z-]+)\)")

# Function names that return Status/Result but whose bare call can never
# be a dropped error (none today; extend deliberately, with a comment).
DISCARDED_STATUS_ALLOWLIST = frozenset()

# Status/Result-returning declarations in headers. Matches e.g.
#   Status Validate() const;
#   static Result<GridIndex> Build(...);
#   [[nodiscard]] Result<std::vector<T>> Run(...);
DECL_RE = re.compile(
    r"(?:\[\[nodiscard\]\]\s+)?(?:static\s+|virtual\s+)?"
    r"(?:Status|Result<[^;{}()]+>)\s+(\w+)\s*\(")

# Declarations of the same names with non-Status return types (e.g.
# `void Append(...)` on Trace vs `Status Append(...)` on JsonValue).
# The lint matches call sites by name only, so such names are
# *ambiguous*: bare-statement checking would false-positive on the
# void-returning overloads and is left to the classes' [[nodiscard]]
# attribute (which the compiler resolves with real types); the
# (void)-cast check still applies — casting a void call to void is
# something nobody writes, so a `(void)x.Append(...)` is always
# silencing a Status.
NON_STATUS_DECL_RE = re.compile(
    r"(?:void|bool|int|double|float|auto|std::size_t|std::string)"
    r"\s+(\w+)\s*\(")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line):
    """Blanks string/char literals and // comments so tokens inside them
    never trip a rule. (Block comments spanning lines are rare in this
    tree and handled by the caller's in_block_comment flag.)"""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            if i < n:
                out.append(quote)
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def iter_files(root, dirs, suffixes):
    for d in dirs:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [x for x in dirnames if x != "build"]
            for name in sorted(filenames):
                if name.endswith(suffixes):
                    yield os.path.join(dirpath, name)


def read_lines(path):
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        return fh.read().splitlines()


def allowed(lines, index, rule):
    """True if line `index` (0-based) or the one above carries an
    `sitm-lint: allow(rule)` marker."""
    for probe in (index, index - 1):
        if 0 <= probe < len(lines):
            match = ALLOW_RE.search(lines[probe])
            if match and match.group(1) == rule:
                return True
    return False


def collect_status_returning(root):
    """Returns (unambiguous, all_status): names of functions declared in
    src/ headers returning Status or Result<...>. `unambiguous` excludes
    names that also appear with a non-Status return type somewhere (see
    NON_STATUS_DECL_RE); `all_status` keeps them for the (void)-cast
    check. Declarations spanning lines are joined first."""
    status_names = set()
    other_names = set()
    for path in iter_files(root, ("src",), (".h",)):
        text = "\n".join(
            strip_comments_and_strings(line) for line in read_lines(path))
        # Joining declarations that wrap after the return type or between
        # arguments: collapse all whitespace runs, then scan.
        joined = re.sub(r"\s+", " ", text)
        for match in DECL_RE.finditer(joined):
            status_names.add(match.group(1))
        for match in NON_STATUS_DECL_RE.finditer(joined):
            other_names.add(match.group(1))
    status_names -= DISCARDED_STATUS_ALLOWLIST
    return status_names - other_names, status_names


# A bare call statement: optional receiver chain, then a known callee,
# then arguments closing with `);` at the end of the (joined) statement.
def bare_call_re(names):
    alternation = "|".join(sorted(re.escape(n) for n in names))
    return re.compile(
        r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*(" + alternation + r")\s*\(")


VOID_CAST_RE = re.compile(r"\(\s*void\s*\)\s*[A-Za-z_]")


def check_discarded_status(root, findings):
    unambiguous, names = collect_status_returning(root)
    if not names:
        return
    call_re = bare_call_re(unambiguous) if unambiguous else None
    for path in iter_files(root, SOURCE_DIRS, (".cc", ".cpp", ".h")):
        lines = read_lines(path)
        stripped = [strip_comments_and_strings(line) for line in lines]
        for i, line in enumerate(stripped):
            # Join physical lines until the statement closes (bounded
            # lookahead keeps pathological files cheap).
            statement = line
            j = i
            while (not statement.rstrip().endswith(";") and j + 1 < len(stripped)
                   and j - i < 8):
                j += 1
                statement = statement.rstrip() + " " + stripped[j].strip()
            match = call_re.match(statement) if call_re else None
            if match and statement.rstrip().endswith(";"):
                # A continuation line of a larger expression is not a
                # statement start: the previous line must end one.
                prev = stripped[i - 1].rstrip() if i > 0 else ""
                if prev and not prev.endswith((";", "{", "}", ")")):
                    continue
                if prev.endswith(")") and not re.search(
                        r"\b(if|for|while|switch)\s*\(", prev):
                    continue
                if allowed(lines, i, "discarded-status"):
                    continue
                findings.append(Finding(
                    path, i + 1, "discarded-status",
                    f"return value of Status/Result-returning "
                    f"'{match.group(1)}' is discarded (consume it, or "
                    f"SITM_RETURN_IF_ERROR it)"))
            if VOID_CAST_RE.search(line):
                after = line[line.index("void") + 4:]
                # Identifiers of the cast expression up to its call
                # parenthesis: `(void)writer.Finish()` -> writer, Finish.
                head = after.split("(", 1)[0]
                name = next((n for n in re.findall(r"[A-Za-z_]\w*", head)
                             if n in names), None)
                if name and not allowed(lines, i, "discarded-status"):
                    findings.append(Finding(
                        path, i + 1, "discarded-status",
                        f"(void)-cast silences the Status/Result of "
                        f"'{name}' — handle it instead"))


def check_naked_thread(root, findings):
    exempt = {os.path.join("src", "base", "parallel.h"),
              os.path.join("src", "base", "parallel.cc"),
              os.path.join("src", "sched", "executor.h"),
              os.path.join("src", "sched", "executor.cc")}
    # `(?!::)` keeps std::thread::id / ::hardware_concurrency accesses
    # legal everywhere: they name no thread of execution.
    token = re.compile(r"\bstd::thread\b(?!::)")
    for path in iter_files(root, SOURCE_DIRS, (".cc", ".cpp", ".h")):
        rel = os.path.relpath(path, root)
        if rel in exempt:
            continue
        lines = read_lines(path)
        for i, line in enumerate(lines):
            code = strip_comments_and_strings(line)
            if token.search(code) and not allowed(lines, i, "naked-thread"):
                findings.append(Finding(
                    path, i + 1, "naked-thread",
                    "std::thread outside the base/sched substrates — "
                    "run work on a sched::Executor instead (or justify "
                    "with `sitm-lint: allow(naked-thread)`)"))


# Construction forms only: declarations/references like `ThreadPool&` or
# `ThreadPool*` do not trip the rule (base/parallel.h declares them, and
# they own nothing).
THREADPOOL_CONSTRUCT_RE = re.compile(
    r"\bnew\s+ThreadPool\b|"
    r"\bmake_(?:unique|shared)<\s*ThreadPool\b|"
    r"\bThreadPool\s+[A-Za-z_]\w*\s*[({]|"
    r"\bThreadPool\s*[({]")


def check_direct_threadpool(root, findings):
    exempt_dirs = (os.path.join("src", "base") + os.sep,
                   os.path.join("src", "sched") + os.sep)
    exempt_files = {os.path.join("tests", "base_parallel_test.cc"),
                    os.path.join("tests", "parallel_stress_test.cc")}
    for path in iter_files(root, SOURCE_DIRS, (".cc", ".cpp", ".h")):
        rel = os.path.relpath(path, root)
        if rel.startswith(exempt_dirs) or rel in exempt_files:
            continue
        lines = read_lines(path)
        for i, line in enumerate(lines):
            code = strip_comments_and_strings(line)
            if THREADPOOL_CONSTRUCT_RE.search(code) and not allowed(
                    lines, i, "direct-threadpool"):
                findings.append(Finding(
                    path, i + 1, "direct-threadpool",
                    "ThreadPool constructed outside base/ and sched/ — "
                    "create a sched::Executor and pass it through the "
                    "layer's options (or justify with "
                    "`sitm-lint: allow(direct-threadpool)`)"))


RNG_TOKEN = re.compile(
    r"\bstd::random_device\b|\bstd::mt19937(?:_64)?\b|\bsrand\s*\(|"
    r"(?<![\w:])rand\s*\(")


def check_nondeterministic_rng(root, findings):
    exempt = {os.path.join("src", "base", "rng.h")}
    for path in iter_files(root, SOURCE_DIRS, (".cc", ".cpp", ".h")):
        rel = os.path.relpath(path, root)
        if rel in exempt:
            continue
        lines = read_lines(path)
        for i, line in enumerate(lines):
            code = strip_comments_and_strings(line)
            if RNG_TOKEN.search(code) and not allowed(
                    lines, i, "nondeterministic-rng"):
                findings.append(Finding(
                    path, i + 1, "nondeterministic-rng",
                    "non-reproducible RNG outside base/rng.h — use "
                    "sitm::Rng with an explicit seed"))


def check_pragma_once(root, findings):
    for path in iter_files(root, HEADER_DIRS, (".h",)):
        lines = read_lines(path)
        if not any(line.strip() == "#pragma once" for line in lines[:50]):
            findings.append(Finding(
                path, 1, "pragma-once",
                "header is missing `#pragma once`"))


INCLUDE_RE = re.compile(r'#\s*include\s+"([^"]+)"')


def check_include_convention(root, findings):
    for path in iter_files(root, SOURCE_DIRS, (".cc", ".cpp", ".h")):
        lines = read_lines(path)
        for i, line in enumerate(lines):
            match = INCLUDE_RE.search(line)
            if not match:
                continue
            target = match.group(1)
            if (target.startswith("../") or target.startswith("src/")) \
                    and not allowed(lines, i, "include-convention"):
                findings.append(Finding(
                    path, i + 1, "include-convention",
                    f'include "{target}" must be src/-relative '
                    f'(e.g. "geom/grid_index.h")'))


# ---------------------------------------------------------------------------
# Scope-aware checks: a light structural pass over each file.
#
# strip_comments_and_strings() handles line comments and literals; the
# helpers below additionally blank block comments and preprocessor
# directives (continuations included), then tokenize the file into a
# stream of (line, kind, text) where kind is 'stmt' (code between
# structural tokens), 'open' ({), 'close' (}), or 'end' (;). Semicolons
# inside parentheses (for-headers) are not statement ends; brace scopes
# reset the paren depth so lambda bodies inside call arguments tokenize
# as real statements. This is not a C++ parser — it is exactly enough
# structure to know (a) which brace scope a statement sits in, (b) what
# keyword opened that scope, and (c) which locks are held there.
# ---------------------------------------------------------------------------

def _prepare_lines(lines):
    """Stripped lines with block comments and preprocessor lines blanked."""
    out = []
    in_block = False
    in_directive = False
    for line in lines:
        if in_directive:
            in_directive = line.rstrip().endswith("\\")
            out.append("")
            continue
        code = strip_comments_and_strings(line)
        if in_block:
            end = code.find("*/")
            if end == -1:
                out.append("")
                continue
            code = " " * (end + 2) + code[end + 2:]
            in_block = False
        code = re.sub(r"/\*.*?\*/", " ", code)
        start = code.find("/*")
        if start != -1:
            code = code[:start]
            in_block = True
        if code.lstrip().startswith("#"):
            in_directive = code.rstrip().endswith("\\")
            code = ""
        out.append(code)
    return out


def _tokenize(prepared):
    """Yield (line_index, kind, text) structural tokens (see above)."""
    buf = []
    buf_line = 0
    has_code = False  # buf holds a non-whitespace char (anchors buf_line)
    paren = 0
    paren_stack = []

    def flush():
        nonlocal buf, has_code
        text = " ".join("".join(buf).split())
        buf = []
        has_code = False
        return text

    for i, line in enumerate(prepared):
        for ch in line:
            if ch == "(":
                paren += 1
            elif ch == ")" and paren > 0:
                paren -= 1
            if ch == "{":
                text = flush()
                if text:
                    yield (buf_line, "stmt", text)
                paren_stack.append(paren)
                paren = 0
                yield (i, "open", "{")
                continue
            if ch == "}":
                text = flush()
                if text:
                    yield (buf_line, "stmt", text)
                paren = paren_stack.pop() if paren_stack else 0
                yield (i, "close", "}")
                continue
            if ch == ";" and paren == 0:
                text = flush()
                if text:
                    yield (buf_line, "stmt", text)
                yield (i, "end", ";")
                continue
            if ch == ":" and "".join(buf).strip() in ("public", "private",
                                                      "protected"):
                # Access labels are separators, not statement prefixes:
                # without this, `public:` would glue onto the following
                # declaration and skew its reported line.
                flush()
                yield (i, "end", ":")
                continue
            if not has_code and not ch.isspace():
                buf_line = i
                has_code = True
            buf.append(ch)
        buf.append(" ")
    text = flush()
    if text:
        yield (buf_line, "stmt", text)


_SCOPE_KEYWORD_RE = re.compile(
    r"\b(while|do|for|if|else|switch|try|catch|class|struct|union|enum|"
    r"namespace)\b")
LOOP_KINDS = frozenset({"while", "do", "for"})
TYPE_KINDS = frozenset({"class", "struct", "union", "enum"})


def _classify_scope(header):
    """What kind of brace scope does a `header { ...` statement open?"""
    keywords = _SCOPE_KEYWORD_RE.findall(header)
    for keyword in reversed(keywords):
        if keyword in LOOP_KINDS or keyword in ("if", "else", "switch",
                                                "try", "catch"):
            return keyword
    for keyword in keywords:
        if keyword == "namespace":
            return "namespace"
        if keyword in TYPE_KINDS:
            return "type"
    if "(" in header or header.startswith("["):  # function body or lambda
        return "function"
    return "other"


LOCK_DECL_RE = re.compile(r"\bMutexLock\s+\w+\s*\(")
MANUAL_LOCK_RE = re.compile(r"((?:[A-Za-z_]\w*(?:\.|->))+)Lock\s*\(\s*\)")
MANUAL_UNLOCK_RE = re.compile(r"((?:[A-Za-z_]\w*(?:\.|->))+)Unlock\s*\(\s*\)")
REQUIRES_RE = re.compile(r"\bSITM_REQUIRES(?:_SHARED)?\s*\(")

LOCK_IO_RE = re.compile(
    r"\bstd::(?:basic_)?[io]?fstream\b|"
    r"\bf(?:open|reopen|read|write|close|flush|printf|gets|puts)\s*\(|"
    r"\bmmap\s*\(")
# Receiver-name heuristic: a call like `x->Append(...)` is only a store
# write if `x` plausibly names a writer/store (Trace::Append et al. must
# stay quiet); same idea for `x->Run(...)` vs. the many other Run()s.
LOCK_STORE_RE = re.compile(
    r"\b(?:\w*(?:[Ww]riter|[Ss]tore)\w*\s*(?:\.|->)\s*"
    r"(?:Append|Finish)|EventStoreWriter)\s*\(")
LOCK_EXEC_RE = re.compile(
    r"\b(?:ParallelFor|ParallelMap|RunGraph|RunGraphInline)\s*[<(]|"
    r"\b\w*(?:[Ee]xecutor|[Rr]unner)\w*\s*(?:\.|->)\s*Run\s*\(")
WAIT_RE = re.compile(r"(?:[A-Za-z_]\w*(?:\.|->))+Wait\s*\(")
WAIT_SAME_STMT_LOOP_RE = re.compile(r"\b(?:while|for)\b.*\bWait\s*\(")

_LOCK_RULES = (
    ("lock-scope-io", LOCK_IO_RE,
     "blocking file I/O inside a lock region (held since line %d) — "
     "stage the bytes outside the critical section"),
    ("lock-scope-store", LOCK_STORE_RE,
     "EventStoreWriter Append/Finish inside a lock region (held since "
     "line %d) — store writes do real I/O; move them off the lock"),
    ("lock-scope-executor", LOCK_EXEC_RE,
     "parallel work submitted inside a lock region (held since line "
     "%d) — workers may need this very mutex (self-deadlock)"),
)


def check_lock_scopes(root, findings):
    for path in iter_files(root, SOURCE_DIRS, (".cc", ".cpp", ".h")):
        rel = os.path.relpath(path, root)
        if rel == os.path.join("src", "base", "mutex.h"):
            continue  # defines the primitives the rules are about
        lines = read_lines(path)
        prepared = _prepare_lines(lines)
        scopes = []       # kind of every open brace scope, innermost last
        locks = []        # {kind, receiver, scope_len, line}
        pending = ""      # last stmt text, governs the next '{'
        for line_no, kind, text in _tokenize(prepared):
            if kind == "open":
                scope_kind = _classify_scope(pending)
                scopes.append(scope_kind)
                if REQUIRES_RE.search(pending):
                    locks.append({"kind": "requires", "receiver": None,
                                  "scope_len": len(scopes),
                                  "line": line_no + 1})
                pending = ""
                continue
            if kind == "close":
                if scopes:
                    scopes.pop()
                locks = [l for l in locks if l["scope_len"] <= len(scopes)]
                pending = ""
                continue
            if kind == "end":
                pending = ""
                continue
            pending = text
            if locks:
                for rule, token_re, message in _LOCK_RULES:
                    if token_re.search(text) and not allowed(
                            lines, line_no, rule):
                        findings.append(Finding(
                            path, line_no + 1, rule,
                            message % locks[-1]["line"]))
            wait = WAIT_RE.search(text)
            if wait:
                in_loop_stmt = bool(WAIT_SAME_STMT_LOOP_RE.search(text))
                in_loop_scope = bool(scopes) and scopes[-1] in LOOP_KINDS
                if not in_loop_stmt and not in_loop_scope and not allowed(
                        lines, line_no, "lock-wait-no-predicate"):
                    findings.append(Finding(
                        path, line_no + 1, "lock-wait-no-predicate",
                        "CondVar::Wait outside a predicate loop — "
                        "spurious wakeups require `while (!cond) "
                        "cv.Wait(lock);` (see base/mutex.h)"))
            # Lock events after the checks: the acquiring statement
            # itself is not "work inside the region".
            if LOCK_DECL_RE.search(text):
                locks.append({"kind": "scoped", "receiver": None,
                              "scope_len": len(scopes),
                              "line": line_no + 1})
            for match in MANUAL_LOCK_RE.finditer(text):
                locks.append({"kind": "manual",
                              "receiver": match.group(1),
                              "scope_len": len(scopes),
                              "line": line_no + 1})
            for match in MANUAL_UNLOCK_RE.finditer(text):
                receiver = match.group(1)
                for index in range(len(locks) - 1, -1, -1):
                    if (locks[index]["kind"] == "manual"
                            and locks[index]["receiver"] == receiver):
                        del locks[index]
                        break


ACCESS_LABEL_RE = re.compile(r"^(?:(?:public|private|protected)\s*:\s*)+")
STATUS_DECL_HEAD_RE = re.compile(
    r"^(?:template\s*<[^{};]*>\s*)?"
    r"(?:(?:virtual|static|inline|constexpr|explicit)\s+)*"
    r"(?:Status|Result<[^;{}]+>)\s+[A-Za-z_]\w*\s*\(")


def check_missing_nodiscard(root, findings):
    for path in iter_files(root, ("src",), (".h",)):
        lines = read_lines(path)
        prepared = _prepare_lines(lines)
        scopes = []
        pending = ""
        for line_no, kind, text in _tokenize(prepared):
            if kind == "open":
                scopes.append(_classify_scope(pending))
                pending = ""
                continue
            if kind == "close":
                if scopes:
                    scopes.pop()
                pending = ""
                continue
            if kind == "end":
                pending = ""
                continue
            pending = text
            if "function" in scopes:
                continue  # local declarations/statements inside a body
            decl = ACCESS_LABEL_RE.sub("", text)
            if "[[nodiscard]]" in decl or "friend" in decl.split("(")[0]:
                continue
            if STATUS_DECL_HEAD_RE.match(decl) and not allowed(
                    lines, line_no, "missing-nodiscard"):
                findings.append(Finding(
                    path, line_no + 1, "missing-nodiscard",
                    "Status/Result-returning declaration without "
                    "[[nodiscard]] — add it (or, for a genuinely "
                    "optional result, `sitm-lint: "
                    "allow(missing-nodiscard)` with a reason)"))


CHECKS = (
    check_discarded_status,
    check_naked_thread,
    check_direct_threadpool,
    check_nondeterministic_rng,
    check_pragma_once,
    check_include_convention,
    check_lock_scopes,
    check_missing_nodiscard,
)


def run_lint(root):
    findings = []
    for check in CHECKS:
        check(root, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repo root to lint (default: this script's parent repo)")
    args = parser.parse_args(argv)
    if not os.path.isdir(args.root):
        print(f"lint_sitm: no such directory: {args.root}", file=sys.stderr)
        return 2
    findings = run_lint(args.root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_sitm: {len(findings)} finding(s)")
        return 1
    print("lint_sitm: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
