#!/usr/bin/env python3
"""Compares two sets of BENCH_*.json (google-benchmark JSON) files.

Matches benchmarks by (bench id, benchmark name) between a baseline and
a current directory (or two explicit file lists), normalizes every time
to nanoseconds, and flags regressions where the current time exceeds the
baseline by more than --threshold (default 15%).

Exit status: 0 when no regression was flagged (or --report-only), 1 when
at least one benchmark regressed, 2 on usage/parse errors.

Rows that cannot be compared are reported, never silently gated on:
benchmarks present in only one set print as "removed"/"added", a ~0 ns
baseline or a benchmark with no usable samples prints as "skipped".
(Regression-tested by scripts/test_compare_benches.py, run in CI.)

Usage:
  scripts/compare_benches.py <baseline_dir> <current_dir> [options]

Options:
  --threshold FRACTION   regression threshold (default 0.15 = +15%)
  --metric NAME          cpu_time or real_time (default cpu_time);
                         manual-time benches ("/manual_time" names) are
                         always compared on real_time, the only metric
                         their timed section controls
  (repetition rows from --benchmark_repetitions are reduced to their
  median per benchmark)
  --report-only          print the table but always exit 0
  --min-ns NS            ignore benchmarks faster than NS in both sets
                         (sub-noise timings; default 1.0)

Typical use: save one run (`cmake --build build --target run_benches`,
then copy BENCH_*.json aside), apply a change, rerun, compare.
"""

import argparse
import glob
import json
import os
import statistics
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """Returns {(bench_id, name): [sample, ...]} for one BENCH_*.json.

    Each sample holds cpu_time/real_time in ns. Repetition runs
    (--benchmark_repetitions) produce several iteration rows per name;
    all are kept and the comparison uses their median.
    """
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as err:
            raise ValueError(f"{path}: {err}") from err
    bench_id = os.path.basename(path)
    if bench_id.startswith("BENCH_"):
        bench_id = bench_id[len("BENCH_"):]
    if bench_id.endswith(".json"):
        bench_id = bench_id[: -len(".json")]
    out = {}
    for row in doc.get("benchmarks", []):
        # Skip aggregates (mean/median/stddev, BigO/RMS fits): only raw
        # iteration rows are comparable run to run.
        if row.get("run_type", "iteration") != "iteration":
            continue
        name = row.get("name")
        if name is None:
            continue
        # Rows from state.SkipWithError carry error_occurred and no
        # timings; they are not comparable, not a parse failure.
        if row.get("error_occurred") or "cpu_time" not in row:
            continue
        unit = _UNIT_NS.get(row.get("time_unit", "ns"))
        if unit is None:
            raise ValueError(f"{path}: unknown time_unit in {name!r}")
        out.setdefault((bench_id, name), []).append({
            "cpu_time": float(row["cpu_time"]) * unit,
            "real_time": float(row["real_time"]) * unit,
        })
    return out


def pick_time(key, samples, metric):
    """Median time for one benchmark, honoring manual-time benches.

    Benches registered with UseManualTime (name suffix "/manual_time")
    put only the measured section in real_time — their cpu_time also
    counts untimed per-iteration setup — so they are always compared on
    real_time. Returns None when there are no samples to reduce (a set
    with only errored/aggregate rows) — never raises.
    """
    if not samples:
        return None
    _, name = key
    if name.endswith("/manual_time") or "/manual_time/" in name:
        metric = "real_time"
    values = sorted(sample[metric] for sample in samples)
    return statistics.median(values)


def collect(root):
    """Loads every BENCH_*.json under a directory (or one file)."""
    if os.path.isfile(root):
        paths = [root]
    else:
        paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    merged = {}
    for path in paths:
        merged.update(load_benchmarks(path))
    return merged


def format_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.1f} ns"


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json sets and flag regressions.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15)
    parser.add_argument("--metric", choices=("cpu_time", "real_time"),
                        default="cpu_time")
    parser.add_argument("--report-only", action="store_true")
    parser.add_argument("--min-ns", type=float, default=1.0)
    args = parser.parse_args(argv)

    try:
        baseline = collect(args.baseline)
        current = collect(args.current)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as err:
        print(f"compare_benches: {err}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"compare_benches: no BENCH_*.json in {args.baseline}",
              file=sys.stderr)
        return 2
    if not current:
        print(f"compare_benches: no BENCH_*.json in {args.current}",
              file=sys.stderr)
        return 2

    shared = sorted(set(baseline) & set(current))
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))

    regressions = []
    improvements = []
    not_comparable = []  # (key, reason): reported, never silently gated
    for key in shared:
        base_ns = pick_time(key, baseline[key], args.metric)
        cur_ns = pick_time(key, current[key], args.metric)
        if base_ns is None or cur_ns is None:
            side = "baseline" if base_ns is None else "current"
            not_comparable.append((key, f"no usable samples in {side}"))
            continue
        if base_ns < args.min_ns and cur_ns < args.min_ns:
            continue
        if base_ns <= 0:
            # Division guard: a ~0 ns baseline (clock underflow, a
            # SkipWithError artifact) makes the ratio meaningless; such a
            # row must neither crash the gate nor pass through it quietly.
            not_comparable.append(
                (key, f"baseline time {base_ns:g} ns is not comparable"))
            continue
        delta = (cur_ns - base_ns) / base_ns
        row = (key, base_ns, cur_ns, delta)
        if delta > args.threshold:
            regressions.append(row)
        elif delta < -args.threshold:
            improvements.append(row)

    print(f"compare_benches: {len(shared)} shared benchmarks "
          f"({args.metric}, threshold {args.threshold:+.0%})")
    for label, rows in (("REGRESSION", regressions),
                        ("improvement", improvements)):
        for (bench_id, name), base_ns, cur_ns, delta in rows:
            print(f"  {label:<11} {bench_id}:{name}  "
                  f"{format_ns(base_ns)} -> {format_ns(cur_ns)} "
                  f"({delta:+.1%})")
    for (bench_id, name), reason in not_comparable:
        print(f"  skipped     {bench_id}:{name}  ({reason})")

    def list_unmatched(label, keys):
        # Every unmatched benchmark is reported (a vanished benchmark
        # must never disappear silently), but a p1-only baseline against
        # a full run would list dozens — cap the detail lines.
        for bench_id, name in keys[:10]:
            print(f"  {label:<11} {bench_id}:{name}  (only in one set)")
        if len(keys) > 10:
            print(f"  {label:<11} ... and {len(keys) - 10} more")

    list_unmatched("removed", only_baseline)
    list_unmatched("added", only_current)
    if not regressions:
        print("  no regressions flagged")

    if regressions and not args.report_only:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
