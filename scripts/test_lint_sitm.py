#!/usr/bin/env python3
"""Regression tests for scripts/lint_sitm.py.

pytest-style test_* functions with plain asserts, plus a __main__ runner
so CI needs only `python3 scripts/test_lint_sitm.py` (no pytest
dependency). Each test builds a miniature source tree in a temp dir and
runs lint_sitm.run_lint() on it; the last test lints the live repo and
must come back clean (the lint is a CI gate, so a dirty tree here means
either a real defect or a rule that needs tuning *before* it lands).

One fixture per rule trips it; sibling fixtures prove the negative space
(suppression markers, ambiguous names, exempt files) stays quiet.
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lint_sitm  # noqa: E402

# A minimal src/ header making `Finish` and `Set` Status-returning so
# call-site fixtures have a callee set to match against. `Append` is
# deliberately ambiguous: declared both Status- and void-returning, as
# in the real tree (JsonValue::Append vs Trace::Append).
STATUS_HEADER = """\
#pragma once
namespace sitm {
class Writer {
 public:
  Status Finish();
  Status Set(int key);
  Status Append(int value);
};
class Trace {
 public:
  void Append(int value);
};
}  // namespace sitm
"""


def _build_tree(tmp, files):
    for rel, content in files.items():
        path = os.path.join(tmp, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)


def _rules(findings):
    return sorted({f.rule for f in findings})


def _lint(files):
    with tempfile.TemporaryDirectory() as tmp:
        _build_tree(tmp, files)
        return lint_sitm.run_lint(tmp)


def test_bare_status_call_is_flagged():
    findings = _lint({
        "src/w.h": STATUS_HEADER,
        "src/u.cc": "void F(Writer& w) {\n  w.Finish();\n}\n",
    })
    assert any(f.rule == "discarded-status" and f.line == 2
               for f in findings), findings


def test_consumed_status_call_is_clean():
    findings = _lint({
        "src/w.h": STATUS_HEADER,
        "src/u.cc": ("void F(Writer& w) {\n"
                     "  const Status s = w.Finish();\n"
                     "  if (!w.Finish().ok()) return;\n"
                     "}\n"),
    })
    assert not [f for f in findings if f.rule == "discarded-status"], findings


def test_void_cast_of_status_is_flagged_even_for_ambiguous_names():
    # Bare `t.Append(1);` must NOT be flagged (Trace::Append is void),
    # but `(void)w.Append(1);` must be: nobody casts a void call to void.
    findings = _lint({
        "src/w.h": STATUS_HEADER,
        "src/u.cc": ("void F(Writer& w, Trace& t) {\n"
                     "  t.Append(1);\n"
                     "  (void)w.Append(1);\n"
                     "}\n"),
    })
    flagged = [f for f in findings if f.rule == "discarded-status"]
    assert [f.line for f in flagged] == [3], findings


def test_allow_marker_suppresses_discarded_status():
    findings = _lint({
        "src/w.h": STATUS_HEADER,
        "src/u.cc": ("void F(Writer& w) {\n"
                     "  // best-effort flush: sitm-lint: allow(discarded-status)\n"
                     "  w.Finish();\n"
                     "}\n"),
    })
    assert not [f for f in findings if f.rule == "discarded-status"], findings


def test_status_call_inside_string_or_comment_is_ignored():
    findings = _lint({
        "src/w.h": STATUS_HEADER,
        "src/u.cc": ('void F() {\n'
                     '  // w.Finish();\n'
                     '  const char* doc = "w.Finish();";\n'
                     '  (void)doc;\n'
                     '}\n'),
    })
    assert not [f for f in findings if f.rule == "discarded-status"], findings


def test_naked_thread_flagged_outside_base_parallel():
    findings = _lint({
        "src/core/runner.cc": ("#include <thread>\n"
                               "void F() { std::thread t([] {}); t.join(); }\n"),
    })
    assert "naked-thread" in _rules(findings), findings


def test_naked_thread_exempt_in_substrates_and_when_allowed():
    findings = _lint({
        "src/base/parallel.cc": "#include <thread>\nstd::thread worker;\n",
        "src/sched/executor.cc": "#include <thread>\nstd::thread worker;\n",
        "tests/stress.cc": ("// sitm-lint: allow(naked-thread)\n"
                            "std::thread submitter;\n"),
    })
    assert not [f for f in findings if f.rule == "naked-thread"], findings


def test_thread_type_and_static_accesses_are_not_naked_threads():
    # std::thread::id and ::hardware_concurrency name no thread of
    # execution — legal anywhere.
    findings = _lint({
        "src/core/ids.cc": ("#include <thread>\n"
                            "std::thread::id Current();\n"
                            "unsigned Hc() {"
                            " return std::thread::hardware_concurrency(); }\n"),
    })
    assert not [f for f in findings if f.rule == "naked-thread"], findings


def test_direct_threadpool_construction_flagged_outside_substrates():
    findings = _lint({
        "src/mining/fill.cc": "void F() { ThreadPool pool(4); }\n",
        "tests/some_test.cc": ("void G() {\n"
                               "  auto p = std::make_unique<ThreadPool>(2);\n"
                               "}\n"),
        "bench/bench_x.cc": "static ThreadPool& P() { static ThreadPool pool(2); return pool; }\n",
    })
    flagged = [f for f in findings if f.rule == "direct-threadpool"]
    assert len(flagged) == 3, findings


def test_threadpool_references_and_substrates_are_exempt():
    findings = _lint({
        # References and pointers own nothing; declarations in the
        # substrate dirs and the pool's own test harnesses are exempt.
        "src/core/opts.h": ("#pragma once\n"
                            "struct Opts { ThreadPool* pool = nullptr; };\n"
                            "void F(ThreadPool& pool);\n"),
        "src/base/parallel.cc": "void F() { ThreadPool pool(2); }\n",
        "src/sched/helper.cc": "void G() { ThreadPool pool(2); }\n",
        "tests/base_parallel_test.cc": "void H() { ThreadPool pool(2); }\n",
        "tests/parallel_stress_test.cc": "void I() { ThreadPool pool(2); }\n",
        "examples/demo.cpp": ("// sitm-lint: allow(direct-threadpool)\n"
                              "static ThreadPool pool(2);\n"),
    })
    assert not [f for f in findings if f.rule == "direct-threadpool"], findings


def test_nondeterministic_rng_flagged_outside_base_rng():
    findings = _lint({
        "src/mining/sample.cc": "#include <random>\nstd::mt19937 gen;\n",
        "tests/fuzz.cc": "std::random_device rd;\n",
    })
    flagged = [f for f in findings if f.rule == "nondeterministic-rng"]
    assert len(flagged) == 2, findings


def test_rng_in_base_rng_header_is_exempt():
    findings = _lint({
        "src/base/rng.h": ("#pragma once\n"
                           "#include <random>\n"
                           "using Engine = std::mt19937_64;\n"),
    })
    assert not [f for f in findings if f.rule == "nondeterministic-rng"], findings


def test_header_without_pragma_once_is_flagged():
    findings = _lint({
        "src/a.h": "#ifndef A_H_\n#define A_H_\n#endif\n",
        "src/b.h": "#pragma once\nint x();\n",
    })
    flagged = [f for f in findings if f.rule == "pragma-once"]
    assert len(flagged) == 1 and flagged[0].path.endswith("a.h"), findings


def test_parent_relative_and_src_prefixed_includes_are_flagged():
    findings = _lint({
        "src/core/a.cc": ('#include "../base/status.h"\n'
                          '#include "src/base/status.h"\n'
                          '#include "base/status.h"\n'),
    })
    flagged = [f for f in findings if f.rule == "include-convention"]
    assert [f.line for f in flagged] == [1, 2], findings


def test_findings_are_sorted_and_main_exit_codes():
    with tempfile.TemporaryDirectory() as tmp:
        _build_tree(tmp, {
            "src/z.h": "int z();\n",
            "src/a.cc": '#include "../z.h"\n',
        })
        findings = lint_sitm.run_lint(tmp)
        assert findings == sorted(
            findings, key=lambda f: (f.path, f.line, f.rule))
        assert lint_sitm.main(["--root", tmp]) == 1
    assert lint_sitm.main(["--root", os.path.join(tmp, "gone")]) == 2


def test_lock_scope_io_flagged_inside_mutexlock():
    findings = _lint({
        "src/core/cache.cc": ("#include <fstream>\n"
                              "void F() {\n"
                              "  MutexLock lock(mu_);\n"
                              "  std::ofstream out(path_);\n"
                              "  out << blob_;\n"
                              "}\n"),
    })
    flagged = [f for f in findings if f.rule == "lock-scope-io"]
    assert [f.line for f in flagged] == [4], findings


def test_lock_scope_io_quiet_outside_the_region_and_in_nested_scope():
    # The same tokens before the lock, after the region's scope closes,
    # and with an allow() escape stay quiet; a *nested* scope inside the
    # region is still inside the region.
    findings = _lint({
        "src/core/a.cc": ("void F() {\n"
                          "  std::ofstream out(path_);\n"
                          "  {\n"
                          "    MutexLock lock(mu_);\n"
                          "    counter_++;\n"
                          "  }\n"
                          "  out << blob_;\n"
                          "}\n"),
        "src/core/b.cc": ("void G() {\n"
                          "  MutexLock lock(mu_);\n"
                          "  if (dirty_) {\n"
                          "    // startup only: sitm-lint: allow(lock-scope-io)\n"
                          "    std::ifstream in(path_);\n"
                          "  }\n"
                          "}\n"),
        "src/core/c.cc": ("void H() {\n"
                          "  MutexLock lock(mu_);\n"
                          "  if (dirty_) {\n"
                          "    fclose(file_);\n"
                          "  }\n"
                          "}\n"),
    })
    flagged = [f for f in findings if f.rule == "lock-scope-io"]
    assert len(flagged) == 1 and flagged[0].path.endswith("c.cc"), findings


def test_lock_scope_tracks_manual_lock_and_early_unlock():
    # mu_.Lock()/mu_.Unlock() delimit a region too — I/O between them is
    # flagged, I/O after the early Unlock is not, and a *different*
    # mutex's Unlock does not close the region.
    findings = _lint({
        "src/core/m.cc": ("void F() {\n"
                          "  mu_.Lock();\n"
                          "  fwrite(buf, 1, n, file_);\n"
                          "  mu_.Unlock();\n"
                          "  fread(buf, 1, n, file_);\n"
                          "}\n"
                          "void G() {\n"
                          "  a_.Lock();\n"
                          "  b_.Unlock();\n"
                          "  fflush(file_);\n"
                          "}\n"),
    })
    flagged = [f for f in findings if f.rule == "lock-scope-io"]
    assert [f.line for f in flagged] == [3, 10], findings


def test_lock_scope_requires_annotation_marks_the_body():
    findings = _lint({
        "src/core/r.cc": ("void Flush() SITM_REQUIRES(mu_) {\n"
                          "  fwrite(buf_, 1, n_, file_);\n"
                          "}\n"
                          "void Other() {\n"
                          "  fwrite(buf_, 1, n_, file_);\n"
                          "}\n"),
    })
    flagged = [f for f in findings if f.rule == "lock-scope-io"]
    assert [f.line for f in flagged] == [2], findings


def test_lock_scope_store_and_executor_rules():
    findings = _lint({
        "src/storage/s.cc": ("void F() {\n"
                             "  MutexLock lock(mu_);\n"
                             "  writer_->Append(record);\n"
                             "  writer_->Finish();\n"
                             "}\n"),
        "src/query/q.cc": ("void G() {\n"
                           "  MutexLock lock(mu_);\n"
                           "  ParallelFor(executor_, n, fn);\n"
                           "  RunGraph(executor_, std::move(graph));\n"
                           "  executor_->Run(std::move(graph2));\n"
                           "}\n"),
    })
    store = [f for f in findings if f.rule == "lock-scope-store"]
    execf = [f for f in findings if f.rule == "lock-scope-executor"]
    assert [f.line for f in store] == [3, 4], findings
    assert [f.line for f in execf] == [3, 4, 5], findings


def test_lock_scope_store_quiet_for_non_store_append_outside_lock():
    # Trace::Append-style calls (receiver is not a writer/store) and
    # store calls outside any region stay quiet.
    findings = _lint({
        "src/core/t.cc": ("void F() {\n"
                          "  MutexLock lock(mu_);\n"
                          "  trace_.Append(span);\n"
                          "}\n"
                          "void G() {\n"
                          "  writer_->Finish();\n"  # no lock held
                          "}\n"),
    })
    assert not [f for f in findings if f.rule == "lock-scope-store"], findings


def test_wait_without_predicate_loop_is_flagged():
    findings = _lint({
        "src/core/w.cc": ("void F() {\n"
                          "  MutexLock lock(mu_);\n"
                          "  cv_.Wait(lock);\n"
                          "}\n"),
    })
    flagged = [f for f in findings if f.rule == "lock-wait-no-predicate"]
    assert [f.line for f in flagged] == [3], findings


def test_wait_inside_predicate_loops_is_quiet():
    findings = _lint({
        # Same-statement loop, braced while body, and do-while.
        "src/core/w.cc": ("void F() {\n"
                          "  MutexLock lock(mu_);\n"
                          "  while (busy_) cv_.Wait(lock);\n"
                          "  while (queue_.empty() && !stop_) {\n"
                          "    cv_.Wait(lock);\n"
                          "  }\n"
                          "  do {\n"
                          "    cv_.Wait(lock);\n"
                          "  } while (draining_);\n"
                          "}\n"),
    })
    assert not [f for f in findings
                if f.rule == "lock-wait-no-predicate"], findings


def test_missing_nodiscard_on_status_and_result_declarations():
    findings = _lint({
        "src/core/api.h": ("#pragma once\n"
                           "namespace sitm {\n"
                           "class Api {\n"
                           " public:\n"
                           "  Status Open(const std::string& path);\n"
                           "  [[nodiscard]] Status Close();\n"
                           "  Result<int> Count() const;\n"
                           "  void Reset();\n"
                           "};\n"
                           "Status Free();\n"
                           "}  // namespace sitm\n"),
    })
    flagged = [f for f in findings if f.rule == "missing-nodiscard"]
    assert [f.line for f in flagged] == [5, 7, 10], findings


def test_missing_nodiscard_exemptions():
    findings = _lint({
        # friend declarations cannot carry attributes (C++17); local
        # variables inside inline bodies, Status *parameters*, multiline
        # [[nodiscard]] declarations, and allow() escapes stay quiet.
        "src/core/ok.h": ("#pragma once\n"
                          "class Ok {\n"
                          "  friend Status Touch(Ok& ok);\n"
                          "  [[nodiscard]] Result<int>\n"
                          "  Longname(int a, int b);\n"
                          "  void Take(Status s);\n"
                          "  int Get() { Status s = Probe(); return 0; }\n"
                          "  // fire-and-forget: sitm-lint: allow(missing-nodiscard)\n"
                          "  Status Post();\n"
                          "};\n"),
    })
    assert not [f for f in findings if f.rule == "missing-nodiscard"], findings


def test_missing_nodiscard_only_scans_src_headers():
    findings = _lint({
        "tests/helper.h": "Status Helper();\n",
        "src/core/impl.cc": "Status Impl() { return Status::OK(); }\n",
    })
    assert not [f for f in findings if f.rule == "missing-nodiscard"], findings


def test_live_tree_is_clean():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    findings = lint_sitm.run_lint(root)
    assert not findings, "\n".join(str(f) for f in findings)


def main():
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failures = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError as err:
            failures += 1
            print(f"FAIL {name}: {err}")
    print(f"{len(tests) - failures}/{len(tests)} passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
