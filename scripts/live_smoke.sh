#!/usr/bin/env bash
# End-to-end smoke of the live ingest subsystem: starts the example
# server on loopback, POSTs an out-of-order detection stream in several
# batches, flushes, queries back over the live segments, and diffs every
# answer byte-for-byte against `live_server batch` — the batch pipeline
# run over the same detection multiset. Also saves the /stats document
# (live_smoke_stats.json in the work dir) for CI to archive.
#
# Usage:
#   scripts/live_smoke.sh [build_dir] [work_dir]
#
# Environment overrides:
#   SITM_LIVE_SERVER   path to the live_server binary
#                      (default: <build_dir>/examples/live_server)
set -euo pipefail

build_dir="${1:-build}"
work_dir="${2:-$(mktemp -d)}"
server_bin="${SITM_LIVE_SERVER:-$build_dir/examples/live_server}"

if [ ! -x "$server_bin" ]; then
  echo "live_smoke: server binary not found: $server_bin" >&2
  echo "live_smoke: build first: cmake --build $build_dir --target live_server" >&2
  exit 1
fi
mkdir -p "$work_dir"
echo "live_smoke: server=$server_bin work_dir=$work_dir"

# Three ingest batches, out of order within and across batches but
# within the 600 s default lateness (worst regression here: 1700 ->
# 1300 = 400 s). Object 1 revisits cell 10; object 3 arrives as a
# string-timestamp detection ("1970-01-01 00:40:00" = epoch 2400).
cat > "$work_dir/batch1.json" <<'EOF'
[{"object": 1, "cell": 10, "start": 1200, "end": 1400},
 {"object": 2, "cell": 11, "start": 1000, "end": 1250},
 {"object": 1, "cell": 12, "start": 1450, "end": 1700}]
EOF
cat > "$work_dir/batch2.json" <<'EOF'
{"detections": [
 {"object": 2, "cell": 12, "start": 1700, "end": 1900},
 {"object": 2, "cell": 11, "start": 1300, "end": 1650},
 {"object": 1, "cell": 10, "start": 1750, "end": 2000}]}
EOF
cat > "$work_dir/batch3.json" <<'EOF'
[{"object": 3, "cell": 10, "start": "1970-01-01 00:40:00",
  "end": "1970-01-01 00:45:00"},
 {"object": 2, "cell": 10, "start": 1950, "end": 2300}]
EOF

# The batch oracle consumes the union of everything POSTed.
python3 - "$work_dir" <<'EOF'
import json, sys
work = sys.argv[1]
merged = []
for name in ("batch1.json", "batch2.json", "batch3.json"):
    with open(f"{work}/{name}") as fh:
        doc = json.load(fh)
    merged.extend(doc["detections"] if isinstance(doc, dict) else doc)
with open(f"{work}/all.json", "w") as fh:
    json.dump(merged, fh)
EOF

"$server_bin" serve --dir "$work_dir/segments" > "$work_dir/server.out" &
server_pid=$!
cleanup() {
  kill "$server_pid" 2>/dev/null || true
  wait "$server_pid" 2>/dev/null || true
}
trap cleanup EXIT

port=""
for _ in $(seq 1 50); do
  port="$(sed -n 's/^PORT=//p' "$work_dir/server.out" 2>/dev/null || true)"
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "live_smoke: server never printed PORT=" >&2
  exit 1
fi
base="http://127.0.0.1:$port"
echo "live_smoke: serving on $base"

post() {
  # curl -f would hide the body on 4xx; check the status code by hand.
  code="$(curl -s -o "$work_dir/last_response.json" -w '%{http_code}' \
               -X POST --data-binary @"$1" "$base$2")"
  if [ "$code" != "200" ]; then
    echo "live_smoke: POST $2 <- $1 failed ($code):" >&2
    cat "$work_dir/last_response.json" >&2
    exit 1
  fi
}

post "$work_dir/batch1.json" /detections
post "$work_dir/batch2.json" /detections
post "$work_dir/batch3.json" /detections
curl -s -X POST "$base/flush" > /dev/null
curl -s "$base/stats" > "$work_dir/live_smoke_stats.json"
echo "live_smoke: /stats ->"
cat "$work_dir/live_smoke_stats.json"

queries=(
  "projection=count"
  "projection=ids"
  "projection=trajectories"
  "projection=trajectories&object=1"
  "projection=ids&cell=10"
  "projection=count&object=2&cell=11"
)
failed=0
for q in "${queries[@]}"; do
  curl -s "$base/query?$q" > "$work_dir/live_answer.json"
  "$server_bin" batch "$work_dir/all.json" "$q" > "$work_dir/batch_answer.json"
  # The served body has no trailing newline; batch mode prints one.
  if diff <(cat "$work_dir/live_answer.json"; echo) \
          "$work_dir/batch_answer.json" > /dev/null; then
    echo "live_smoke: MATCH  ?$q"
  else
    echo "live_smoke: MISMATCH ?$q" >&2
    echo "  live:  $(cat "$work_dir/live_answer.json")" >&2
    echo "  batch: $(cat "$work_dir/batch_answer.json")" >&2
    failed=1
  fi
done

curl -s -X POST "$base/shutdown" > /dev/null
wait "$server_pid"
server_status=$?
trap - EXIT
if [ "$server_status" -ne 0 ]; then
  echo "live_smoke: server exited nonzero ($server_status)" >&2
  exit 1
fi
if [ "$failed" -ne 0 ]; then
  echo "live_smoke: FAILED — live answers diverge from batch" >&2
  exit 1
fi
echo "live_smoke: OK — ${#queries[@]} live answers byte-identical to batch"
