#!/usr/bin/env python3
"""Regression tests for scripts/analyze_deps.py.

pytest-style test_* functions with plain asserts, plus a __main__ runner
so CI needs only `python3 scripts/test_analyze_deps.py`. Each fixture
builds a miniature src/ tree plus a manifest in a temp dir and runs
analyze_deps.run_analysis() on it; the last test analyzes the live repo
against the real scripts/layering.json and must come back clean (the
analyzer is a CI gate, so a dirty tree here means either a real layering
break or a manifest that needs updating *before* it lands).
"""

import io
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import analyze_deps  # noqa: E402

# A two-layer toy architecture: low -> nothing, mid -> low, top -> mid/low.
TOY_MANIFEST = {
    "layers": [["low"], ["mid", "aux"], ["top"]],
    "edges": {
        "low": [],
        "mid": ["low"],
        "aux": ["low"],
        "top": ["mid", "low"],
    },
}


def _build_tree(tmp, files):
    for rel, content in files.items():
        path = os.path.join(tmp, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)


def _analyze(files, manifest=TOY_MANIFEST, artifacts=False):
    """Run the analyzer on a fixture tree; returns (exit_code, stderr, tmp)."""
    with tempfile.TemporaryDirectory() as tmp:
        _build_tree(tmp, files)
        manifest_path = os.path.join(tmp, "layering.json")
        with open(manifest_path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh)
        err = io.StringIO()
        out = io.StringIO()
        dot = os.path.join(tmp, "deps.dot") if artifacts else None
        js = os.path.join(tmp, "deps.json") if artifacts else None
        code = analyze_deps.run_analysis(tmp, manifest_path, dot, js,
                                         out=out, err=err)
        payload = None
        if artifacts and os.path.exists(js):
            with open(js, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        dot_text = None
        if artifacts and os.path.exists(dot):
            with open(dot, "r", encoding="utf-8") as fh:
                dot_text = fh.read()
        return code, err.getvalue(), payload, dot_text


CLEAN_TREE = {
    "src/low/a.h": '#pragma once\n',
    "src/mid/b.h": '#pragma once\n#include "low/a.h"\n',
    "src/top/c.cc": '#include "mid/b.h"\n#include "low/a.h"\n',
}


def test_clean_tree_exits_zero():
    code, err, _, _ = _analyze(CLEAN_TREE)
    assert code == 0, err
    assert "VIOLATION" not in err


def test_upward_edge_fails_naming_the_edge():
    files = dict(CLEAN_TREE)
    files["src/low/bad.cc"] = '#include "top/c.h"\n'
    code, err, _, _ = _analyze(files)
    assert code == 1
    assert "upward edge low -> top" in err
    # The witness names the offending include site.
    assert "low/bad.cc:1" in err


def test_undeclared_downward_edge_fails():
    # aux -> mid is same-layer and NOT declared: rejected even though it
    # is not upward — every cross-module edge must be in the manifest.
    files = dict(CLEAN_TREE)
    files["src/aux/sneak.h"] = '#pragma once\n#include "mid/b.h"\n'
    code, err, _, _ = _analyze(files)
    assert code == 1
    assert "undeclared edge aux -> mid" in err


def test_cycle_is_reported_even_if_each_edge_is_declared():
    # Declare mid <-> aux both ways (same layer, so manifest validation
    # alone would... not pass; acyclicity is checked there). A manifest
    # with a same-layer cycle must be rejected as a manifest error.
    manifest = {
        "layers": [["low"], ["mid", "aux"]],
        "edges": {"low": [], "mid": ["aux"], "aux": ["mid"]},
    }
    code, err, _, _ = _analyze(CLEAN_TREE, manifest=manifest)
    assert code == 2
    assert "cycle" in err


def test_include_cycle_in_tree_is_reported():
    # Two unknown-free modules whose files include each other through an
    # undeclared pair: both undeclared-edge findings fire AND the cycle
    # is named explicitly.
    files = {
        "src/mid/b.h": '#pragma once\n#include "aux/z.h"\n',
        "src/aux/z.h": '#pragma once\n#include "mid/b.h"\n',
    }
    code, err, _, _ = _analyze(files)
    assert code == 1
    assert "include cycle between modules" in err
    assert "undeclared edge" in err


def test_unknown_module_fails():
    files = dict(CLEAN_TREE)
    files["src/rogue/x.h"] = "#pragma once\n"
    code, err, _, _ = _analyze(files)
    assert code == 1
    assert "unknown module 'src/rogue/'" in err


def test_edge_to_unknown_module_fails():
    files = dict(CLEAN_TREE)
    files["src/top/uses_rogue.cc"] = '#include "rogue/x.h"\n'
    code, err, _, _ = _analyze(files)
    assert code == 1
    assert "unknown module 'rogue'" in err


def test_intra_module_and_system_includes_are_ignored():
    files = {
        "src/low/a.h": "#pragma once\n#include <vector>\n",
        "src/low/b.h": '#pragma once\n#include "low/a.h"\n',
    }
    code, err, _, _ = _analyze(files)
    assert code == 0, err


def test_manifest_upward_declaration_is_rejected():
    manifest = {
        "layers": [["low"], ["mid", "aux"], ["top"]],
        "edges": {"low": ["top"], "mid": ["low"], "aux": [], "top": []},
    }
    code, err, _, _ = _analyze(CLEAN_TREE, manifest=manifest)
    assert code == 2
    assert "points upward" in err


def test_manifest_unknown_target_and_duplicate_module_rejected():
    manifest = {
        "layers": [["low"], ["mid"]],
        "edges": {"low": [], "mid": ["ghost"]},
    }
    code, err, _, _ = _analyze({"src/low/a.h": "#pragma once\n"},
                               manifest=manifest)
    assert code == 2
    assert "ghost" in err

    manifest = {"layers": [["low"], ["low"]], "edges": {"low": []}}
    code, err, _, _ = _analyze({"src/low/a.h": "#pragma once\n"},
                               manifest=manifest)
    assert code == 2
    assert "two layers" in err


def test_artifacts_record_edges_and_violations():
    files = dict(CLEAN_TREE)
    files["src/low/bad.cc"] = '#include "top/c.h"\n'
    code, err, payload, dot = _analyze(files, artifacts=True)
    assert code == 1
    assert payload is not None
    statuses = {(e["from"], e["to"]): e["status"] for e in payload["edges"]}
    assert statuses[("low", "top")] == "upward"
    assert statuses[("mid", "low")] == "ok"
    assert payload["violations"], "violations must be in deps.json"
    bad = [e for e in payload["edges"] if e["status"] == "upward"][0]
    assert bad["witnesses"] and "low/bad.cc:1" in bad["witnesses"][0]
    # Violating edges are highlighted in the dot output.
    assert "low -> top" in dot and "color=red" in dot


def test_live_module_may_not_depend_on_query():
    """The live ingest module's /query route is injected by the glue
    binary precisely so live/ never includes query/ — the real manifest
    declares no live -> query edge, and this fixture pins that an
    attempt to add one is rejected (not silently tolerated as a
    same-layer edge: live and query share layer 4)."""
    script_dir = os.path.dirname(os.path.abspath(__file__))
    with open(os.path.join(script_dir, "layering.json"),
              encoding="utf-8") as fh:
        real_manifest = json.load(fh)
    assert "live" in real_manifest["edges"], "live must be declared"
    assert "query" not in real_manifest["edges"]["live"]
    files = {
        "src/query/executor.h": "#pragma once\n",
        "src/live/sneak.cc": '#include "query/executor.h"\n',
    }
    # Every other module needs at least a placeholder so the analyzer
    # doesn't trip on unknown modules before reaching the edge check.
    for module in real_manifest["edges"]:
        files.setdefault("src/%s/placeholder.h" % module, "#pragma once\n")
    code, err, _, _ = _analyze(files, manifest=real_manifest)
    assert code == 1
    assert "undeclared edge live -> query" in err


def test_live_tree_is_clean():
    """The real src/ must satisfy the real manifest — this is the gate."""
    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(script_dir)
    err = io.StringIO()
    out = io.StringIO()
    code = analyze_deps.run_analysis(
        root, os.path.join(script_dir, "layering.json"),
        out=out, err=err)
    assert code == 0, "live tree violates the layering:\n" + err.getvalue()


def main():
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failures = 0
    for name, fn in tests:
        try:
            fn()
            print("PASS %s" % name)
        except AssertionError as err:
            failures += 1
            print("FAIL %s: %s" % (name, err))
    print("%d/%d passed" % (len(tests) - failures, len(tests)))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
