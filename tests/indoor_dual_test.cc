#include <gtest/gtest.h>

#include "indoor/dual.h"

namespace sitm::indoor {
namespace {

CellSpace GeoCell(int id, const std::string& name, geom::Polygon polygon) {
  CellSpace cell(CellId(id), name, CellClass::kRoom);
  cell.set_geometry(std::move(polygon));
  return cell;
}

TEST(SharedBoundaryTest, FullSharedWall) {
  const auto len = SharedBoundaryLength(geom::Polygon::Rectangle(0, 0, 4, 3),
                                        geom::Polygon::Rectangle(4, 0, 8, 3));
  ASSERT_TRUE(len.ok());
  EXPECT_NEAR(*len, 3.0, 1e-9);
}

TEST(SharedBoundaryTest, PartialSharedWall) {
  const auto len = SharedBoundaryLength(geom::Polygon::Rectangle(0, 0, 4, 4),
                                        geom::Polygon::Rectangle(4, 2, 8, 8));
  ASSERT_TRUE(len.ok());
  EXPECT_NEAR(*len, 2.0, 1e-9);
}

TEST(SharedBoundaryTest, CornerTouchIsZero) {
  const auto len = SharedBoundaryLength(geom::Polygon::Rectangle(0, 0, 2, 2),
                                        geom::Polygon::Rectangle(2, 2, 4, 4));
  ASSERT_TRUE(len.ok());
  EXPECT_NEAR(*len, 0.0, 1e-9);
}

TEST(SharedBoundaryTest, DisjointIsZero) {
  const auto len = SharedBoundaryLength(geom::Polygon::Rectangle(0, 0, 1, 1),
                                        geom::Polygon::Rectangle(5, 5, 6, 6));
  ASSERT_TRUE(len.ok());
  EXPECT_NEAR(*len, 0.0, 1e-9);
}

TEST(SharedBoundaryTest, RejectsInvalidPolygons) {
  EXPECT_FALSE(SharedBoundaryLength(geom::Polygon({{0, 0}, {1, 0}, {2, 0}}),
                                    geom::Polygon::Rectangle(0, 0, 1, 1))
                   .ok());
}

// A 2x2 grid of rooms:
//   C D
//   A B
std::vector<CellSpace> GridCells() {
  return {GeoCell(1, "A", geom::Polygon::Rectangle(0, 0, 5, 5)),
          GeoCell(2, "B", geom::Polygon::Rectangle(5, 0, 10, 5)),
          GeoCell(3, "C", geom::Polygon::Rectangle(0, 5, 5, 10)),
          GeoCell(4, "D", geom::Polygon::Rectangle(5, 5, 10, 10))};
}

TEST(DeriveFloorNrgTest, AdjacencyFollowsSharedWalls) {
  const auto nrg = DeriveFloorNrg(GridCells(), {});
  ASSERT_TRUE(nrg.ok()) << nrg.status();
  // A-B, A-C, B-D, C-D share walls; A-D and B-C only touch at the
  // center corner and must not be adjacent under the length threshold.
  EXPECT_TRUE(nrg->HasSymmetricEdge(CellId(1), CellId(2),
                                    EdgeType::kAdjacency));
  EXPECT_TRUE(nrg->HasSymmetricEdge(CellId(1), CellId(3),
                                    EdgeType::kAdjacency));
  EXPECT_TRUE(nrg->HasSymmetricEdge(CellId(2), CellId(4),
                                    EdgeType::kAdjacency));
  EXPECT_TRUE(nrg->HasSymmetricEdge(CellId(3), CellId(4),
                                    EdgeType::kAdjacency));
  EXPECT_FALSE(nrg->HasEdge(CellId(1), CellId(4), EdgeType::kAdjacency));
  EXPECT_FALSE(nrg->HasEdge(CellId(2), CellId(3), EdgeType::kAdjacency));
  // No doors were placed: no connectivity or accessibility anywhere.
  EXPECT_TRUE(nrg->OutEdges(CellId(1), EdgeType::kConnectivity).empty());
  EXPECT_TRUE(nrg->OutEdges(CellId(1), EdgeType::kAccessibility).empty());
  EXPECT_TRUE(nrg->Validate().ok());
}

TEST(DeriveFloorNrgTest, DoorsCreateConnectivityAndAccessibility) {
  DoorPlacement door;
  door.boundary = CellBoundary(BoundaryId(900), "door900",
                               BoundaryType::kDoor);
  door.position = {5, 2.5};  // on the A|B wall
  const auto nrg = DeriveFloorNrg(GridCells(), {door});
  ASSERT_TRUE(nrg.ok()) << nrg.status();
  EXPECT_TRUE(nrg->HasSymmetricEdge(CellId(1), CellId(2),
                                    EdgeType::kConnectivity));
  EXPECT_TRUE(nrg->HasSymmetricEdge(CellId(1), CellId(2),
                                    EdgeType::kAccessibility));
  EXPECT_TRUE(nrg->FindBoundary(BoundaryId(900)).ok());
}

TEST(DeriveFloorNrgTest, OneWayDoorIsDirectional) {
  // The §3.2 Salle des États pattern: exit allowed, entry prohibited.
  DoorPlacement door;
  door.boundary = CellBoundary(BoundaryId(901), "exit-only",
                               BoundaryType::kDoor);
  door.position = {5, 2.5};
  door.one_way_from = CellId(1);
  door.one_way_to = CellId(2);
  const auto nrg = DeriveFloorNrg(GridCells(), {door});
  ASSERT_TRUE(nrg.ok()) << nrg.status();
  EXPECT_TRUE(nrg->HasEdge(CellId(1), CellId(2), EdgeType::kAccessibility));
  EXPECT_FALSE(nrg->HasEdge(CellId(2), CellId(1), EdgeType::kAccessibility));
  // Connectivity stays symmetric (there is an opening either way).
  EXPECT_TRUE(nrg->HasSymmetricEdge(CellId(1), CellId(2),
                                    EdgeType::kConnectivity));
}

TEST(DeriveFloorNrgTest, OneWayCellsMustMatchDoorPosition) {
  DoorPlacement door;
  door.boundary = CellBoundary(BoundaryId(902), "bad", BoundaryType::kDoor);
  door.position = {5, 2.5};  // A|B wall
  door.one_way_from = CellId(3);
  door.one_way_to = CellId(4);
  EXPECT_EQ(DeriveFloorNrg(GridCells(), {door}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DeriveFloorNrgTest, DoorMustTouchExactlyTwoCells) {
  DoorPlacement door;
  door.boundary = CellBoundary(BoundaryId(903), "floating",
                               BoundaryType::kDoor);
  door.position = {2.5, 2.5};  // interior of A: touches no boundary
  EXPECT_EQ(DeriveFloorNrg(GridCells(), {door}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DeriveFloorNrgTest, WallsAreNotTraversable) {
  DoorPlacement wall;
  wall.boundary = CellBoundary(BoundaryId(904), "wall", BoundaryType::kWall);
  wall.position = {5, 2.5};
  EXPECT_EQ(DeriveFloorNrg(GridCells(), {wall}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DeriveFloorNrgTest, RejectsOverlappingCells) {
  std::vector<CellSpace> cells = {
      GeoCell(1, "A", geom::Polygon::Rectangle(0, 0, 6, 5)),
      GeoCell(2, "B", geom::Polygon::Rectangle(4, 0, 10, 5))};
  EXPECT_EQ(DeriveFloorNrg(cells, {}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DeriveFloorNrgTest, RejectsMissingGeometry) {
  std::vector<CellSpace> cells = {
      CellSpace(CellId(1), "no-geo", CellClass::kRoom)};
  EXPECT_EQ(DeriveFloorNrg(cells, {}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DeriveFloorNrgTest, MinSharedBoundaryFiltersShortWalls) {
  DualDeriveOptions options;
  options.min_shared_boundary = 4.0;
  std::vector<CellSpace> cells = {
      GeoCell(1, "A", geom::Polygon::Rectangle(0, 0, 5, 5)),
      GeoCell(2, "B", geom::Polygon::Rectangle(5, 0, 10, 3))};  // 3 m wall
  const auto nrg = DeriveFloorNrg(cells, {}, options);
  ASSERT_TRUE(nrg.ok());
  EXPECT_FALSE(nrg->HasEdge(CellId(1), CellId(2), EdgeType::kAdjacency));
}

}  // namespace
}  // namespace sitm::indoor
