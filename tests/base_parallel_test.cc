#include "base/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

namespace sitm {
namespace {

TEST(ThreadPoolTest, DefaultConcurrencyIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultConcurrency(), 1u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // no tasks: must not block
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 20);
  pool.Shutdown();  // second call: nothing left to drain or join
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, SubmitAfterShutdownRunsInlineOnCaller) {
  // Pinned degradation semantic the sched adapters inherit: work handed
  // to a shut-down pool executes synchronously on the caller instead of
  // being dropped or parked forever.
  ThreadPool pool(2);
  pool.Shutdown();
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  bool ran = false;
  pool.Submit([&] {
    ran = true;  // no synchronization needed: inline means sequenced
    ran_on = std::this_thread::get_id();
  });
  EXPECT_TRUE(ran);
  EXPECT_EQ(ran_on, caller);
}

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 0, [&calls](std::size_t, std::size_t) { ++calls; });
  ParallelFor(nullptr, 0, [&calls](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const std::size_t kN = 10007;  // prime: chunks never divide it evenly
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    ThreadPool::DefaultConcurrency()}) {
    ThreadPool pool(threads);
    for (const std::size_t grain : {std::size_t{0}, std::size_t{1},
                                    std::size_t{64}, kN, 2 * kN}) {
      std::vector<std::atomic<int>> hits(kN);
      for (auto& h : hits) h.store(0);
      ParallelFor(
          &pool, kN,
          [&hits](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
          },
          grain);
      for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(hits[i].load(), 1)
            << "index " << i << " threads " << threads << " grain " << grain;
      }
    }
  }
}

TEST(ParallelForTest, RangeSmallerThanWorkerCountCoversExactlyOnce) {
  // n < workers: with grain 0 the formula gives grain 1, i.e. n chunks
  // for n indices — most workers find the cursor exhausted and must
  // exit without touching the body or wedging the completion wait.
  ThreadPool pool(8);
  for (const std::size_t n : {std::size_t{1}, std::size_t{3},
                              std::size_t{7}}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    ParallelFor(&pool, n, [&hits](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "n " << n << " index " << i;
    }
  }
}

TEST(ParallelForTest, NullPoolRunsOnCallingThread) {
  std::vector<int> hits(257, 0);  // no synchronization: must be single-threaded
  ParallelFor(nullptr, hits.size(), [&hits](std::size_t begin,
                                            std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
}

TEST(ParallelForTest, ChunkBoundariesDependOnlyOnSizeAndGrain) {
  // The determinism contract: per-chunk work decomposition is a function
  // of (n, grain), never of the pool size.
  const std::size_t kN = 1000;
  const std::size_t kGrain = 37;
  auto chunks_with = [&](std::size_t threads) {
    ThreadPool pool(threads);
    std::mutex mutex;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    ParallelFor(
        &pool, kN,
        [&mutex, &chunks](std::size_t begin, std::size_t end) {
          std::lock_guard<std::mutex> lock(mutex);
          chunks.emplace(begin, end);
        },
        kGrain);
    return chunks;
  };
  const auto reference = chunks_with(1);
  EXPECT_EQ(reference.size(), (kN + kGrain - 1) / kGrain);
  EXPECT_EQ(chunks_with(2), reference);
  EXPECT_EQ(chunks_with(ThreadPool::DefaultConcurrency()), reference);
}

TEST(ParallelMapTest, ResultsAreInIndexOrder) {
  ThreadPool pool(ThreadPool::DefaultConcurrency());
  const std::vector<int> out = ParallelMap<int>(
      &pool, 5000, [](std::size_t i) { return static_cast<int>(i * i); },
      /*grain=*/7);
  ASSERT_EQ(out.size(), 5000u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i * i)) << i;
  }
}

TEST(ParallelForTest, ManySmallCallsDoNotWedgeThePool) {
  // Regression guard for the helper-task lifecycle: stale helpers from
  // finished calls must exit cleanly while new calls reuse the pool.
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    ParallelFor(
        &pool, 10,
        [&total](std::size_t begin, std::size_t end) {
          total.fetch_add(end - begin);
        },
        /*grain=*/1);
  }
  EXPECT_EQ(total.load(), 2000u);
}

}  // namespace
}  // namespace sitm
