#include <gtest/gtest.h>

#include "qsr/rcc8.h"

namespace sitm::qsr {
namespace {

TEST(RelationSetTest, EmptyAndAll) {
  EXPECT_TRUE(RelationSet::None().empty());
  EXPECT_EQ(RelationSet::None().Count(), 0);
  EXPECT_EQ(RelationSet::All().Count(), kNumTopologicalRelations);
}

TEST(RelationSetTest, SingletonRoundTrip) {
  for (TopologicalRelation r : kAllTopologicalRelations) {
    const RelationSet s = RelationSet::Of(r);
    EXPECT_EQ(s.Count(), 1);
    EXPECT_TRUE(s.Contains(r));
    EXPECT_EQ(s.Single().value(), r);
  }
}

TEST(RelationSetTest, SingleFailsOnNonSingleton) {
  EXPECT_FALSE(RelationSet::All().Single().ok());
  EXPECT_FALSE(RelationSet::None().Single().ok());
}

TEST(RelationSetTest, SetAlgebra) {
  const RelationSet a = RelationSet::Of(TopologicalRelation::kMeet)
                            .With(TopologicalRelation::kOverlap);
  const RelationSet b = RelationSet::Of(TopologicalRelation::kOverlap)
                            .With(TopologicalRelation::kEqual);
  EXPECT_EQ((a & b), RelationSet::Of(TopologicalRelation::kOverlap));
  EXPECT_EQ((a | b).Count(), 3);
}

TEST(RelationSetTest, ToStringListsMembers) {
  const RelationSet s = RelationSet::Of(TopologicalRelation::kDisjoint)
                            .With(TopologicalRelation::kEqual);
  EXPECT_EQ(s.ToString(), "{disjoint, equal}");
}

TEST(RelationSetTest, InverseSetMapsEachMember) {
  const RelationSet s = RelationSet::Of(TopologicalRelation::kContains)
                            .With(TopologicalRelation::kMeet);
  const RelationSet inv = InverseSet(s);
  EXPECT_TRUE(inv.Contains(TopologicalRelation::kInsideOf));
  EXPECT_TRUE(inv.Contains(TopologicalRelation::kMeet));
  EXPECT_EQ(inv.Count(), 2);
}

TEST(Rcc8CompositionTest, EqualIsTheIdentity) {
  for (TopologicalRelation r : kAllTopologicalRelations) {
    EXPECT_EQ(Compose(TopologicalRelation::kEqual, r), RelationSet::Of(r));
    EXPECT_EQ(Compose(r, TopologicalRelation::kEqual), RelationSet::Of(r));
  }
}

TEST(Rcc8CompositionTest, KnownEntries) {
  // Spot checks against the published table (Cohn et al. 1997).
  EXPECT_EQ(Compose(TopologicalRelation::kDisjoint,
                    TopologicalRelation::kDisjoint),
            RelationSet::All());
  EXPECT_EQ(Compose(TopologicalRelation::kInsideOf,
                    TopologicalRelation::kInsideOf),
            RelationSet::Of(TopologicalRelation::kInsideOf));
  EXPECT_EQ(Compose(TopologicalRelation::kInsideOf,
                    TopologicalRelation::kContains),
            RelationSet::All());
  EXPECT_EQ(
      Compose(TopologicalRelation::kInsideOf, TopologicalRelation::kDisjoint),
      RelationSet::Of(TopologicalRelation::kDisjoint));
  EXPECT_EQ(
      Compose(TopologicalRelation::kMeet, TopologicalRelation::kContains),
      RelationSet::Of(TopologicalRelation::kDisjoint));
  EXPECT_EQ(Compose(TopologicalRelation::kCoveredBy,
                    TopologicalRelation::kCoveredBy),
            RelationSet::Of(TopologicalRelation::kCoveredBy)
                .With(TopologicalRelation::kInsideOf));
}

// The converse-coherence property is a strong whole-table check:
// (R1 ; R2)^-1 == R2^-1 ; R1^-1 must hold for all 64 pairs.
struct CompositionCase {
  TopologicalRelation r1;
  TopologicalRelation r2;
};

class CompositionSweep : public ::testing::TestWithParam<CompositionCase> {};

TEST_P(CompositionSweep, ConverseCoherent) {
  const auto [r1, r2] = GetParam();
  EXPECT_EQ(InverseSet(Compose(r1, r2)), Compose(Inverse(r2), Inverse(r1)))
      << TopologicalRelationName(r1) << " ; " << TopologicalRelationName(r2);
}

TEST_P(CompositionSweep, NeverEmpty) {
  const auto [r1, r2] = GetParam();
  EXPECT_FALSE(Compose(r1, r2).empty());
}

TEST_P(CompositionSweep, SetCompositionMatchesPointwise) {
  const auto [r1, r2] = GetParam();
  EXPECT_EQ(Compose(RelationSet::Of(r1), RelationSet::Of(r2)),
            Compose(r1, r2));
}

std::vector<CompositionCase> AllPairs() {
  std::vector<CompositionCase> cases;
  for (TopologicalRelation r1 : kAllTopologicalRelations) {
    for (TopologicalRelation r2 : kAllTopologicalRelations) {
      cases.push_back({r1, r2});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(All64, CompositionSweep,
                         ::testing::ValuesIn(AllPairs()));

TEST(Rcc8NetworkTest, DiagonalIsEqual) {
  Rcc8Network net(3);
  EXPECT_EQ(net.At(1, 1), RelationSet::Of(TopologicalRelation::kEqual));
  EXPECT_EQ(net.At(0, 2), RelationSet::All());
}

TEST(Rcc8NetworkTest, ConstrainIntersectsAndMirrors) {
  Rcc8Network net(2);
  ASSERT_TRUE(net.Constrain(0, 1, TopologicalRelation::kContains).ok());
  EXPECT_EQ(net.At(0, 1), RelationSet::Of(TopologicalRelation::kContains));
  EXPECT_EQ(net.At(1, 0), RelationSet::Of(TopologicalRelation::kInsideOf));
}

TEST(Rcc8NetworkTest, DirectContradictionIsRejected) {
  Rcc8Network net(2);
  ASSERT_TRUE(net.Constrain(0, 1, TopologicalRelation::kDisjoint).ok());
  EXPECT_FALSE(net.Constrain(0, 1, TopologicalRelation::kOverlap).ok());
}

TEST(Rcc8NetworkTest, BadIndicesAreRejected) {
  Rcc8Network net(2);
  EXPECT_FALSE(net.Constrain(0, 5, RelationSet::All()).ok());
  EXPECT_FALSE(net.Constrain(-1, 0, RelationSet::All()).ok());
}

TEST(Rcc8NetworkTest, PathConsistencyDerivesParthoodTransitivity) {
  // room insideOf zone, zone insideOf floor => room insideOf floor;
  // this is the mereological transitivity §3.2 relies on.
  Rcc8Network net(3);
  ASSERT_TRUE(net.Constrain(0, 1, TopologicalRelation::kInsideOf).ok());
  ASSERT_TRUE(net.Constrain(1, 2, TopologicalRelation::kInsideOf).ok());
  ASSERT_TRUE(net.PropagatePathConsistency().ok());
  EXPECT_EQ(net.At(0, 2), RelationSet::Of(TopologicalRelation::kInsideOf));
  EXPECT_TRUE(net.FullyDecided());
}

TEST(Rcc8NetworkTest, PathConsistencyDetectsCyclicContainment) {
  // a inside b, b inside c, c inside a is impossible.
  Rcc8Network net(3);
  ASSERT_TRUE(net.Constrain(0, 1, TopologicalRelation::kInsideOf).ok());
  ASSERT_TRUE(net.Constrain(1, 2, TopologicalRelation::kInsideOf).ok());
  ASSERT_TRUE(net.Constrain(2, 0, TopologicalRelation::kInsideOf).ok());
  EXPECT_FALSE(net.PropagatePathConsistency().ok());
}

TEST(Rcc8NetworkTest, PathConsistencyTightensDisjunctions) {
  // a inside b, and b disjoint from c: then a must be disjoint from c.
  Rcc8Network net(3);
  ASSERT_TRUE(net.Constrain(0, 1, TopologicalRelation::kInsideOf).ok());
  ASSERT_TRUE(net.Constrain(1, 2, TopologicalRelation::kDisjoint).ok());
  ASSERT_TRUE(net.PropagatePathConsistency().ok());
  EXPECT_EQ(net.At(0, 2), RelationSet::Of(TopologicalRelation::kDisjoint));
}

TEST(Rcc8NetworkTest, RoomDisjointFloorCannotBeInItsZone) {
  // The indoor reading: a room disjoint from a floor cannot be inside a
  // zone covered by that floor.
  Rcc8Network net(3);  // 0 = room, 1 = zone, 2 = floor
  ASSERT_TRUE(net.Constrain(1, 2, TopologicalRelation::kCoveredBy).ok());
  ASSERT_TRUE(net.Constrain(0, 2, TopologicalRelation::kDisjoint).ok());
  ASSERT_TRUE(net.Constrain(0, 1, TopologicalRelation::kInsideOf).ok());
  EXPECT_FALSE(net.PropagatePathConsistency().ok());
}

TEST(Rcc8NetworkTest, UnconstrainedNetworkStaysConsistent) {
  Rcc8Network net(4);
  EXPECT_TRUE(net.PropagatePathConsistency().ok());
  EXPECT_FALSE(net.FullyDecided());
}

}  // namespace
}  // namespace sitm::qsr
