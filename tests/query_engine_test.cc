#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "sched/executor.h"
#include "core/pipeline.h"
#include "core/projection.h"
#include "louvre/museum.h"
#include "louvre/simulator.h"
#include "query/executor.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "query/result_cache.h"
#include "storage/event_store.h"

namespace sitm::query {
namespace {

// ---------------------------------------------------------------------------
// Fixtures.
// ---------------------------------------------------------------------------

const louvre::LouvreMap& Map() {
  static const louvre::LouvreMap* map =
      new louvre::LouvreMap(louvre::LouvreMap::Build().value());
  return *map;
}

const indoor::LayerHierarchy& Hierarchy() {
  static const indoor::LayerHierarchy* hierarchy =
      new indoor::LayerHierarchy(Map().BuildHierarchy().value());
  return *hierarchy;
}

const core::CellLocator& ZoneLocator() {
  static const core::CellLocator* locator = new core::CellLocator(
      core::CellLocator::Build(
          *Map().graph().FindLayer(Map().zone_layer()).value())
          .value());
  return *locator;
}

QueryContext LouvreContext() {
  QueryContext context;
  context.hierarchy = &Hierarchy();
  context.graph = &Map().graph();
  context.locator = &ZoneLocator();
  return context;
}

core::SemanticTrajectory MakeTrajectory(
    std::int64_t id, std::int64_t object,
    const std::vector<std::array<std::int64_t, 3>>& cell_start_end,
    core::AnnotationSet annotations = {{core::AnnotationKind::kActivity,
                                        "visit"}}) {
  std::vector<core::PresenceInterval> intervals;
  for (const auto& [cell, start, end] : cell_start_end) {
    intervals.emplace_back(
        BoundaryId::Invalid(), CellId(cell),
        qsr::TimeInterval::Make(Timestamp(start), Timestamp(end)).value());
  }
  return core::SemanticTrajectory(TrajectoryId(id), ObjectId(object),
                                  core::Trace(std::move(intervals)),
                                  std::move(annotations));
}

std::vector<core::SemanticTrajectory> SimulatedTrajectories(
    std::uint64_t seed, int visitors = 150) {
  louvre::SimulatorOptions options;
  options.seed = seed;
  options.num_visitors = visitors;
  options.num_returning = visitors * 2 / 5;
  options.num_third_visits = visitors / 6;
  options.num_detections =
      (visitors + options.num_returning + options.num_third_visits) * 4;
  louvre::VisitSimulator simulator(&Map(), options);
  auto dataset = simulator.Generate();
  EXPECT_TRUE(dataset.ok()) << dataset.status();
  core::PipelineOptions pipeline_options;
  pipeline_options.builder.graph =
      &Map().graph().FindLayer(Map().zone_layer()).value()->graph();
  core::BatchPipeline pipeline(pipeline_options);
  auto trajectories = pipeline.Run(dataset->ToRawDetections());
  EXPECT_TRUE(trajectories.ok()) << trajectories.status();
  return std::move(trajectories).value();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Predicate algebra.
// ---------------------------------------------------------------------------

TEST(PredicateTest, ObjectTimeAndComposition) {
  const auto t = MakeTrajectory(1, 7, {{10, 100, 200}, {11, 250, 300}});
  EXPECT_TRUE(ObjectIs(ObjectId(7)).MatchesTrajectory(t));
  EXPECT_FALSE(ObjectIs(ObjectId(8)).MatchesTrajectory(t));
  EXPECT_TRUE(ObjectIn({ObjectId(3), ObjectId(7)}).MatchesTrajectory(t));
  EXPECT_FALSE(ObjectIn({}).MatchesTrajectory(t));

  EXPECT_TRUE(TimeWindow(Timestamp(150), Timestamp(160)).MatchesTrajectory(t));
  EXPECT_TRUE(TimeWindow(Timestamp(300), std::nullopt).MatchesTrajectory(t));
  EXPECT_TRUE(TimeWindow(std::nullopt, Timestamp(100)).MatchesTrajectory(t));
  EXPECT_FALSE(TimeWindow(Timestamp(301), std::nullopt).MatchesTrajectory(t));
  // Inverted window straddled by the trajectory span: empty, not "both
  // one-sided tests pass".
  EXPECT_FALSE(
      TimeWindow(Timestamp(220), Timestamp(210)).MatchesTrajectory(t));

  EXPECT_TRUE(And(ObjectIs(ObjectId(7)), InCell(CellId(11)))
                  .MatchesTrajectory(t));
  EXPECT_FALSE(And(ObjectIs(ObjectId(7)), InCell(CellId(99)))
                   .MatchesTrajectory(t));
  EXPECT_TRUE(Or(ObjectIs(ObjectId(8)), InCell(CellId(10)))
                  .MatchesTrajectory(t));
  EXPECT_FALSE(Not(ObjectIs(ObjectId(7))).MatchesTrajectory(t));
  EXPECT_TRUE(All().MatchesTrajectory(t));
}

TEST(PredicateTest, AllenAgainstProbe) {
  const auto t = MakeTrajectory(1, 7, {{10, 100, 200}});
  const auto probe = qsr::TimeInterval::Make(Timestamp(100), Timestamp(300));
  ASSERT_TRUE(probe.ok());
  // [100, 200] starts [100, 300].
  EXPECT_TRUE(AllenAgainst(AllenMask::Of({qsr::AllenRelation::kStarts}),
                           *probe)
                  .MatchesTrajectory(t));
  EXPECT_TRUE(AllenAgainst(AllenMask::Within(), *probe).MatchesTrajectory(t));
  EXPECT_FALSE(AllenAgainst(AllenMask::Of({qsr::AllenRelation::kDuring}),
                            *probe)
                   .MatchesTrajectory(t));
  EXPECT_FALSE(AllenAgainst(AllenMask(), *probe).MatchesTrajectory(t));
}

TEST(PredicateTest, AnnotationScopes) {
  auto t = MakeTrajectory(1, 7, {{10, 100, 200}, {11, 250, 300}});
  core::AnnotationSet stop;
  stop.Add(core::AnnotationKind::kBehavior, "stop");
  t.mutable_trace().mutable_intervals()[1].annotations = stop;

  const auto traj_scope = HasAnnotation(core::AnnotationKind::kActivity,
                                        "visit", AnnotationScope::kTrajectory);
  const auto tuple_scope = HasAnnotation(core::AnnotationKind::kBehavior,
                                         "stop", AnnotationScope::kTuple);
  EXPECT_TRUE(traj_scope.MatchesTrajectory(t));
  EXPECT_TRUE(tuple_scope.MatchesTrajectory(t));
  EXPECT_FALSE(HasAnnotation(core::AnnotationKind::kActivity, "visit",
                             AnnotationScope::kTuple)
                   .MatchesTrajectory(t));
  // Tuple-level evaluation: only tuple 1 carries the stop.
  EXPECT_FALSE(tuple_scope.MatchesTuple(t, 0));
  EXPECT_TRUE(tuple_scope.MatchesTuple(t, 1));
  // Trajectory-scope leaves hold for every tuple of a matching parent.
  EXPECT_TRUE(traj_scope.MatchesTuple(t, 0));
}

TEST(PredicateTest, TupleLevelSpatialAndTemporal) {
  const auto t = MakeTrajectory(1, 7, {{10, 100, 200}, {11, 250, 300}});
  const auto in_10 = InCell(CellId(10));
  EXPECT_TRUE(in_10.MatchesTuple(t, 0));
  EXPECT_FALSE(in_10.MatchesTuple(t, 1));
  EXPECT_FALSE(in_10.MatchesTuple(t, 2));  // out of range: never matches
  const auto early = TimeWindow(std::nullopt, Timestamp(210));
  EXPECT_TRUE(early.MatchesTuple(t, 0));
  EXPECT_FALSE(early.MatchesTuple(t, 1));
}

TEST(PredicateTest, EpisodePredicates) {
  const auto t = MakeTrajectory(1, 7,
                                {{10, 100, 200}, {11, 250, 300},
                                 {12, 310, 400}});
  std::vector<core::Episode> episodes;
  core::AnnotationSet shopping;
  shopping.Add(core::AnnotationKind::kGoal, "buy souvenir");
  episodes.emplace_back("shopping", 1, 3, shopping);

  EXPECT_TRUE(HasEpisode("shopping").MatchesTrajectory(t, &episodes));
  EXPECT_TRUE(HasEpisode("").MatchesTrajectory(t, &episodes));
  EXPECT_FALSE(HasEpisode("security").MatchesTrajectory(t, &episodes));
  EXPECT_FALSE(HasEpisode("shopping").MatchesTrajectory(t, nullptr));

  // Episode interval is [250, 400]; probe [200, 500] contains it.
  const auto probe = qsr::TimeInterval::Make(Timestamp(200), Timestamp(500));
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(EpisodeAllen("shopping", AllenMask::Within(), *probe)
                  .MatchesTrajectory(t, &episodes));
  EXPECT_FALSE(EpisodeAllen("shopping",
                            AllenMask::Of({qsr::AllenRelation::kBefore}),
                            *probe)
                   .MatchesTrajectory(t, &episodes));
  // Tuple membership: tuples 1 and 2 lie inside the episode, 0 does not.
  EXPECT_FALSE(HasEpisode("shopping").MatchesTuple(t, 0, &episodes));
  EXPECT_TRUE(HasEpisode("shopping").MatchesTuple(t, 1, &episodes));
}

TEST(PredicateTest, BindResolvesSymbolicLeaves) {
  const QueryContext context = LouvreContext();
  // A trajectory through the paper's souvenir-shops zone.
  const auto t = MakeTrajectory(
      1, 7, {{louvre::kZoneEntranceHall, 100, 200},
             {louvre::kZoneSouvenirShops, 250, 300}});

  // Zone membership: the museum root covers every zone.
  const auto in_museum = InZone(CellId(louvre::kMuseumCellId));
  EXPECT_FALSE(in_museum.bound());
  EXPECT_FALSE(in_museum.MatchesTrajectory(t));  // unbound: conservative no
  const auto bound_museum = in_museum.Bind(context);
  ASSERT_TRUE(bound_museum.ok()) << bound_museum.status();
  EXPECT_TRUE(bound_museum->bound());
  EXPECT_TRUE(bound_museum->MatchesTrajectory(t));

  // Layer membership: zones are in the zone layer, not the room layer.
  const auto in_zone_layer = InLayer(Map().zone_layer()).Bind(context);
  const auto in_room_layer = InLayer(Map().room_layer()).Bind(context);
  ASSERT_TRUE(in_zone_layer.ok() && in_room_layer.ok());
  EXPECT_TRUE(in_zone_layer->MatchesTrajectory(t));
  EXPECT_FALSE(in_room_layer->MatchesTrajectory(t));

  // Missing facilities fail with InvalidArgument at Bind.
  QueryContext empty;
  EXPECT_EQ(in_museum.Bind(empty).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(InLayer(Map().zone_layer()).Bind(empty).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(AtPoint({1, 1}).Bind(empty).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(InRegion("nowhere", qsr::RelationSet::All())
                .Bind(context)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(PredicateTest, RegionAndPointLeaves) {
  QueryContext context = LouvreContext();
  const auto& entrance =
      *Map().graph().FindCell(CellId(louvre::kZoneEntranceHall)).value();
  ASSERT_TRUE(entrance.has_geometry());
  context.regions.push_back({"entrance-footprint", *entrance.geometry()});

  const auto t = MakeTrajectory(
      1, 7, {{louvre::kZoneEntranceHall, 100, 200}});
  // The entrance zone's own footprint relates to itself by "equal".
  const auto equals_region =
      InRegion("entrance-footprint",
               qsr::RelationSet::Of(qsr::TopologicalRelation::kEqual))
          .Bind(context);
  ASSERT_TRUE(equals_region.ok()) << equals_region.status();
  EXPECT_TRUE(equals_region->MatchesTrajectory(t));

  // A raw fix inside the entrance hall localizes to its cell set (plus
  // any zones overlapping it in plan view — floors stack).
  const auto centroid = entrance.geometry()->Centroid();
  const auto at_entrance = AtPoint(centroid).Bind(context);
  ASSERT_TRUE(at_entrance.ok()) << at_entrance.status();
  EXPECT_TRUE(at_entrance->MatchesTrajectory(t));
  // A zone whose footprint does not contain the fix must not match.
  const auto localized = ZoneLocator().LocalizeAll(centroid);
  CellId far_zone = CellId::Invalid();
  for (CellId zone : Map().zones()) {
    if (std::find(localized.begin(), localized.end(), zone) ==
        localized.end()) {
      far_zone = zone;
      break;
    }
  }
  ASSERT_TRUE(far_zone.valid());
  const auto elsewhere =
      MakeTrajectory(2, 8, {{far_zone.value(), 100, 200}});
  EXPECT_FALSE(at_entrance->MatchesTrajectory(elsewhere));
}

// ---------------------------------------------------------------------------
// Planner.
// ---------------------------------------------------------------------------

TEST(PlannerTest, ConjunctionTightensPushdown) {
  const Predicate p = And(
      And(ObjectIn({ObjectId(3), ObjectId(9)}),
          TimeWindow(Timestamp(100), Timestamp(500))),
      InCell(CellId(1)));
  const QueryPlan plan = Plan(p);
  ASSERT_TRUE(plan.pushdown.objects.has_value());
  EXPECT_EQ(plan.pushdown.objects->size(), 2u);
  EXPECT_EQ(plan.pushdown.min_time, Timestamp(100));
  EXPECT_EQ(plan.pushdown.max_time, Timestamp(500));
  EXPECT_FALSE(plan.pushdown.never_matches);

  // Intersecting windows tighten; disjoint object sets are contradiction.
  const QueryPlan tightened =
      Plan(And(TimeWindow(Timestamp(100), Timestamp(500)),
               TimeWindow(Timestamp(300), Timestamp(900))));
  EXPECT_EQ(tightened.pushdown.min_time, Timestamp(300));
  EXPECT_EQ(tightened.pushdown.max_time, Timestamp(500));
  const QueryPlan never = Plan(
      And(ObjectIs(ObjectId(1)), ObjectIs(ObjectId(2))));
  EXPECT_TRUE(never.pushdown.never_matches);
  EXPECT_TRUE(
      Plan(And(TimeWindow(Timestamp(500), std::nullopt),
               TimeWindow(std::nullopt, Timestamp(100))))
          .pushdown.never_matches);
}

TEST(PlannerTest, DisjunctionUnionsAndNotIsConservative) {
  const QueryPlan unioned = Plan(Or(
      And(ObjectIs(ObjectId(3)), TimeWindow(Timestamp(0), Timestamp(10))),
      And(ObjectIs(ObjectId(9)), TimeWindow(Timestamp(50), Timestamp(60)))));
  ASSERT_TRUE(unioned.pushdown.objects.has_value());
  EXPECT_EQ(unioned.pushdown.objects->size(), 2u);
  EXPECT_EQ(unioned.pushdown.min_time, Timestamp(0));
  EXPECT_EQ(unioned.pushdown.max_time, Timestamp(60));

  // One unconstrained branch washes the union out.
  const QueryPlan washed = Plan(Or(ObjectIs(ObjectId(3)), InCell(CellId(1))));
  EXPECT_FALSE(washed.pushdown.objects.has_value());

  // Negation never pushes (Not(object=3) still requires a full scan).
  const QueryPlan negated = Plan(Not(ObjectIs(ObjectId(3))));
  EXPECT_FALSE(negated.pushdown.HasConstraint());
}

TEST(PlannerTest, AllenMasksPushTimeWindows) {
  const auto probe = qsr::TimeInterval::Make(Timestamp(1000), Timestamp(2000));
  ASSERT_TRUE(probe.ok());
  // Masks without before/after imply intersection with the probe.
  const QueryPlan within = Plan(AllenAgainst(AllenMask::Within(), *probe));
  EXPECT_EQ(within.pushdown.min_time, Timestamp(1000));
  EXPECT_EQ(within.pushdown.max_time, Timestamp(2000));
  const QueryPlan overlap =
      Plan(AllenAgainst(AllenMask::Intersecting(), *probe));
  EXPECT_EQ(overlap.pushdown.min_time, Timestamp(1000));
  // A mask admitting before/after cannot push.
  const QueryPlan loose = Plan(AllenAgainst(
      AllenMask::Of({qsr::AllenRelation::kBefore,
                     qsr::AllenRelation::kDuring}),
      *probe));
  EXPECT_FALSE(loose.pushdown.HasConstraint());
  // The empty mask is unsatisfiable.
  EXPECT_TRUE(Plan(AllenAgainst(AllenMask(), *probe)).pushdown.never_matches);
}

TEST(PlannerTest, PlanBlocksUsesObjectIndex) {
  const auto trajectories = SimulatedTrajectories(11);
  const std::string path = TempPath("planner_blocks.evst");
  storage::WriterOptions options;
  options.rows_per_block = 32;
  auto writer = storage::EventStoreWriter::Create(
      path, storage::StoreKind::kTrajectories, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(trajectories).ok());
  ASSERT_TRUE(writer->Finish().ok());
  const auto reader = storage::EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  ASSERT_TRUE(reader->has_object_index());

  const ObjectId target = trajectories[trajectories.size() / 2].object();
  const QueryPlan plan = Plan(ObjectIs(target));
  const auto blocks = PlanBlocks(*reader, plan.pushdown);
  EXPECT_LT(blocks.size(), reader->num_blocks());
  // never_matches plans touch nothing.
  EXPECT_TRUE(
      PlanBlocks(*reader, Plan(ObjectIn({})).pushdown).empty());
  // Unconstrained plans touch everything.
  EXPECT_EQ(PlanBlocks(*reader, Plan(All()).pushdown).size(),
            reader->num_blocks());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Executor: projections and correctness.
// ---------------------------------------------------------------------------

TEST(QueryExecutorTest, ProjectionsAgreeWithBruteForce) {
  const auto trajectories = SimulatedTrajectories(42);
  QueryExecutor executor(LouvreContext());

  Query query;
  query.where = And(InZone(CellId(louvre::kMuseumCellId)),
                    HasAnnotation(core::AnnotationKind::kActivity, "visit",
                                  AnnotationScope::kTrajectory));
  query.projection = Projection::kCount;
  const auto count = executor.Run(query, trajectories);
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count->count, trajectories.size());  // every visit matches

  // Ids of one object, against a brute-force filter.
  const ObjectId target = trajectories[trajectories.size() / 4].object();
  query.where = ObjectIs(target);
  query.projection = Projection::kIds;
  const auto ids = executor.Run(query, trajectories);
  ASSERT_TRUE(ids.ok());
  std::vector<TrajectoryId> expected_ids;
  for (const auto& t : trajectories) {
    if (t.object() == target) expected_ids.push_back(t.id());
  }
  EXPECT_EQ(ids->ids, expected_ids);
  EXPECT_EQ(ids->count, expected_ids.size());

  // Tuples in the souvenir-shops zone during the first simulated week.
  query.where = InCell(CellId(louvre::kZoneSouvenirShops));
  query.projection = Projection::kTuples;
  query.tuple_where = query.where;
  const auto tuples = executor.Run(query, trajectories);
  ASSERT_TRUE(tuples.ok());
  ASSERT_FALSE(tuples->tuples.empty());
  std::size_t expected_tuples = 0;
  for (const auto& t : trajectories) {
    for (const auto& tuple : t.trace().intervals()) {
      expected_tuples += tuple.cell == CellId(louvre::kZoneSouvenirShops);
    }
  }
  EXPECT_EQ(tuples->tuples.size(), expected_tuples);
  for (const auto& row : tuples->tuples) {
    EXPECT_EQ(row.tuple.cell, CellId(louvre::kZoneSouvenirShops));
  }
}

TEST(QueryExecutorTest, EpisodeProjectionAndTopK) {
  const auto trajectories = SimulatedTrajectories(19);
  QueryExecutor executor(LouvreContext());

  // Long stays (>= 10 min) as episodes.
  Query query;
  core::AnnotationSet lingering;
  lingering.Add(core::AnnotationKind::kBehavior, "lingering");
  query.episodes.push_back(
      {"long-stay", core::StayAtLeast(Duration::Minutes(10)), lingering});
  query.where = HasEpisode("long-stay");
  query.projection = Projection::kEpisodes;
  query.episode_filter.label = "long-stay";
  const auto episodes = executor.Run(query, trajectories);
  ASSERT_TRUE(episodes.ok()) << episodes.status();
  ASSERT_FALSE(episodes->episodes.empty());
  for (const auto& row : episodes->episodes) {
    EXPECT_EQ(row.episode.label, "long-stay");
    EXPECT_GE((row.interval.end() - row.interval.start()).seconds(), 0);
  }
  // Every emitted episode's parent matched the predicate.
  EXPECT_LE(episodes->stats.trajectories_matched,
            episodes->stats.trajectories_considered);

  // Top-5 most similar to the first trajectory: it is its own best
  // match at similarity 1.
  Query topk;
  topk.projection = Projection::kTopK;
  topk.top_k.k = 5;
  topk.top_k.probe = &trajectories.front();
  const auto ranked = executor.Run(topk, trajectories);
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  ASSERT_EQ(ranked->top_k.size(), 5u);
  EXPECT_EQ(ranked->top_k.front().trajectory, trajectories.front().id());
  EXPECT_DOUBLE_EQ(ranked->top_k.front().similarity, 1.0);
  for (std::size_t i = 1; i < ranked->top_k.size(); ++i) {
    EXPECT_GE(ranked->top_k[i - 1].similarity, ranked->top_k[i].similarity);
  }
  // kTopK without a probe is an argument error.
  topk.top_k.probe = nullptr;
  EXPECT_EQ(executor.Run(topk, trajectories).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Determinism: pool sizes and backends (the PR 3/4 discipline).
// ---------------------------------------------------------------------------

std::vector<Query> DeterminismQueries(
    const std::vector<core::SemanticTrajectory>& trajectories) {
  std::vector<Query> queries;

  Query by_zone_and_time;
  const Timestamp mid(trajectories.front().start() +
                      Duration::Hours(24 * 30));
  by_zone_and_time.where =
      And(InZone(CellId(louvre::kMuseumCellId)),
          TimeWindow(std::nullopt, mid));
  by_zone_and_time.projection = Projection::kTrajectories;
  queries.push_back(by_zone_and_time);

  Query by_object;
  by_object.where = ObjectIs(trajectories[trajectories.size() / 2].object());
  by_object.projection = Projection::kTrajectories;
  queries.push_back(by_object);

  Query tuples;
  tuples.where = InCell(CellId(louvre::kZonePassage));
  tuples.tuple_where = tuples.where;
  tuples.projection = Projection::kTuples;
  queries.push_back(tuples);

  Query episodes;
  core::AnnotationSet lingering;
  lingering.Add(core::AnnotationKind::kBehavior, "lingering");
  episodes.episodes.push_back(
      {"long-stay", core::StayAtLeast(Duration::Minutes(8)), lingering});
  episodes.where = HasEpisode("long-stay");
  episodes.projection = Projection::kEpisodes;
  queries.push_back(episodes);

  Query topk;
  topk.projection = Projection::kTopK;
  topk.top_k.k = 7;
  topk.top_k.probe = &trajectories.front();
  queries.push_back(topk);

  return queries;
}

TEST(QueryDeterminismTest, ByteIdenticalAcrossPoolSizesAndBackends) {
  const auto trajectories = SimulatedTrajectories(20170119);
  const std::string path = TempPath("determinism.evst");
  storage::WriterOptions store_options;
  store_options.rows_per_block = 64;
  auto writer = storage::EventStoreWriter::Create(
      path, storage::StoreKind::kTrajectories, store_options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(trajectories).ok());
  ASSERT_TRUE(writer->Finish().ok());
  const auto reader = storage::EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();

  const std::vector<Query> queries = DeterminismQueries(trajectories);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    // Sequential in-memory run = the reference answer.
    QueryExecutor sequential(LouvreContext());
    const auto reference = sequential.Run(queries[q], trajectories);
    ASSERT_TRUE(reference.ok()) << reference.status();
    const std::string expected = reference->Fingerprint();
    EXPECT_FALSE(expected.empty());

    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2},
          sched::Executor::DefaultConcurrency()}) {
      sched::Executor pool_executor(threads);
      ExecutorOptions options;
      options.executor = &pool_executor;
      options.chunk = 16;  // several chunks even on small inputs
      QueryExecutor executor(LouvreContext(), options);
      const auto in_memory = executor.Run(queries[q], trajectories);
      ASSERT_TRUE(in_memory.ok()) << in_memory.status();
      EXPECT_EQ(in_memory->Fingerprint(), expected)
          << "query " << q << " in-memory at worker count " << threads;
      const auto from_store = executor.Run(queries[q], *reader);
      ASSERT_TRUE(from_store.ok()) << from_store.status();
      EXPECT_EQ(from_store->Fingerprint(), expected)
          << "query " << q << " store-backed at pool size " << threads;
    }
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Pushdown accounting: the acceptance criterion's shape.
// ---------------------------------------------------------------------------

TEST(QueryExecutorTest, ObjectPointLookupScansFarFewerTuples) {
  const auto trajectories = SimulatedTrajectories(99, 200);
  const std::string path = TempPath("pruning.evst");
  storage::WriterOptions options;
  options.rows_per_block = 32;
  auto writer = storage::EventStoreWriter::Create(
      path, storage::StoreKind::kTrajectories, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(trajectories).ok());
  ASSERT_TRUE(writer->Finish().ok());
  const auto reader = storage::EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();

  QueryExecutor executor(LouvreContext());
  Query query;
  query.where = ObjectIs(trajectories[trajectories.size() / 2].object());
  query.projection = Projection::kTrajectories;
  const auto result = executor.Run(query, *reader);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GT(result->trajectories.size(), 0u);
  EXPECT_EQ(result->stats.rows_total, reader->rows());
  // The point lookup must scan at least 10x fewer tuples than the full
  // scan would (the ISSUE acceptance shape, at test scale).
  EXPECT_LE(result->stats.rows_scanned * 10, result->stats.rows_total);
  EXPECT_LT(result->stats.blocks_scanned, result->stats.blocks_total);

  // A contradictory query answers from the plan alone.
  query.where = And(ObjectIs(ObjectId(1)), ObjectIs(ObjectId(2)));
  const auto never = executor.Run(query, *reader);
  ASSERT_TRUE(never.ok());
  EXPECT_EQ(never->count, 0u);
  EXPECT_EQ(never->stats.blocks_scanned, 0u);
  EXPECT_EQ(never->stats.rows_scanned, 0u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Canonical predicate keys (the query half of the result-cache key).
// ---------------------------------------------------------------------------

TEST(PredicateTest, CanonicalKeyDistinguishesPredicates) {
  // Distinct predicates must render distinct keys — including pairs
  // whose ToString forms could collide — and equal predicates equal
  // keys. This is what makes cache keys content-complete.
  const qsr::TimeInterval probe =
      qsr::TimeInterval::Make(Timestamp(100), Timestamp(200)).value();
  std::vector<Predicate> distinct;
  distinct.push_back(All());
  distinct.push_back(ObjectIs(ObjectId(7)));
  distinct.push_back(ObjectIn({ObjectId(7), ObjectId(9)}));
  distinct.push_back(Not(ObjectIs(ObjectId(7))));
  distinct.push_back(And(ObjectIs(ObjectId(7)), All()));
  distinct.push_back(Or(ObjectIs(ObjectId(7)), All()));
  distinct.push_back(TimeWindow(Timestamp(1), Timestamp(2)));
  distinct.push_back(TimeWindow(std::nullopt, Timestamp(2)));
  distinct.push_back(InCell(CellId(3)));
  distinct.push_back(InZone(CellId(3)));
  distinct.push_back(HasAnnotation(core::AnnotationKind::kActivity, "x",
                                   AnnotationScope::kAnywhere));
  distinct.push_back(HasAnnotation(core::AnnotationKind::kBehavior, "x",
                                   AnnotationScope::kAnywhere));
  distinct.push_back(HasAnnotation(core::AnnotationKind::kActivity, "x",
                                   AnnotationScope::kTrajectory));
  distinct.push_back(HasEpisode("x"));
  distinct.push_back(AllenAgainst(AllenMask::Of({qsr::AllenRelation::kDuring}),
                                  probe));
  for (std::size_t a = 0; a < distinct.size(); ++a) {
    EXPECT_EQ(distinct[a].CanonicalKey(), distinct[a].CanonicalKey());
    for (std::size_t b = a + 1; b < distinct.size(); ++b) {
      EXPECT_NE(distinct[a].CanonicalKey(), distinct[b].CanonicalKey())
          << a << " vs " << b;
    }
  }
  // Binding resolves symbolic spatial leaves into concrete cell sets,
  // and the bound key reflects the cells, not the source text.
  QueryContext context = LouvreContext();
  const auto bound =
      InZone(CellId(louvre::kZoneSouvenirShops)).Bind(context);
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_NE(
      bound->CanonicalKey(),
      InZone(CellId(louvre::kZonePassage)).Bind(context)->CanonicalKey());
}

// ---------------------------------------------------------------------------
// Annotation pushdown: planner meets/joins terms, bitmaps prune blocks.
// ---------------------------------------------------------------------------

TEST(PlannerTest, AnnotationPredicatesPruneBlocksViaBitmaps) {
  auto trajectories = SimulatedTrajectories(31);
  ASSERT_GT(trajectories.size(), 3u);
  // Mark the first three trajectories with a rare tuple-level behavior:
  // they cluster in the file's first blocks, so bitmap pruning has
  // blocks to skip and blocks to keep.
  const core::SemanticAnnotation rare{core::AnnotationKind::kBehavior,
                                      "vip"};
  for (std::size_t i = 0; i < 3; ++i) {
    trajectories[i].mutable_trace().mutable_intervals()[0].annotations.Add(
        rare.kind, rare.value);
  }

  const std::string v3_path = TempPath("bitmap_plan_v3.evst");
  const std::string v2_path = TempPath("bitmap_plan_v2.evst");
  storage::WriterOptions options;
  options.rows_per_block = 32;
  auto v3 = storage::EventStoreWriter::Create(
      v3_path, storage::StoreKind::kTrajectories, options);
  ASSERT_TRUE(v3.ok());
  ASSERT_TRUE(v3->Append(trajectories).ok());
  ASSERT_TRUE(v3->Finish().ok());
  options.format_version = 2;
  auto v2 = storage::EventStoreWriter::Create(
      v2_path, storage::StoreKind::kTrajectories, options);
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE(v2->Append(trajectories).ok());
  ASSERT_TRUE(v2->Finish().ok());
  const auto v3_reader = storage::EventStoreReader::Open(v3_path);
  const auto v2_reader = storage::EventStoreReader::Open(v2_path);
  ASSERT_TRUE(v3_reader.ok()) << v3_reader.status();
  ASSERT_TRUE(v2_reader.ok()) << v2_reader.status();
  ASSERT_TRUE(v3_reader->has_annotation_bitmaps());
  ASSERT_FALSE(v2_reader->has_annotation_bitmaps());

  const QueryPlan plan = Plan(HasAnnotation(rare.kind, rare.value, AnnotationScope::kAnywhere));
  ASSERT_EQ(plan.pushdown.annotations.size(), 1u);
  const auto v3_blocks = PlanBlocks(*v3_reader, plan.pushdown);
  const auto v2_blocks = PlanBlocks(*v2_reader, plan.pushdown);
  // Same data, same block geometry: v2 scans everything, v3 strictly
  // fewer — the ISSUE's bench_q1 acceptance shape at test scale.
  EXPECT_EQ(v2_blocks.size(), v2_reader->num_blocks());
  EXPECT_LT(v3_blocks.size(), v2_blocks.size());
  EXPECT_FALSE(v3_blocks.empty());

  // Conjunction keeps the union of both sides' terms; disjunction only
  // what both demand.
  const QueryPlan both = Plan(And(HasAnnotation(rare.kind, rare.value, AnnotationScope::kAnywhere),
                                  HasAnnotation(rare.kind, "other", AnnotationScope::kAnywhere)));
  EXPECT_EQ(both.pushdown.annotations.size(), 2u);
  const QueryPlan either = Plan(Or(HasAnnotation(rare.kind, rare.value, AnnotationScope::kAnywhere),
                                   HasAnnotation(rare.kind, "other", AnnotationScope::kAnywhere)));
  EXPECT_TRUE(either.pushdown.annotations.empty());

  // A term absent from the store plans zero blocks on v3.
  const QueryPlan absent =
      Plan(HasAnnotation(core::AnnotationKind::kGoal, "no-such-term",
           AnnotationScope::kAnywhere));
  EXPECT_TRUE(PlanBlocks(*v3_reader, absent.pushdown).empty());
  EXPECT_EQ(PlanBlocks(*v2_reader, absent.pushdown).size(),
            v2_reader->num_blocks());

  // And pruning is invisible in the answers: both stores agree.
  QueryExecutor executor(LouvreContext());
  Query query;
  query.where = HasAnnotation(rare.kind, rare.value, AnnotationScope::kAnywhere);
  query.projection = Projection::kTrajectories;
  const auto from_v3 = executor.Run(query, *v3_reader);
  const auto from_v2 = executor.Run(query, *v2_reader);
  ASSERT_TRUE(from_v3.ok()) << from_v3.status();
  ASSERT_TRUE(from_v2.ok()) << from_v2.status();
  EXPECT_EQ(from_v3->Fingerprint(), from_v2->Fingerprint());
  EXPECT_LT(from_v3->stats.blocks_scanned, from_v2->stats.blocks_scanned);
  std::remove(v3_path.c_str());
  std::remove(v2_path.c_str());
}

// ---------------------------------------------------------------------------
// Query-result cache.
// ---------------------------------------------------------------------------

TEST(QueryResultCacheTest, HitsAreByteIdenticalToColdExecution) {
  const auto trajectories = SimulatedTrajectories(77);
  const std::string path = TempPath("cache_hits.evst");
  storage::WriterOptions store_options;
  store_options.rows_per_block = 64;
  auto writer = storage::EventStoreWriter::Create(
      path, storage::StoreKind::kTrajectories, store_options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(trajectories).ok());
  ASSERT_TRUE(writer->Finish().ok());
  const auto reader = storage::EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();

  Query query;
  query.where =
      And(InZone(CellId(louvre::kMuseumCellId)),
          HasAnnotation(core::AnnotationKind::kActivity, "visit",
                        AnnotationScope::kTrajectory));
  query.projection = Projection::kIds;

  // The no-cache reference answer.
  QueryExecutor cold(LouvreContext());
  const auto reference = cold.Run(query, *reader);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::string expected = reference->Fingerprint();

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2},
        sched::Executor::DefaultConcurrency()}) {
    QueryResultCache cache;
    sched::Executor pool(threads);
    ExecutorOptions options;
    options.executor = &pool;
    options.cache = &cache;
    QueryExecutor executor(LouvreContext(), options);

    const auto miss = executor.Run(query, *reader);
    ASSERT_TRUE(miss.ok()) << miss.status();
    EXPECT_EQ(miss->Fingerprint(), expected) << threads << " workers";
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().inserts, 1u);

    const auto hit = executor.Run(query, *reader);
    ASSERT_TRUE(hit.ok()) << hit.status();
    EXPECT_EQ(hit->Fingerprint(), expected)
        << "cache hit diverged at " << threads << " workers";
    EXPECT_EQ(cache.stats().hits, 1u);
    // Stats ride along with the cached result: a hit reports the same
    // pruning accounting the cold run measured.
    EXPECT_EQ(hit->stats.blocks_scanned, miss->stats.blocks_scanned);
  }
  std::remove(path.c_str());
}

TEST(QueryResultCacheTest, KeyPinsStoreContentsAndBoundPredicates) {
  const auto a_trajectories = SimulatedTrajectories(78, 60);
  const auto b_trajectories = SimulatedTrajectories(79, 60);
  const std::string a_path = TempPath("cache_a.evst");
  const std::string b_path = TempPath("cache_b.evst");
  for (const auto& [path, trajectories] :
       {std::pair(a_path, &a_trajectories),
        std::pair(b_path, &b_trajectories)}) {
    auto writer = storage::EventStoreWriter::Create(
        path, storage::StoreKind::kTrajectories, {});
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(*trajectories).ok());
    ASSERT_TRUE(writer->Finish().ok());
  }
  const auto a_reader = storage::EventStoreReader::Open(a_path);
  const auto b_reader = storage::EventStoreReader::Open(b_path);
  ASSERT_TRUE(a_reader.ok());
  ASSERT_TRUE(b_reader.ok());

  QueryContext context = LouvreContext();
  Query query;
  query.projection = Projection::kCount;
  const auto bound = All().Bind(context);
  ASSERT_TRUE(bound.ok());
  // Same query, different files: different keys (the store half).
  EXPECT_NE(QueryResultCache::Key(query, *bound, *bound, *a_reader),
            QueryResultCache::Key(query, *bound, *bound, *b_reader));
  // Same file, different projection: different keys (the query half).
  Query ids = query;
  ids.projection = Projection::kIds;
  EXPECT_NE(QueryResultCache::Key(query, *bound, *bound, *a_reader),
            QueryResultCache::Key(ids, *bound, *bound, *a_reader));

  // Exercised end to end: one cache serving two stores never crosses
  // answers.
  QueryResultCache cache;
  ExecutorOptions options;
  options.cache = &cache;
  QueryExecutor executor(context, options);
  Query count;
  count.projection = Projection::kCount;
  const auto a_cold = executor.Run(count, *a_reader);
  const auto b_cold = executor.Run(count, *b_reader);
  const auto a_warm = executor.Run(count, *a_reader);
  const auto b_warm = executor.Run(count, *b_reader);
  ASSERT_TRUE(a_cold.ok() && b_cold.ok() && a_warm.ok() && b_warm.ok());
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(a_warm->count, a_cold->count);
  EXPECT_EQ(b_warm->count, b_cold->count);
  EXPECT_EQ(a_cold->count, a_trajectories.size());
  EXPECT_EQ(b_cold->count, b_trajectories.size());
  std::remove(a_path.c_str());
  std::remove(b_path.c_str());
}

TEST(QueryResultCacheTest, LruEvictsLeastRecentlyUsed) {
  QueryResultCache cache(2);
  QueryResult one;
  one.projection = Projection::kCount;
  one.count = 1;
  QueryResult two = one;
  two.count = 2;
  QueryResult three = one;
  three.count = 3;
  cache.Insert("one", one);
  cache.Insert("two", two);
  EXPECT_EQ(cache.size(), 2u);
  // Touch "one" so "two" is now the LRU entry.
  ASSERT_TRUE(cache.Lookup("one").has_value());
  cache.Insert("three", three);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.Lookup("two").has_value());
  ASSERT_TRUE(cache.Lookup("one").has_value());
  EXPECT_EQ(cache.Lookup("one")->count, 1u);
  EXPECT_EQ(cache.Lookup("three")->count, 3u);
  // Re-inserting an existing key refreshes rather than duplicates.
  cache.Insert("three", two);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup("three")->count, 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("one").has_value());
}

TEST(QueryResultCacheTest, UncacheableQueriesRunColdEveryTime) {
  const auto trajectories = SimulatedTrajectories(80, 60);
  const std::string path = TempPath("cache_bypass.evst");
  auto writer = storage::EventStoreWriter::Create(
      path, storage::StoreKind::kTrajectories, {});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(trajectories).ok());
  ASSERT_TRUE(writer->Finish().ok());
  const auto reader = storage::EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok());

  Query episodes;
  core::AnnotationSet lingering;
  lingering.Add(core::AnnotationKind::kBehavior, "lingering");
  episodes.episodes.push_back(
      {"long-stay", core::StayAtLeast(Duration::Minutes(8)), lingering});
  episodes.where = HasEpisode("long-stay");
  episodes.projection = Projection::kEpisodes;
  EXPECT_FALSE(QueryResultCache::Cacheable(episodes));

  Query topk;
  topk.projection = Projection::kTopK;
  topk.top_k.probe = &trajectories.front();
  EXPECT_FALSE(QueryResultCache::Cacheable(topk));

  QueryResultCache cache;
  ExecutorOptions options;
  options.cache = &cache;
  QueryExecutor executor(LouvreContext(), options);
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(executor.Run(episodes, *reader).ok());
    ASSERT_TRUE(executor.Run(topk, *reader).ok());
  }
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().inserts, 0u);
  EXPECT_EQ(cache.size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sitm::query
