// Byte-level edge cases for the columnar encoding primitives, with the
// varint decoder's shift-width boundaries pinned explicitly: the 10-byte
// maximum-length varint shifts its last payload by 63, one step short of
// the width of uint64 — the sanitizer matrix (SITM_SANITIZE=undefined)
// runs these to prove no decode path ever shifts by >= 64 or overflows,
// no matter what bytes a corrupt file feeds in.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/columnar.h"

namespace sitm::storage {
namespace {

std::vector<std::uint64_t> U64Corners() {
  return {0,
          1,
          0x7f,
          0x80,
          0x3fff,
          0x4000,
          (1ull << 35) - 1,
          1ull << 35,
          (1ull << 56) - 1,
          1ull << 56,
          (1ull << 63) - 1,
          1ull << 63,
          std::numeric_limits<std::uint64_t>::max()};
}

TEST(ColumnarVarintTest, RoundTripsEveryShiftBoundary) {
  for (const std::uint64_t v : U64Corners()) {
    std::string buf;
    PutVarint64(buf, v);
    ASSERT_LE(buf.size(), 10u) << v;
    ByteReader reader(buf);
    const Result<std::uint64_t> decoded = reader.ReadVarint64();
    ASSERT_TRUE(decoded.ok()) << v;
    EXPECT_EQ(*decoded, v);
    EXPECT_TRUE(reader.empty());
  }
}

TEST(ColumnarVarintTest, MaxValueUsesTenBytesWithTopBitOnly) {
  std::string buf;
  PutVarint64(buf, std::numeric_limits<std::uint64_t>::max());
  ASSERT_EQ(buf.size(), 10u);
  // The 10th byte contributes only bit 63: its payload must be 1.
  EXPECT_EQ(static_cast<unsigned char>(buf[9]), 0x01);
}

TEST(ColumnarVarintTest, TenthByteAboveOneIsCorruptionNotOverflow) {
  // 9 continuation bytes followed by a 10th whose payload would need
  // shifts past bit 63. A naive decoder shifts those bits into the void
  // (or into UB); ours must refuse the encoding.
  std::string buf(9, static_cast<char>(0x80));
  buf.push_back(static_cast<char>(0x02));
  ByteReader reader(buf);
  const Result<std::uint64_t> decoded = reader.ReadVarint64();
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().Is(StatusCode::kCorruption));
}

TEST(ColumnarVarintTest, ElevenContinuationBytesIsCorruption) {
  const std::string buf(11, static_cast<char>(0x80));
  ByteReader reader(buf);
  const Result<std::uint64_t> decoded = reader.ReadVarint64();
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().Is(StatusCode::kCorruption));
}

TEST(ColumnarVarintTest, TruncatedMidVarintIsCorruption) {
  std::string full;
  PutVarint64(full, 1ull << 62);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    ByteReader reader(full.data(), cut);
    const Result<std::uint64_t> decoded = reader.ReadVarint64();
    ASSERT_FALSE(decoded.ok()) << "cut at " << cut;
    EXPECT_TRUE(decoded.status().Is(StatusCode::kCorruption));
  }
}

TEST(ColumnarZigZagTest, RoundTripsInt64Extremes) {
  const std::vector<std::int64_t> corners = {
      0,
      -1,
      1,
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::min() + 1,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::max() - 1};
  for (const std::int64_t v : corners) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
    std::string buf;
    PutSVarint64(buf, v);
    ByteReader reader(buf);
    const Result<std::int64_t> decoded = reader.ReadSVarint64();
    ASSERT_TRUE(decoded.ok()) << v;
    EXPECT_EQ(*decoded, v);
  }
}

TEST(ColumnarDeltaColumnTest, AdjacentInt64ExtremesRoundTrip) {
  // Deltas wrap mod 2^64 by design: consecutive values at the two ends
  // of the int64 range produce the largest possible wrapped deltas.
  const std::vector<std::int64_t> values = {
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min(),
      0,
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max(),
      -1,
      1};
  std::string buf;
  PutDeltaColumn(buf, values);
  ByteReader reader(buf);
  const Result<std::vector<std::int64_t>> decoded =
      ReadDeltaColumn(reader, values.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, values);
  EXPECT_TRUE(reader.empty());
}

TEST(ColumnarDeltaColumnTest, CraftedOverflowingDeltasDecodeDefined) {
  // A hostile column whose running sum overflows int64 repeatedly must
  // decode to *some* deterministic values (wrap semantics), never trap.
  std::string buf;
  for (int i = 0; i < 8; ++i) {
    PutSVarint64(buf, std::numeric_limits<std::int64_t>::max());
  }
  ByteReader reader(buf);
  const Result<std::vector<std::int64_t>> decoded = ReadDeltaColumn(reader, 8);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 8u);
  // Running sum of int64::max mod 2^64; spot-check the wrap landed where
  // two's-complement arithmetic says it must.
  EXPECT_EQ((*decoded)[0], std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ((*decoded)[1], -2);
}

TEST(ColumnarBitColumnTest, TailBitsRoundTripAtEveryWidth) {
  for (std::size_t n = 0; n <= 17; ++n) {
    std::vector<bool> values;
    values.reserve(n);
    for (std::size_t i = 0; i < n; ++i) values.push_back((i % 3) == 0);
    std::string buf;
    PutBitColumn(buf, values);
    EXPECT_EQ(buf.size(), (n + 7) / 8);
    ByteReader reader(buf);
    const Result<std::vector<bool>> decoded = ReadBitColumn(reader, n);
    ASSERT_TRUE(decoded.ok()) << n;
    EXPECT_EQ(*decoded, values);
  }
}

TEST(ColumnarFixedWidthTest, U32U64RoundTripAndTruncationChecks) {
  std::string buf;
  PutU32(buf, 0xdeadbeefu);
  PutU64(buf, 0x0123456789abcdefull);
  ByteReader reader(buf);
  const Result<std::uint32_t> u32 = reader.ReadU32();
  ASSERT_TRUE(u32.ok());
  EXPECT_EQ(*u32, 0xdeadbeefu);
  const Result<std::uint64_t> u64 = reader.ReadU64();
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(*u64, 0x0123456789abcdefull);

  ByteReader short_reader(buf.data(), 3);
  ASSERT_FALSE(short_reader.ReadU32().ok());
  ByteReader short_reader64(buf.data(), 7);
  ASSERT_FALSE(short_reader64.ReadU64().ok());
}

// ---------------------------------------------------------------------------
// Chunked FOR bitpacking (the v3 kPacked codec's column layer).
// ---------------------------------------------------------------------------

/// Deterministic xorshift so the property tests need no <random> and
/// reproduce bit-for-bit everywhere.
std::uint64_t NextRand(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

TEST(ColumnarPackedTest, RoundTripsCornersAndRandomWidths) {
  // Corner values exercise every chunk bit width 0..64; random vectors
  // of every length around the chunk size cover the tail handling.
  std::vector<std::uint64_t> corners = U64Corners();
  std::string buf;
  PutPackedColumn(buf, corners);
  ByteReader reader(buf);
  const auto corner_decoded = ReadPackedColumn(reader, corners.size());
  ASSERT_TRUE(corner_decoded.ok()) << corner_decoded.status();
  EXPECT_EQ(*corner_decoded, corners);
  EXPECT_TRUE(reader.empty());

  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (const std::size_t n :
       {0ul, 1ul, kPackedChunkSize - 1, kPackedChunkSize, kPackedChunkSize + 1,
        3 * kPackedChunkSize + 7}) {
    for (const int width : {1, 7, 13, 31, 64}) {
      std::vector<std::uint64_t> values(n);
      const std::uint64_t mask =
          width == 64 ? ~0ull : (1ull << width) - 1;
      for (auto& v : values) v = NextRand(state) & mask;
      std::string packed;
      PutPackedColumn(packed, values);
      ByteReader packed_reader(packed);
      const auto decoded = ReadPackedColumn(packed_reader, n);
      ASSERT_TRUE(decoded.ok()) << decoded.status();
      EXPECT_EQ(*decoded, values) << "n=" << n << " width=" << width;
      EXPECT_TRUE(packed_reader.empty());
    }
  }
}

TEST(ColumnarPackedTest, ConstantRunsPackToReferenceOnly) {
  // A constant chunk has bit width 0: only the reference varint and the
  // width byte remain, the whole point of frame-of-reference packing.
  const std::vector<std::uint64_t> values(kPackedChunkSize, 123456789ull);
  std::string buf;
  PutPackedColumn(buf, values);
  EXPECT_LE(buf.size(), 6u);
  ByteReader reader(buf);
  const auto decoded = ReadPackedColumn(reader, values.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, values);
}

TEST(ColumnarPackedTest, DeltaAndSignedVariantsRoundTripExtremes) {
  const std::vector<std::int64_t> values = {
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max(),
      0,
      -1,
      1,
      std::numeric_limits<std::int64_t>::min(),
      42};
  std::string delta;
  PutPackedDeltaColumn(delta, values);
  ByteReader delta_reader(delta);
  const auto delta_decoded = ReadPackedDeltaColumn(delta_reader,
                                                   values.size());
  ASSERT_TRUE(delta_decoded.ok()) << delta_decoded.status();
  EXPECT_EQ(*delta_decoded, values);

  std::string zz;
  PutPackedSignedColumn(zz, values);
  ByteReader zz_reader(zz);
  const auto zz_decoded = ReadPackedSignedColumn(zz_reader, values.size());
  ASSERT_TRUE(zz_decoded.ok()) << zz_decoded.status();
  EXPECT_EQ(*zz_decoded, values);
}

TEST(ColumnarPackedTest, TruncationAndBadWidthAreCorruption) {
  std::vector<std::uint64_t> values(kPackedChunkSize + 3, 0);
  std::uint64_t state = 7;
  for (auto& v : values) v = NextRand(state);
  std::string buf;
  PutPackedColumn(buf, values);
  // Every proper prefix must fail cleanly, never read out of bounds.
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    ByteReader reader(buf.data(), cut);
    EXPECT_EQ(ReadPackedColumn(reader, values.size()).status().code(),
              StatusCode::kCorruption)
        << "cut at " << cut;
  }
  // A forged chunk bit width above 64 can never be honest.
  std::string forged = buf;
  std::size_t width_at = 0;  // first chunk: varint reference, then width
  while (static_cast<unsigned char>(forged[width_at]) & 0x80) ++width_at;
  ++width_at;
  forged[width_at] = 65;
  ByteReader forged_reader(forged);
  EXPECT_EQ(ReadPackedColumn(forged_reader, values.size()).status().code(),
            StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// LZ byte codec (the v3 kLz / kPackedLz codecs' byte layer).
// ---------------------------------------------------------------------------

std::vector<std::string> LzCorpus() {
  std::vector<std::string> corpus;
  corpus.emplace_back();                      // empty
  corpus.emplace_back("a");                   // below min match
  corpus.emplace_back(std::string(100, 'x'));  // pure run (self-overlap)
  corpus.push_back([] {                       // page of repeating records
    std::string s;
    for (int i = 0; i < 200; ++i) {
      s += "object=" + std::to_string(i % 17) + ";cell=" +
           std::to_string(i % 23) + ";";
    }
    return s;
  }());
  corpus.push_back([] {  // incompressible pseudo-random bytes
    std::string s;
    std::uint64_t state = 0xdeadbeefcafef00dull;
    for (int i = 0; i < 4096; ++i) {
      s.push_back(static_cast<char>(NextRand(state) & 0xff));
    }
    return s;
  }());
  corpus.push_back([] {  // long-range repeat straddling the 64KB window
    std::string s(70000, '\0');
    std::uint64_t state = 3;
    for (auto& c : s) c = static_cast<char>(NextRand(state) & 0x0f);
    s += s.substr(0, 3000);
    return s;
  }());
  return corpus;
}

TEST(ColumnarLzTest, RoundTripsCorpusLosslessly) {
  for (const std::string& input : LzCorpus()) {
    const std::string compressed = CompressBytes(input);
    const auto decompressed = DecompressBytes(compressed, input.size());
    ASSERT_TRUE(decompressed.ok()) << decompressed.status();
    EXPECT_EQ(*decompressed, input);
  }
}

TEST(ColumnarLzTest, RepetitiveInputActuallyCompresses) {
  const std::string input(LzCorpus()[3]);  // repeating records
  EXPECT_LT(CompressBytes(input).size(), input.size() / 2);
}

TEST(ColumnarLzTest, EveryTruncationIsCorruption) {
  // A truncated stream either cuts a literal run / match token (bounds
  // check) or ends early (declared-size check) — always Corruption.
  const std::string input = LzCorpus()[3];
  const std::string compressed = CompressBytes(input);
  for (std::size_t cut = 0; cut < compressed.size(); ++cut) {
    const auto decompressed =
        DecompressBytes(compressed.substr(0, cut), input.size());
    EXPECT_EQ(decompressed.status().code(), StatusCode::kCorruption)
        << "cut at " << cut;
  }
}

TEST(ColumnarLzTest, WrongDeclaredSizeIsCorruption) {
  const std::string input = LzCorpus()[3];
  const std::string compressed = CompressBytes(input);
  EXPECT_EQ(DecompressBytes(compressed, input.size() - 1).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(DecompressBytes(compressed, input.size() + 1).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(DecompressBytes(compressed, 0).status().code(),
            StatusCode::kCorruption);
}

TEST(ColumnarLzTest, BitFlippedStreamsNeverMisbehave) {
  // A flipped byte may still decode (a literal changed in place) but the
  // decoder must never crash, over-read, or return the wrong size.
  const std::string input = LzCorpus()[3];
  const std::string compressed = CompressBytes(input);
  for (std::size_t pos = 0; pos < compressed.size(); ++pos) {
    for (const unsigned char mask : {0x01, 0x80}) {
      std::string flipped = compressed;
      flipped[pos] = static_cast<char>(flipped[pos] ^ mask);
      const auto decompressed = DecompressBytes(flipped, input.size());
      if (decompressed.ok()) {
        EXPECT_EQ(decompressed->size(), input.size());
      } else {
        EXPECT_EQ(decompressed.status().code(), StatusCode::kCorruption);
      }
    }
  }
}

TEST(ColumnarLzTest, ForgedDistanceAndLengthAreCorruption) {
  // Hand-built streams hitting each decoder guard: distance 0, distance
  // beyond the produced window, and runs overflowing the declared size.
  std::string zero_distance;
  PutVarint64(zero_distance, 4);
  zero_distance += "abcd";
  PutVarint64(zero_distance, 0);  // match length 4
  PutVarint64(zero_distance, 0);  // distance 0: invalid
  EXPECT_EQ(DecompressBytes(zero_distance, 8).status().code(),
            StatusCode::kCorruption);

  std::string far_distance;
  PutVarint64(far_distance, 4);
  far_distance += "abcd";
  PutVarint64(far_distance, 0);
  PutVarint64(far_distance, 5);  // only 4 bytes produced so far
  EXPECT_EQ(DecompressBytes(far_distance, 8).status().code(),
            StatusCode::kCorruption);

  std::string fat_literal;
  PutVarint64(fat_literal, 100);  // literal run beyond declared size
  fat_literal += std::string(100, 'z');
  EXPECT_EQ(DecompressBytes(fat_literal, 10).status().code(),
            StatusCode::kCorruption);

  std::string fat_match;
  PutVarint64(fat_match, 4);
  fat_match += "abcd";
  PutVarint64(fat_match, 1u << 20);  // match overflowing declared size
  PutVarint64(fat_match, 1);
  EXPECT_EQ(DecompressBytes(fat_match, 16).status().code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace sitm::storage
