// Byte-level edge cases for the columnar encoding primitives, with the
// varint decoder's shift-width boundaries pinned explicitly: the 10-byte
// maximum-length varint shifts its last payload by 63, one step short of
// the width of uint64 — the sanitizer matrix (SITM_SANITIZE=undefined)
// runs these to prove no decode path ever shifts by >= 64 or overflows,
// no matter what bytes a corrupt file feeds in.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/columnar.h"

namespace sitm::storage {
namespace {

std::vector<std::uint64_t> U64Corners() {
  return {0,
          1,
          0x7f,
          0x80,
          0x3fff,
          0x4000,
          (1ull << 35) - 1,
          1ull << 35,
          (1ull << 56) - 1,
          1ull << 56,
          (1ull << 63) - 1,
          1ull << 63,
          std::numeric_limits<std::uint64_t>::max()};
}

TEST(ColumnarVarintTest, RoundTripsEveryShiftBoundary) {
  for (const std::uint64_t v : U64Corners()) {
    std::string buf;
    PutVarint64(buf, v);
    ASSERT_LE(buf.size(), 10u) << v;
    ByteReader reader(buf);
    const Result<std::uint64_t> decoded = reader.ReadVarint64();
    ASSERT_TRUE(decoded.ok()) << v;
    EXPECT_EQ(*decoded, v);
    EXPECT_TRUE(reader.empty());
  }
}

TEST(ColumnarVarintTest, MaxValueUsesTenBytesWithTopBitOnly) {
  std::string buf;
  PutVarint64(buf, std::numeric_limits<std::uint64_t>::max());
  ASSERT_EQ(buf.size(), 10u);
  // The 10th byte contributes only bit 63: its payload must be 1.
  EXPECT_EQ(static_cast<unsigned char>(buf[9]), 0x01);
}

TEST(ColumnarVarintTest, TenthByteAboveOneIsCorruptionNotOverflow) {
  // 9 continuation bytes followed by a 10th whose payload would need
  // shifts past bit 63. A naive decoder shifts those bits into the void
  // (or into UB); ours must refuse the encoding.
  std::string buf(9, static_cast<char>(0x80));
  buf.push_back(static_cast<char>(0x02));
  ByteReader reader(buf);
  const Result<std::uint64_t> decoded = reader.ReadVarint64();
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().Is(StatusCode::kCorruption));
}

TEST(ColumnarVarintTest, ElevenContinuationBytesIsCorruption) {
  const std::string buf(11, static_cast<char>(0x80));
  ByteReader reader(buf);
  const Result<std::uint64_t> decoded = reader.ReadVarint64();
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().Is(StatusCode::kCorruption));
}

TEST(ColumnarVarintTest, TruncatedMidVarintIsCorruption) {
  std::string full;
  PutVarint64(full, 1ull << 62);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    ByteReader reader(full.data(), cut);
    const Result<std::uint64_t> decoded = reader.ReadVarint64();
    ASSERT_FALSE(decoded.ok()) << "cut at " << cut;
    EXPECT_TRUE(decoded.status().Is(StatusCode::kCorruption));
  }
}

TEST(ColumnarZigZagTest, RoundTripsInt64Extremes) {
  const std::vector<std::int64_t> corners = {
      0,
      -1,
      1,
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::min() + 1,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::max() - 1};
  for (const std::int64_t v : corners) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
    std::string buf;
    PutSVarint64(buf, v);
    ByteReader reader(buf);
    const Result<std::int64_t> decoded = reader.ReadSVarint64();
    ASSERT_TRUE(decoded.ok()) << v;
    EXPECT_EQ(*decoded, v);
  }
}

TEST(ColumnarDeltaColumnTest, AdjacentInt64ExtremesRoundTrip) {
  // Deltas wrap mod 2^64 by design: consecutive values at the two ends
  // of the int64 range produce the largest possible wrapped deltas.
  const std::vector<std::int64_t> values = {
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min(),
      0,
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max(),
      -1,
      1};
  std::string buf;
  PutDeltaColumn(buf, values);
  ByteReader reader(buf);
  const Result<std::vector<std::int64_t>> decoded =
      ReadDeltaColumn(reader, values.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, values);
  EXPECT_TRUE(reader.empty());
}

TEST(ColumnarDeltaColumnTest, CraftedOverflowingDeltasDecodeDefined) {
  // A hostile column whose running sum overflows int64 repeatedly must
  // decode to *some* deterministic values (wrap semantics), never trap.
  std::string buf;
  for (int i = 0; i < 8; ++i) {
    PutSVarint64(buf, std::numeric_limits<std::int64_t>::max());
  }
  ByteReader reader(buf);
  const Result<std::vector<std::int64_t>> decoded = ReadDeltaColumn(reader, 8);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 8u);
  // Running sum of int64::max mod 2^64; spot-check the wrap landed where
  // two's-complement arithmetic says it must.
  EXPECT_EQ((*decoded)[0], std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ((*decoded)[1], -2);
}

TEST(ColumnarBitColumnTest, TailBitsRoundTripAtEveryWidth) {
  for (std::size_t n = 0; n <= 17; ++n) {
    std::vector<bool> values;
    values.reserve(n);
    for (std::size_t i = 0; i < n; ++i) values.push_back((i % 3) == 0);
    std::string buf;
    PutBitColumn(buf, values);
    EXPECT_EQ(buf.size(), (n + 7) / 8);
    ByteReader reader(buf);
    const Result<std::vector<bool>> decoded = ReadBitColumn(reader, n);
    ASSERT_TRUE(decoded.ok()) << n;
    EXPECT_EQ(*decoded, values);
  }
}

TEST(ColumnarFixedWidthTest, U32U64RoundTripAndTruncationChecks) {
  std::string buf;
  PutU32(buf, 0xdeadbeefu);
  PutU64(buf, 0x0123456789abcdefull);
  ByteReader reader(buf);
  const Result<std::uint32_t> u32 = reader.ReadU32();
  ASSERT_TRUE(u32.ok());
  EXPECT_EQ(*u32, 0xdeadbeefu);
  const Result<std::uint64_t> u64 = reader.ReadU64();
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(*u64, 0x0123456789abcdefull);

  ByteReader short_reader(buf.data(), 3);
  ASSERT_FALSE(short_reader.ReadU32().ok());
  ByteReader short_reader64(buf.data(), 7);
  ASSERT_FALSE(short_reader64.ReadU64().ok());
}

}  // namespace
}  // namespace sitm::storage
