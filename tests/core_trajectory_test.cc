#include <gtest/gtest.h>

#include "core/trajectory.h"

namespace sitm::core {
namespace {

PresenceInterval Pi(int cell, std::int64_t start, std::int64_t end,
                    AnnotationSet annotations = {}) {
  PresenceInterval p;
  p.cell = CellId(cell);
  p.interval = *qsr::TimeInterval::Make(Timestamp(start), Timestamp(end));
  p.annotations = std::move(annotations);
  return p;
}

SemanticTrajectory Visit() {
  return SemanticTrajectory(
      TrajectoryId(1), ObjectId(7),
      Trace({Pi(1, 0, 100), Pi(2, 110, 300), Pi(3, 310, 500),
             Pi(4, 510, 900)}),
      AnnotationSet{{AnnotationKind::kActivity, "visit"}});
}

TEST(TrajectoryTest, ValidateRequiresNonEmptyAnnotations) {
  // Def. 3.1: A_traj is a non-empty set.
  SemanticTrajectory t(TrajectoryId(1), ObjectId(7),
                       Trace({Pi(1, 0, 100)}), AnnotationSet{});
  EXPECT_EQ(t.Validate().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(Visit().Validate().ok());
}

TEST(TrajectoryTest, ValidateRequiresIdsAndTrace) {
  SemanticTrajectory no_id(TrajectoryId(), ObjectId(7),
                           Trace({Pi(1, 0, 1)}),
                           AnnotationSet{{AnnotationKind::kGoal, "g"}});
  EXPECT_FALSE(no_id.Validate().ok());
  SemanticTrajectory no_mo(TrajectoryId(1), ObjectId(),
                           Trace({Pi(1, 0, 1)}),
                           AnnotationSet{{AnnotationKind::kGoal, "g"}});
  EXPECT_FALSE(no_mo.Validate().ok());
  SemanticTrajectory empty_trace(TrajectoryId(1), ObjectId(7), Trace{},
                                 AnnotationSet{{AnnotationKind::kGoal, "g"}});
  EXPECT_FALSE(empty_trace.Validate().ok());
}

TEST(TrajectoryTest, BoundsAndSpan) {
  const SemanticTrajectory t = Visit();
  EXPECT_EQ(t.start(), Timestamp(0));
  EXPECT_EQ(t.end(), Timestamp(900));
  EXPECT_EQ(t.Span().seconds(), 900);
}

TEST(SubtrajectoryTest, MiddleSliceIsValid) {
  const auto sub = Visit().Subtrajectory(
      1, 3, AnnotationSet{{AnnotationKind::kGoal, "detour"}});
  ASSERT_TRUE(sub.ok()) << sub.status();
  EXPECT_EQ(sub->trace().size(), 2u);
  EXPECT_EQ(sub->object(), ObjectId(7));
  EXPECT_TRUE(sub->IsSubtrajectoryOf(Visit()));
}

TEST(SubtrajectoryTest, PrefixAndSuffixAreValid) {
  // Def. 3.3 allows sharing one bound: t_start <= t'_start < t'_end <
  // t_end, or the symmetric form.
  EXPECT_TRUE(Visit()
                  .Subtrajectory(0, 2,
                                 AnnotationSet{{AnnotationKind::kGoal, "x"}})
                  .ok());
  EXPECT_TRUE(Visit()
                  .Subtrajectory(2, 4,
                                 AnnotationSet{{AnnotationKind::kGoal, "x"}})
                  .ok());
}

TEST(SubtrajectoryTest, WholeTrajectoryIsNotProper) {
  EXPECT_EQ(Visit()
                .Subtrajectory(0, 4,
                               AnnotationSet{{AnnotationKind::kGoal, "x"}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SubtrajectoryTest, NeedsNonEmptyAnnotations) {
  EXPECT_EQ(Visit().Subtrajectory(1, 3, AnnotationSet{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SubtrajectoryTest, AnnotationsMayEqualParent) {
  // Contrary to CONSTAnT, a subtrajectory may keep A_traj (§3.3).
  const auto sub = Visit().Subtrajectory(
      1, 3, AnnotationSet{{AnnotationKind::kActivity, "visit"}});
  EXPECT_TRUE(sub.ok());
}

TEST(SubtrajectoryTest, IsSubtrajectoryOfChecksContiguity) {
  const SemanticTrajectory parent = Visit();
  // A hand-built trajectory with tuples 1 and 3 skipped over tuple 2 is
  // not a contiguous subsequence.
  SemanticTrajectory gappy(
      TrajectoryId(1), ObjectId(7),
      Trace({Pi(1, 0, 100), Pi(3, 310, 500)}),
      AnnotationSet{{AnnotationKind::kActivity, "visit"}});
  EXPECT_FALSE(gappy.IsSubtrajectoryOf(parent));
  // Different moving object: never a subtrajectory.
  SemanticTrajectory other_mo(
      TrajectoryId(2), ObjectId(8), Trace({Pi(2, 110, 300)}),
      AnnotationSet{{AnnotationKind::kActivity, "visit"}});
  EXPECT_FALSE(other_mo.IsSubtrajectoryOf(parent));
  // The whole trajectory is not a *proper* subsequence of itself.
  EXPECT_FALSE(parent.IsSubtrajectoryOf(parent));
}

TEST(SplitTest, ReproducesTheRoom006Example) {
  // (door005, room006, 14:12:00, 14:28:00, {goals:[visit]}) splits into
  // (..., 14:12:00, 14:21:45, {goals:[visit]}) and
  // (_, room006, 14:21:46, 14:28:00, {goals:[visit,buy]}).
  const Timestamp start = *Timestamp::FromCivil(2017, 2, 1, 14, 12, 0);
  const Timestamp split_at = *Timestamp::FromCivil(2017, 2, 1, 14, 21, 45);
  const Timestamp end = *Timestamp::FromCivil(2017, 2, 1, 14, 28, 0);
  PresenceInterval p;
  p.cell = CellId(6);
  p.transition = BoundaryId(5);
  p.interval = *qsr::TimeInterval::Make(start, end);
  p.annotations = AnnotationSet{{AnnotationKind::kGoal, "visit"}};
  SemanticTrajectory t(TrajectoryId(1), ObjectId(7), Trace({p}),
                       AnnotationSet{{AnnotationKind::kActivity, "visit"}});
  ASSERT_TRUE(t.SplitIntervalAt(0, split_at,
                                AnnotationSet{{AnnotationKind::kGoal, "visit"},
                                              {AnnotationKind::kGoal, "buy"}})
                  .ok());
  ASSERT_EQ(t.trace().size(), 2u);
  EXPECT_EQ(t.trace().at(0).end().TimeOfDayString(), "14:21:45");
  EXPECT_EQ(t.trace().at(1).start().TimeOfDayString(), "14:21:46");
  EXPECT_EQ(t.trace().at(1).end(), end);
  EXPECT_EQ(t.trace().at(1).cell, CellId(6));
  EXPECT_FALSE(t.trace().at(1).transition.valid());  // "_"
  EXPECT_EQ(t.trace().at(1).annotations.ValuesOf(AnnotationKind::kGoal),
            (std::vector<std::string>{"buy", "visit"}));
  EXPECT_TRUE(t.Validate().ok());
}

TEST(SplitTest, RejectsSplitOutsideInterval) {
  SemanticTrajectory t = Visit();
  EXPECT_FALSE(t.SplitIntervalAt(0, Timestamp(100),
                                 AnnotationSet{{AnnotationKind::kGoal, "x"}})
                   .ok());  // second part would start past the end
  EXPECT_FALSE(t.SplitIntervalAt(0, Timestamp(-5),
                                 AnnotationSet{{AnnotationKind::kGoal, "x"}})
                   .ok());
  EXPECT_FALSE(t.SplitIntervalAt(9, Timestamp(50),
                                 AnnotationSet{{AnnotationKind::kGoal, "x"}})
                   .ok());  // bad index
  // Splitting at end-1 is legal: the second part is the final instant.
  EXPECT_TRUE(t.SplitIntervalAt(0, Timestamp(99),
                                AnnotationSet{{AnnotationKind::kGoal, "x"}})
                  .ok());
  EXPECT_EQ(t.trace().at(1).interval.length().seconds(), 0);
}

TEST(SplitTest, RejectsNoOpAnnotationChange) {
  // The event-based model only opens a tuple when something changes.
  SemanticTrajectory t = Visit();
  EXPECT_EQ(t.SplitIntervalAt(0, Timestamp(50), AnnotationSet{})
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(TrajectoryTest, AnnotateInterval) {
  SemanticTrajectory t = Visit();
  ASSERT_TRUE(
      t.AnnotateInterval(2, AnnotationSet{{AnnotationKind::kGoal, "rest"}})
          .ok());
  EXPECT_TRUE(t.trace().at(2).annotations.Contains(AnnotationKind::kGoal,
                                                   "rest"));
  EXPECT_FALSE(
      t.AnnotateInterval(9, AnnotationSet{{AnnotationKind::kGoal, "x"}})
          .ok());
}

TEST(TrajectoryTest, ToStringMentionsIdsAndAnnotations) {
  const std::string s = Visit().ToString();
  EXPECT_NE(s.find("id=1"), std::string::npos);
  EXPECT_NE(s.find("mo=7"), std::string::npos);
  EXPECT_NE(s.find("visit"), std::string::npos);
}

}  // namespace
}  // namespace sitm::core
