#include <gtest/gtest.h>

#include "indoor/nrg.h"

namespace sitm::indoor {
namespace {

CellSpace Room(int id) {
  return CellSpace(CellId(id), "room" + std::to_string(id), CellClass::kRoom);
}

// A chain 1 - 2 - 3 - 4 with door boundaries, like the paper's Fig. 6
// zone chain.
Nrg Chain() {
  Nrg g;
  for (int id : {1, 2, 3, 4}) EXPECT_TRUE(g.AddCell(Room(id)).ok());
  for (int i = 1; i <= 3; ++i) {
    EXPECT_TRUE(
        g.AddBoundary({BoundaryId(100 + i), "door" + std::to_string(i),
                       BoundaryType::kDoor})
            .ok());
    EXPECT_TRUE(g.AddSymmetricEdge(CellId(i), CellId(i + 1),
                                   EdgeType::kAccessibility,
                                   BoundaryId(100 + i))
                    .ok());
  }
  return g;
}

// A diamond 1 -> {2, 3} -> 4: two shortest paths.
Nrg Diamond() {
  Nrg g;
  for (int id : {1, 2, 3, 4}) EXPECT_TRUE(g.AddCell(Room(id)).ok());
  EXPECT_TRUE(g.AddEdge(CellId(1), CellId(2), EdgeType::kAccessibility).ok());
  EXPECT_TRUE(g.AddEdge(CellId(1), CellId(3), EdgeType::kAccessibility).ok());
  EXPECT_TRUE(g.AddEdge(CellId(2), CellId(4), EdgeType::kAccessibility).ok());
  EXPECT_TRUE(g.AddEdge(CellId(3), CellId(4), EdgeType::kAccessibility).ok());
  return g;
}

TEST(NrgTest, EdgeTypeNames) {
  EXPECT_EQ(EdgeTypeName(EdgeType::kAdjacency), "adjacency");
  EXPECT_EQ(EdgeTypeName(EdgeType::kConnectivity), "connectivity");
  EXPECT_EQ(EdgeTypeName(EdgeType::kAccessibility), "accessibility");
}

TEST(NrgTest, AddCellRejectsDuplicatesAndInvalid) {
  Nrg g;
  EXPECT_TRUE(g.AddCell(Room(1)).ok());
  EXPECT_EQ(g.AddCell(Room(1)).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.AddCell(CellSpace()).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.num_cells(), 1u);
}

TEST(NrgTest, AddBoundaryRejectsDuplicates) {
  Nrg g;
  EXPECT_TRUE(
      g.AddBoundary({BoundaryId(1), "d", BoundaryType::kDoor}).ok());
  EXPECT_EQ(g.AddBoundary({BoundaryId(1), "d2", BoundaryType::kDoor}).code(),
            StatusCode::kAlreadyExists);
}

TEST(NrgTest, AddEdgeValidatesEndpointsAndBoundary) {
  Nrg g;
  ASSERT_TRUE(g.AddCell(Room(1)).ok());
  ASSERT_TRUE(g.AddCell(Room(2)).ok());
  EXPECT_EQ(g.AddEdge(CellId(1), CellId(9), EdgeType::kAccessibility).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(g.AddEdge(CellId(9), CellId(1), EdgeType::kAccessibility).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(g.AddEdge(CellId(1), CellId(1), EdgeType::kAccessibility).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge(CellId(1), CellId(2), EdgeType::kAccessibility,
                      BoundaryId(77))
                .code(),
            StatusCode::kNotFound);  // unregistered boundary
  EXPECT_TRUE(g.AddEdge(CellId(1), CellId(2), EdgeType::kAccessibility).ok());
}

TEST(NrgTest, FindCellAndMutableCell) {
  Nrg g = Chain();
  ASSERT_TRUE(g.FindCell(CellId(2)).ok());
  EXPECT_EQ(g.FindCell(CellId(2)).value()->name(), "room2");
  EXPECT_FALSE(g.FindCell(CellId(99)).ok());
  auto cell = g.MutableCell(CellId(2));
  ASSERT_TRUE(cell.ok());
  (*cell)->SetAttribute("theme", "Italian Paintings");
  EXPECT_TRUE(
      g.FindCell(CellId(2)).value()->AttributeEquals("theme",
                                                     "Italian Paintings"));
}

TEST(NrgTest, FindBoundary) {
  Nrg g = Chain();
  ASSERT_TRUE(g.FindBoundary(BoundaryId(101)).ok());
  EXPECT_EQ(g.FindBoundary(BoundaryId(101)).value()->name, "door1");
  EXPECT_FALSE(g.FindBoundary(BoundaryId(999)).ok());
}

TEST(NrgTest, OutAndInEdgesFilterByType) {
  Nrg g = Chain();
  ASSERT_TRUE(g.AddSymmetricEdge(CellId(1), CellId(2), EdgeType::kAdjacency)
                  .ok());
  EXPECT_EQ(g.OutEdges(CellId(2), EdgeType::kAccessibility).size(), 2u);
  EXPECT_EQ(g.OutEdges(CellId(2), EdgeType::kAdjacency).size(), 1u);
  EXPECT_EQ(g.InEdges(CellId(1), EdgeType::kAccessibility).size(), 1u);
  EXPECT_TRUE(g.OutEdges(CellId(99), EdgeType::kAccessibility).empty());
}

TEST(NrgTest, SuccessorsDeduplicatesParallelEdges) {
  Nrg g;
  ASSERT_TRUE(g.AddCell(Room(1)).ok());
  ASSERT_TRUE(g.AddCell(Room(2)).ok());
  // Two doors between the same rooms: a multigraph.
  ASSERT_TRUE(g.AddEdge(CellId(1), CellId(2), EdgeType::kAccessibility).ok());
  ASSERT_TRUE(g.AddEdge(CellId(1), CellId(2), EdgeType::kAccessibility).ok());
  EXPECT_EQ(g.OutEdges(CellId(1), EdgeType::kAccessibility).size(), 2u);
  EXPECT_EQ(g.Successors(CellId(1), EdgeType::kAccessibility).size(), 1u);
}

TEST(NrgTest, HasEdgeIsDirectional) {
  Nrg g;
  ASSERT_TRUE(g.AddCell(Room(1)).ok());
  ASSERT_TRUE(g.AddCell(Room(2)).ok());
  ASSERT_TRUE(g.AddEdge(CellId(1), CellId(2), EdgeType::kAccessibility).ok());
  EXPECT_TRUE(g.HasEdge(CellId(1), CellId(2), EdgeType::kAccessibility));
  EXPECT_FALSE(g.HasEdge(CellId(2), CellId(1), EdgeType::kAccessibility));
  EXPECT_FALSE(g.HasSymmetricEdge(CellId(1), CellId(2),
                                  EdgeType::kAccessibility));
}

TEST(NrgTest, ReachableFollowsDirection) {
  // One-way: 1 -> 2 -> 3, and 3 -> 1 only.
  Nrg g;
  for (int id : {1, 2, 3}) ASSERT_TRUE(g.AddCell(Room(id)).ok());
  ASSERT_TRUE(g.AddEdge(CellId(1), CellId(2), EdgeType::kAccessibility).ok());
  ASSERT_TRUE(g.AddEdge(CellId(2), CellId(3), EdgeType::kAccessibility).ok());
  ASSERT_TRUE(g.AddEdge(CellId(3), CellId(1), EdgeType::kAccessibility).ok());
  EXPECT_EQ(g.Reachable(CellId(1), EdgeType::kAccessibility).size(), 3u);
  // Adjacency graph is empty: only the start is reachable.
  EXPECT_EQ(g.Reachable(CellId(1), EdgeType::kAdjacency).size(), 1u);
  EXPECT_TRUE(g.Reachable(CellId(99), EdgeType::kAccessibility).empty());
}

TEST(NrgTest, ShortestPathOnChain) {
  Nrg g = Chain();
  const auto path =
      g.ShortestPath(CellId(1), CellId(4), EdgeType::kAccessibility);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path,
            (std::vector<CellId>{CellId(1), CellId(2), CellId(3), CellId(4)}));
}

TEST(NrgTest, ShortestPathTrivialAndMissing) {
  Nrg g = Chain();
  EXPECT_EQ(g.ShortestPath(CellId(2), CellId(2), EdgeType::kAccessibility)
                .value(),
            std::vector<CellId>{CellId(2)});
  EXPECT_FALSE(
      g.ShortestPath(CellId(1), CellId(99), EdgeType::kAccessibility).ok());
  // Adjacency layer has no edges: unreachable.
  EXPECT_FALSE(
      g.ShortestPath(CellId(1), CellId(4), EdgeType::kAdjacency).ok());
}

TEST(NrgTest, CountShortestPaths) {
  EXPECT_EQ(Chain().CountShortestPaths(CellId(1), CellId(4),
                                       EdgeType::kAccessibility),
            1);
  EXPECT_EQ(Diamond().CountShortestPaths(CellId(1), CellId(4),
                                         EdgeType::kAccessibility),
            2);
  EXPECT_EQ(Chain().CountShortestPaths(CellId(4), CellId(1),
                                       EdgeType::kAdjacency),
            0);
  EXPECT_EQ(Chain().CountShortestPaths(CellId(2), CellId(2),
                                       EdgeType::kAccessibility),
            1);
}

TEST(NrgTest, UniqueShortestPathBetweenIsTheFig6Primitive) {
  // Detected in 1 (zone E) then 4 (zone C of the chain): the passage
  // through 2 and 3 is certain.
  Nrg g = Chain();
  const auto hidden =
      g.UniqueShortestPathBetween(CellId(1), CellId(4),
                                  EdgeType::kAccessibility);
  ASSERT_TRUE(hidden.ok());
  EXPECT_EQ(*hidden, (std::vector<CellId>{CellId(2), CellId(3)}));
}

TEST(NrgTest, UniqueShortestPathRejectsAmbiguity) {
  const auto result = Diamond().UniqueShortestPathBetween(
      CellId(1), CellId(4), EdgeType::kAccessibility);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(NrgTest, UniqueShortestPathRejectsDisconnected) {
  Nrg g = Chain();
  ASSERT_TRUE(g.AddCell(Room(9)).ok());
  EXPECT_EQ(g.UniqueShortestPathBetween(CellId(1), CellId(9),
                                        EdgeType::kAccessibility)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(NrgTest, UniqueShortestPathAdjacentCellsHaveEmptyMiddle) {
  Nrg g = Chain();
  const auto hidden = g.UniqueShortestPathBetween(CellId(1), CellId(2),
                                                  EdgeType::kAccessibility);
  ASSERT_TRUE(hidden.ok());
  EXPECT_TRUE(hidden->empty());
}

TEST(NrgTest, ValidateAcceptsDirectedAccessibility) {
  Nrg g;
  ASSERT_TRUE(g.AddCell(Room(1)).ok());
  ASSERT_TRUE(g.AddCell(Room(2)).ok());
  // One-way accessibility is legal (§3.2).
  ASSERT_TRUE(g.AddEdge(CellId(1), CellId(2), EdgeType::kAccessibility).ok());
  EXPECT_TRUE(g.Validate().ok());
}

TEST(NrgTest, ValidateRejectsAsymmetricAdjacency) {
  Nrg g;
  ASSERT_TRUE(g.AddCell(Room(1)).ok());
  ASSERT_TRUE(g.AddCell(Room(2)).ok());
  // Adjacency is symmetric by definition; a single direction is invalid.
  ASSERT_TRUE(g.AddEdge(CellId(1), CellId(2), EdgeType::kAdjacency).ok());
  EXPECT_EQ(g.Validate().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(g.AddEdge(CellId(2), CellId(1), EdgeType::kAdjacency).ok());
  EXPECT_TRUE(g.Validate().ok());
}

TEST(NrgTest, StateAndTransitionAliases) {
  // Table 1 terminology: node == state, boundary crossing == transition.
  static_assert(std::is_same_v<State, CellId>);
  static_assert(std::is_same_v<Transition, BoundaryId>);
  SUCCEED();
}

TEST(BoundaryTest, TraversabilityByType) {
  EXPECT_FALSE(IsTraversable(BoundaryType::kWall));
  EXPECT_TRUE(IsTraversable(BoundaryType::kDoor));
  EXPECT_TRUE(IsTraversable(BoundaryType::kCheckpoint));
  EXPECT_TRUE(IsTraversable(BoundaryType::kStaircase));
  EXPECT_EQ(BoundaryTypeName(BoundaryType::kCheckpoint), "checkpoint");
}

TEST(CellTest, AttributesAndClasses) {
  CellSpace cell(CellId(60887), "Zone60887", CellClass::kZone);
  cell.SetAttribute("requiresTicket", "true");
  EXPECT_TRUE(cell.HasAttribute("requiresTicket"));
  EXPECT_TRUE(cell.AttributeEquals("requiresTicket", "true"));
  EXPECT_FALSE(cell.AttributeEquals("requiresTicket", "false"));
  EXPECT_FALSE(cell.Attribute("nope").ok());
  EXPECT_EQ(cell.Attribute("requiresTicket").value(), "true");
  EXPECT_EQ(CellClassName(CellClass::kZone), "zone");
  EXPECT_TRUE(IsRoomLevelClass(CellClass::kHall));
  EXPECT_TRUE(IsRoomLevelClass(CellClass::kCorridor));
  EXPECT_FALSE(IsRoomLevelClass(CellClass::kZone));
  EXPECT_FALSE(IsRoomLevelClass(CellClass::kBuilding));
}

TEST(CellTest, FloorLevelAndGeometry) {
  CellSpace cell(CellId(1), "room", CellClass::kRoom);
  EXPECT_FALSE(cell.floor_level().has_value());
  EXPECT_FALSE(cell.has_geometry());
  cell.set_floor_level(-2);
  cell.set_geometry(geom::Polygon::Rectangle(0, 0, 5, 5));
  EXPECT_EQ(*cell.floor_level(), -2);
  EXPECT_TRUE(cell.has_geometry());
  EXPECT_DOUBLE_EQ(cell.geometry()->Area(), 25);
}

}  // namespace
}  // namespace sitm::indoor
