// Batch/stream equivalence — the live subsystem's core contract: any
// admissible arrival order of a detection set (shuffled, duplicated,
// late-but-within-lateness), pushed through the full live stack
// (IncrementalBuilder -> rolling SegmentStore segments with compaction
// -> Snapshot -> store-set query execution), answers queries
// byte-identically (result fingerprints) to the batch pipeline with
// in-memory execution, at worker counts {1, 2, hw}.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/builder.h"
#include "core/enrichment.h"
#include "core/pipeline.h"
#include "live/incremental_builder.h"
#include "live/segment_store.h"
#include "louvre/museum.h"
#include "louvre/simulator.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "sched/executor.h"

namespace sitm::live {
namespace {

const louvre::LouvreMap& Map() {
  static const louvre::LouvreMap* map = [] {
    auto result = louvre::LouvreMap::Build();
    EXPECT_TRUE(result.ok()) << result.status();
    return new louvre::LouvreMap(std::move(result).value());
  }();
  return *map;
}

const indoor::Nrg& ZoneGraph() {
  return Map().graph().FindLayer(Map().zone_layer()).value()->graph();
}

std::vector<core::RawDetection> LouvreDetections(int visitors,
                                                 std::uint64_t seed) {
  louvre::SimulatorOptions options;
  options.num_visitors = visitors;
  options.num_returning = visitors * 2 / 5;
  options.num_third_visits = visitors / 6;
  options.num_detections =
      (visitors + options.num_returning + options.num_third_visits) * 5;
  options.seed = seed;
  louvre::VisitSimulator simulator(&Map(), options);
  auto dataset = simulator.Generate();
  EXPECT_TRUE(dataset.ok()) << dataset.status();
  return dataset->ToRawDetections();
}

core::PipelineOptions BatchOptions() {
  core::PipelineOptions options;
  options.builder.graph = &ZoneGraph();
  options.rules = {
      core::AnnotateStopsAndMoves(Duration::Minutes(5),
                                  {core::AnnotationKind::kBehavior, "stop"},
                                  {core::AnnotationKind::kBehavior, "move"}),
      core::AnnotateWhereAttribute("requiresTicket", "true",
                                   {core::AnnotationKind::kOther, "ticketed"}),
      core::AnnotateFinalExit(Map().exit_zones(),
                              {core::AnnotationKind::kGoal, "leaving"}),
  };
  options.infer_hidden_passages = true;
  return options;
}

IncrementalOptions StreamOptions(Duration lateness) {
  const core::PipelineOptions batch = BatchOptions();
  IncrementalOptions options;
  options.builder = batch.builder;
  options.rules = batch.rules;
  options.enrichment_graph = batch.enrichment_graph;
  options.infer_hidden_passages = batch.infer_hidden_passages;
  options.inference = batch.inference;
  options.inference_graph = batch.inference_graph;
  options.allowed_lateness = lateness;
  return options;
}

/// The smallest allowed_lateness under which `arrival` has zero late
/// drops: the worst event-time regression in the sequence (admission
/// compares each start against max-start-seen-so-far minus lateness).
Duration RequiredLateness(const std::vector<core::RawDetection>& arrival) {
  Duration worst = Duration::Seconds(0);
  bool any = false;
  Timestamp prefix_max;
  for (const core::RawDetection& d : arrival) {
    if (any && d.start < prefix_max) {
      worst = std::max(worst, prefix_max - d.start);
    }
    if (!any || d.start > prefix_max) {
      prefix_max = d.start;
      any = true;
    }
  }
  return worst + Duration::Seconds(1);
}

/// The query set the equivalence is pinned on: one per projection shape
/// that the live /query endpoint serves.
std::vector<query::Query> EquivalenceQueries(
    const std::vector<core::SemanticTrajectory>& reference) {
  std::vector<query::Query> queries;
  {
    query::Query q;
    q.where = query::All();
    q.projection = query::Projection::kCount;
    queries.push_back(std::move(q));
  }
  {
    query::Query q;
    q.where = query::All();
    q.projection = query::Projection::kTrajectories;
    queries.push_back(std::move(q));
  }
  if (!reference.empty()) {
    const core::SemanticTrajectory& mid = reference[reference.size() / 2];
    query::Query q;
    q.where = query::ObjectIs(mid.object());
    q.projection = query::Projection::kTrajectories;
    queries.push_back(std::move(q));

    query::Query ids;
    ids.where = query::TimeWindow(mid.start(), std::nullopt);
    ids.projection = query::Projection::kIds;
    queries.push_back(std::move(ids));

    query::Query tuples;
    tuples.where = query::InCell(mid.trace().intervals().front().cell);
    tuples.projection = query::Projection::kTuples;
    queries.push_back(std::move(tuples));
  }
  return queries;
}

struct Scenario {
  const char* name;
  /// Positions a detection may move from its sorted slot; SIZE_MAX =
  /// full shuffle.
  std::size_t shuffle_window;
  std::size_t duplicates;
  std::size_t batch_size;
};

std::vector<core::RawDetection> ArrivalOrder(
    std::vector<core::RawDetection> detections, const Scenario& scenario,
    Rng* rng) {
  for (std::size_t i = 0; i < scenario.duplicates && !detections.empty();
       ++i) {
    detections.push_back(detections[static_cast<std::size_t>(
        rng->NextInt(0, static_cast<std::int64_t>(detections.size()) - 1))]);
  }
  std::sort(detections.begin(), detections.end(),
            [](const core::RawDetection& a, const core::RawDetection& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.end != b.end) return a.end < b.end;
              return a.object.value() < b.object.value();
            });
  // Fisher-Yates, bounded by the scenario's window so scenario A keeps
  // its lateness (and therefore its mid-stream watermark finalization)
  // small while scenario B is a full shuffle.
  for (std::size_t i = detections.size(); i > 1; --i) {
    const std::size_t lo =
        scenario.shuffle_window >= i - 1 ? 0 : i - 1 - scenario.shuffle_window;
    const std::size_t j = lo + static_cast<std::size_t>(rng->NextInt(
                                   0, static_cast<std::int64_t>(i - 1 - lo)));
    std::swap(detections[i - 1], detections[j]);
  }
  return detections;
}

class LiveEquivalenceSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LiveEquivalenceSweep, StreamedStoreAnswersMatchBatch) {
  const std::uint64_t seed = GetParam();
  const std::vector<core::RawDetection> detections =
      LouvreDetections(/*visitors=*/18, seed);
  ASSERT_FALSE(detections.empty());

  const Scenario scenarios[] = {
      {"bounded-shuffle", 40, 12, 37},
      {"full-shuffle", static_cast<std::size_t>(-1), 25, 61},
  };

  for (const Scenario& scenario : scenarios) {
    SCOPED_TRACE(scenario.name);
    Rng rng(seed ^ 0xC0FFEEULL);
    const std::vector<core::RawDetection> arrival =
        ArrivalOrder(detections, scenario, &rng);
    const Duration lateness = RequiredLateness(arrival);

    // Batch reference over the SAME multiset (duplicates included; the
    // batch cleaning pass drops them as contained, and the stream must
    // agree), executed sequentially in memory.
    core::BatchPipeline batch(BatchOptions());
    auto reference = batch.Run(arrival);
    ASSERT_TRUE(reference.ok()) << reference.status();

    const std::vector<query::Query> queries = EquivalenceQueries(*reference);
    std::vector<std::string> expected;
    {
      query::QueryExecutor sequential{query::QueryContext{}};
      for (const query::Query& q : queries) {
        auto result = sequential.Run(q, *reference);
        ASSERT_TRUE(result.ok()) << result.status();
        expected.push_back(result->Fingerprint());
      }
    }

    for (const std::size_t workers :
         {std::size_t{1}, std::size_t{2},
          sched::Executor::DefaultConcurrency()}) {
      sched::Executor executor(workers);

      SegmentStoreOptions store_options;
      store_options.directory = ::testing::TempDir() + "live_eq_" +
                                std::to_string(seed) + "_" + scenario.name +
                                "_" + std::to_string(workers);
      // Tiny segments + fanin 2: many seals, several compaction
      // generations, snapshots spanning levels — the hard case.
      store_options.seal_trajectories = 7;
      store_options.compaction_fanin = 2;
      store_options.writer.rows_per_block = 16;
      store_options.runner = &executor;
      SegmentStore store(store_options);

      // Finalized trajectories reach the store a few at a time (the
      // steady-stream shape): Drain's large final batch is chunked too,
      // so sealing — and therefore compaction — actually exercises.
      const auto append_chunked =
          [&store](std::vector<core::SemanticTrajectory> batch) {
            constexpr std::size_t kChunk = 3;
            for (std::size_t i = 0; i < batch.size(); i += kChunk) {
              std::vector<core::SemanticTrajectory> chunk;
              for (std::size_t j = i;
                   j < std::min(batch.size(), i + kChunk); ++j) {
                chunk.push_back(std::move(batch[j]));
              }
              ASSERT_TRUE(store.Append(std::move(chunk)).ok());
            }
          };

      IncrementalBuilder builder(StreamOptions(lateness));
      std::vector<core::SemanticTrajectory> finalized;
      for (std::size_t i = 0; i < arrival.size();
           i += scenario.batch_size) {
        const std::size_t end =
            std::min(arrival.size(), i + scenario.batch_size);
        finalized.clear();
        ASSERT_TRUE(builder
                        .Ingest(std::vector<core::RawDetection>(
                                    arrival.begin() +
                                        static_cast<std::ptrdiff_t>(i),
                                    arrival.begin() +
                                        static_cast<std::ptrdiff_t>(end)),
                                &finalized)
                        .ok());
        append_chunked(std::move(finalized));
      }
      finalized.clear();
      ASSERT_TRUE(builder.Drain(&finalized).ok());
      append_chunked(std::move(finalized));
      // The lateness bound was computed to admit everything.
      EXPECT_EQ(builder.stats().late_dropped, 0u);
      EXPECT_EQ(builder.stats().finalized, reference->size());

      // Query over the live view: sealed segments + unsealed tail.
      auto snapshot = store.Snapshot(
          StreamOptions(lateness).builder.first_trajectory_id);
      ASSERT_TRUE(snapshot.ok()) << snapshot.status();

      query::ExecutorOptions exec_options;
      exec_options.executor = &executor;
      exec_options.chunk = 16;
      query::QueryExecutor live_executor{query::QueryContext{},
                                         exec_options};
      for (std::size_t q = 0; q < queries.size(); ++q) {
        auto result = live_executor.Run(queries[q], *snapshot);
        ASSERT_TRUE(result.ok()) << result.status();
        EXPECT_EQ(result->Fingerprint(), expected[q])
            << "query " << q << " at worker count " << workers;
      }

      ASSERT_TRUE(store.Close().ok());
      const SegmentStoreStats stats = store.stats();
      // The scenario must actually exercise compaction to mean anything.
      EXPECT_GT(stats.compactions, 0u);
      EXPECT_GE(stats.written_bytes, stats.logical_bytes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiveEquivalenceSweep,
                         ::testing::Values(3u, 17u, 2024u));

}  // namespace
}  // namespace sitm::live
