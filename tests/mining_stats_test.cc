#include <gtest/gtest.h>

#include "mining/choropleth.h"
#include "mining/flow.h"
#include "mining/patterns.h"
#include "mining/stats.h"

namespace sitm::mining {
namespace {

using core::AnnotationKind;
using core::AnnotationSet;
using core::PresenceInterval;
using core::SemanticTrajectory;
using core::Trace;

PresenceInterval Pi(int cell, std::int64_t start, std::int64_t end) {
  PresenceInterval p;
  p.cell = CellId(cell);
  p.interval = *qsr::TimeInterval::Make(Timestamp(start), Timestamp(end));
  return p;
}

SemanticTrajectory Traj(int id, int object,
                        std::vector<PresenceInterval> intervals) {
  return SemanticTrajectory(TrajectoryId(id), ObjectId(object),
                            Trace(std::move(intervals)),
                            AnnotationSet{{AnnotationKind::kActivity,
                                           "visit"}});
}

std::vector<SemanticTrajectory> Sample() {
  std::vector<SemanticTrajectory> out;
  // Visitor 1, two visits (a returning visitor).
  out.push_back(Traj(1, 1, {Pi(10, 0, 100), Pi(20, 110, 300)}));
  out.push_back(Traj(2, 1, {Pi(10, 10000, 10100)}));
  // Visitor 2, one visit across three cells.
  out.push_back(
      Traj(3, 2, {Pi(10, 0, 50), Pi(30, 60, 120), Pi(20, 130, 400)}));
  return out;
}

TEST(SummarizeTest, EmptySampleIsAllZero) {
  const DurationSummary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min.seconds(), 0);
  EXPECT_EQ(s.max.seconds(), 0);
}

TEST(SummarizeTest, OrderStatistics) {
  const DurationSummary s = Summarize(
      {Duration(50), Duration(10), Duration(40), Duration(20), Duration(30)});
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.min.seconds(), 10);
  EXPECT_EQ(s.max.seconds(), 50);
  EXPECT_EQ(s.mean.seconds(), 30);
  EXPECT_EQ(s.median.seconds(), 30);
}

TEST(DatasetStatsTest, CountsMatchThePaperDefinitions) {
  const DatasetStats stats = ComputeDatasetStats(Sample());
  EXPECT_EQ(stats.num_visits, 3u);
  EXPECT_EQ(stats.num_visitors, 2u);
  EXPECT_EQ(stats.num_returning, 1u);   // visitor 1
  EXPECT_EQ(stats.num_revisits, 1u);    // their second visit
  EXPECT_EQ(stats.num_detections, 6u);  // presence tuples
  EXPECT_EQ(stats.num_transitions, 3u);
  EXPECT_EQ(stats.num_distinct_cells, 3u);
  EXPECT_EQ(stats.visit_duration.max.seconds(), 400);
  EXPECT_EQ(stats.visit_duration.min.seconds(), 100);
  EXPECT_EQ(stats.detection_duration.max.seconds(), 270);
}

TEST(DatasetStatsTest, EmptyDataset) {
  const DatasetStats stats = ComputeDatasetStats({});
  EXPECT_EQ(stats.num_visits, 0u);
  EXPECT_EQ(stats.num_visitors, 0u);
}

TEST(DetectionsByCellTest, CountsTuplesPerCell) {
  const auto counts = DetectionsByCell(Sample());
  EXPECT_EQ(counts.at(CellId(10)), 3u);
  EXPECT_EQ(counts.at(CellId(20)), 2u);
  EXPECT_EQ(counts.at(CellId(30)), 1u);
}

TEST(DwellByCellTest, SumsDurations) {
  const auto dwell = DwellByCell(Sample());
  EXPECT_EQ(dwell.at(CellId(10)).seconds(), 100 + 100 + 50);
  EXPECT_EQ(dwell.at(CellId(20)).seconds(), 190 + 270);
}

TEST(FlowMatrixTest, CountsTransitions) {
  const FlowMatrix flows = FlowMatrix::Build(Sample());
  EXPECT_EQ(flows.Count(CellId(10), CellId(20)), 1u);
  EXPECT_EQ(flows.Count(CellId(10), CellId(30)), 1u);
  EXPECT_EQ(flows.Count(CellId(30), CellId(20)), 1u);
  EXPECT_EQ(flows.Count(CellId(20), CellId(10)), 0u);
  EXPECT_EQ(flows.total(), 3u);
}

TEST(FlowMatrixTest, RankedAndTop) {
  std::vector<SemanticTrajectory> trajectories = Sample();
  trajectories.push_back(Traj(4, 3, {Pi(10, 0, 10), Pi(20, 20, 30)}));
  const FlowMatrix flows = FlowMatrix::Build(trajectories);
  const std::vector<Flow> ranked = flows.Ranked();
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked.front().from, CellId(10));
  EXPECT_EQ(ranked.front().to, CellId(20));
  EXPECT_EQ(ranked.front().count, 2u);
  EXPECT_EQ(flows.Top(1).size(), 1u);
  EXPECT_EQ(flows.Top(99).size(), ranked.size());
}

TEST(FlowMatrixTest, NetFlowSignalsSinks) {
  const FlowMatrix flows = FlowMatrix::Build(Sample());
  EXPECT_GT(flows.NetFlow(CellId(20)), 0);  // visits end there
  EXPECT_LT(flows.NetFlow(CellId(10)), 0);  // visits start there
}

TEST(FlowMatrixTest, OutEntropy) {
  const FlowMatrix flows = FlowMatrix::Build(Sample());
  // Cell 10 goes to 20 once and 30 once: entropy 1 bit.
  EXPECT_NEAR(flows.OutEntropy(CellId(10)), 1.0, 1e-9);
  // Cell 30 has a single continuation: entropy 0.
  EXPECT_NEAR(flows.OutEntropy(CellId(30)), 0.0, 1e-9);
  // Unknown cell: no outgoing flow.
  EXPECT_NEAR(flows.OutEntropy(CellId(99)), 0.0, 1e-9);
}

TEST(ChoroplethTest, BinsSortedByDetectionsWithIntensity) {
  const auto bins = BuildChoropleth(
      Sample(), /*filter=*/nullptr,
      [](CellId c) { return "Zone" + std::to_string(c.value()); });
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0].cell, CellId(10));
  EXPECT_DOUBLE_EQ(bins[0].intensity, 1.0);
  EXPECT_EQ(bins[0].label, "Zone10");
  EXPECT_LT(bins[2].intensity, 1.0);
}

TEST(ChoroplethTest, FilterRestrictsCells) {
  const auto bins = BuildChoropleth(
      Sample(), [](CellId c) { return c == CellId(20); }, nullptr);
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_EQ(bins[0].cell, CellId(20));
  EXPECT_DOUBLE_EQ(bins[0].intensity, 1.0);  // max within the filter
  EXPECT_EQ(bins[0].label, "#20");           // default labeler
}

TEST(ChoroplethTest, AsciiRenderingShowsBarsAndCounts) {
  const auto bins = BuildChoropleth(Sample(), nullptr, nullptr);
  const std::string art = RenderAsciiBars(bins, 10);
  EXPECT_NE(art.find("##########"), std::string::npos);
  EXPECT_NE(art.find("(100%)"), std::string::npos);
  EXPECT_NE(art.find("#10"), std::string::npos);
}

TEST(CellSequenceTest, CollapsesConsecutiveDuplicates) {
  const SemanticTrajectory t =
      Traj(9, 9, {Pi(1, 0, 10), Pi(1, 20, 30), Pi(2, 40, 50),
                  Pi(1, 60, 70)});
  EXPECT_EQ(CellSequenceOf(t),
            (std::vector<CellId>{CellId(1), CellId(2), CellId(1)}));
}

TEST(PatternsTest, RejectsZeroSupport) {
  PatternOptions options;
  options.min_support = 0;
  EXPECT_FALSE(MinePatterns({}, options).ok());
}

TEST(PatternsTest, SubsequenceSemantics) {
  // {A,B,C}, {A,C}, {A,B}: A:3, B:2, C:2, A->B:2, A->C:2, B->C:1.
  const CellId a(1), b(2), c(3);
  const std::vector<std::vector<CellId>> sequences = {
      {a, b, c}, {a, c}, {a, b}};
  PatternOptions options;
  options.min_support = 2;
  const auto patterns = MinePatterns(sequences, options);
  ASSERT_TRUE(patterns.ok());
  auto support_of = [&](std::vector<CellId> cells) -> int {
    for (const SequentialPattern& p : *patterns) {
      if (p.cells == cells) return static_cast<int>(p.support);
    }
    return -1;
  };
  EXPECT_EQ(support_of({a}), 3);
  EXPECT_EQ(support_of({b}), 2);
  EXPECT_EQ(support_of({a, b}), 2);
  EXPECT_EQ(support_of({a, c}), 2);   // subsequence: gap allowed
  EXPECT_EQ(support_of({b, c}), -1);  // support 1 < 2
}

TEST(PatternsTest, ContiguousSemanticsDisallowGaps) {
  const CellId a(1), b(2), c(3);
  const std::vector<std::vector<CellId>> sequences = {
      {a, b, c}, {a, c}, {a, b}};
  PatternOptions options;
  options.min_support = 2;
  options.contiguous = true;
  const auto patterns = MinePatterns(sequences, options);
  ASSERT_TRUE(patterns.ok());
  auto support_of = [&](std::vector<CellId> cells) -> int {
    for (const SequentialPattern& p : *patterns) {
      if (p.cells == cells) return static_cast<int>(p.support);
    }
    return -1;
  };
  EXPECT_EQ(support_of({a, b}), 2);
  // {a,c} appears contiguously only in the literal {a,c} sequence
  // (support 1), which is below min_support and therefore not reported.
  EXPECT_EQ(support_of({a, c}), -1);

  options.min_support = 1;
  const auto all_patterns = MinePatterns(sequences, options);
  ASSERT_TRUE(all_patterns.ok());
  for (const SequentialPattern& p : *all_patterns) {
    if (p.cells == std::vector<CellId>{a, c}) {
      EXPECT_EQ(p.support, 1u);  // the gap in {a,b,c} does not count
    }
  }
}

TEST(PatternsTest, ContiguousSupportCountsSequencesNotOccurrences) {
  const CellId a(1), b(2);
  // {a,b,a,b} contains a->b twice but supports it once.
  const std::vector<std::vector<CellId>> sequences = {{a, b, a, b},
                                                      {a, b}};
  PatternOptions options;
  options.min_support = 1;
  options.contiguous = true;
  const auto patterns = MinePatterns(sequences, options);
  ASSERT_TRUE(patterns.ok());
  for (const SequentialPattern& p : *patterns) {
    if (p.cells == std::vector<CellId>{a, b}) {
      EXPECT_EQ(p.support, 2u);
    }
  }
}

TEST(PatternsTest, MaxLengthBoundsSearch) {
  const CellId a(1), b(2), c(3), d(4);
  const std::vector<std::vector<CellId>> sequences = {{a, b, c, d},
                                                      {a, b, c, d}};
  PatternOptions options;
  options.min_support = 2;
  options.max_length = 2;
  const auto patterns = MinePatterns(sequences, options);
  ASSERT_TRUE(patterns.ok());
  for (const SequentialPattern& p : *patterns) {
    EXPECT_LE(p.cells.size(), 2u);
  }
}

TEST(PatternsTest, ResultsSortedBySupportThenLength) {
  const CellId a(1), b(2);
  const std::vector<std::vector<CellId>> sequences = {{a, b}, {a, b}, {a}};
  PatternOptions options;
  options.min_support = 2;
  const auto patterns = MinePatterns(sequences, options);
  ASSERT_TRUE(patterns.ok());
  ASSERT_GE(patterns->size(), 2u);
  EXPECT_EQ(patterns->front().cells, std::vector<CellId>{a});  // support 3
  for (std::size_t i = 1; i < patterns->size(); ++i) {
    EXPECT_GE((*patterns)[i - 1].support, (*patterns)[i].support);
  }
}

TEST(PatternsTest, EmptyDatabase) {
  PatternOptions options;
  const auto patterns = MinePatterns({}, options);
  ASSERT_TRUE(patterns.ok());
  EXPECT_TRUE(patterns->empty());
}

}  // namespace
}  // namespace sitm::mining
