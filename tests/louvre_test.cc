#include <gtest/gtest.h>

#include <set>

#include "core/builder.h"
#include "core/projection.h"
#include "louvre/museum.h"
#include "louvre/simulator.h"
#include "mining/stats.h"

namespace sitm::louvre {
namespace {

const LouvreMap& Map() {
  static const LouvreMap* map = [] {
    auto result = LouvreMap::Build();
    EXPECT_TRUE(result.ok()) << result.status();
    return new LouvreMap(std::move(result).value());
  }();
  return *map;
}

TEST(LouvreMapTest, HasTheSixLayers) {
  EXPECT_EQ(Map().graph().num_layers(), 6u);
  EXPECT_TRUE(Map().graph().Validate().ok());
}

TEST(LouvreMapTest, ZoneInventoryMatchesThePaper) {
  // §4.1: 52 zones; Fig. 3: 11 ground-floor zones.
  EXPECT_EQ(Map().zones().size(), 52u);
  EXPECT_EQ(Map().ground_floor_zones().size(), 11u);
}

TEST(LouvreMapTest, WingsActAsBuildings) {
  const auto* layer = Map().graph().FindLayer(Map().wing_layer()).value();
  EXPECT_EQ(layer->graph().num_cells(), 4u);
  for (const indoor::CellSpace& wing : layer->graph().cells()) {
    EXPECT_EQ(wing.cell_class(), indoor::CellClass::kBuilding);
  }
}

TEST(LouvreMapTest, PaperCitedZonesExist) {
  for (std::int64_t id :
       {kZoneTemporaryExhibition, kZonePassage, kZoneSouvenirShops,
        kZoneCarrouselExit, kZoneEntranceHall, kZoneFig4A, kZoneFig4B}) {
    ASSERT_TRUE(Map().graph().FindCell(CellId(id)).ok()) << id;
  }
  // E requires a separate ticket (§4.2).
  const auto* e =
      Map().graph().FindCell(CellId(kZoneTemporaryExhibition)).value();
  EXPECT_TRUE(e->AttributeEquals("requiresTicket", "true"));
  EXPECT_EQ(*e->floor_level(), -2);
}

TEST(LouvreMapTest, EveryZoneHasThemeAndGeometry) {
  for (CellId zone : Map().zones()) {
    const auto* cell = Map().graph().FindCell(zone).value();
    EXPECT_TRUE(cell->HasAttribute("theme")) << zone.value();
    EXPECT_TRUE(cell->has_geometry());
    EXPECT_TRUE(cell->floor_level().has_value());
    EXPECT_GT(Map().zone_popularity().at(zone), 0.0);
  }
}

TEST(LouvreMapTest, HierarchyValidatesAtDepthSix) {
  const auto h = Map().BuildHierarchy();
  ASSERT_TRUE(h.ok()) << h.status();
  EXPECT_EQ(h->depth(), 6);
}

TEST(LouvreMapTest, RollUpFromRoiToMuseum) {
  const auto h = Map().BuildHierarchy();
  ASSERT_TRUE(h.ok());
  // Pick any RoI and roll it all the way up.
  const auto* roi_layer = Map().graph().FindLayer(Map().roi_layer()).value();
  ASSERT_GT(roi_layer->graph().num_cells(), 100u);
  const CellId roi = roi_layer->graph().cells().front().id();
  const auto museum = h->RollUp(roi, kLevelMuseum);
  ASSERT_TRUE(museum.ok());
  EXPECT_EQ(*museum, CellId(kMuseumCellId));
  const auto zone = h->RollUp(roi, kLevelZone);
  ASSERT_TRUE(zone.ok());
  EXPECT_TRUE(Map().zone_popularity().count(*zone));
}

TEST(LouvreMapTest, MonaLisaIsInTheSalleDesEtats) {
  const auto h = Map().BuildHierarchy();
  ASSERT_TRUE(h.ok());
  const auto* roi_layer = Map().graph().FindLayer(Map().roi_layer()).value();
  CellId mona_lisa;
  for (const indoor::CellSpace& roi : roi_layer->graph().cells()) {
    if (roi.name() == "Mona Lisa") mona_lisa = roi.id();
  }
  ASSERT_TRUE(mona_lisa.valid());
  const auto room = h->RollUp(mona_lisa, kLevelRoom);
  ASSERT_TRUE(room.ok());
  EXPECT_EQ(Map().CellName(*room).value(), "Salle des Etats");
  const auto zone = h->RollUp(mona_lisa, kLevelZone);
  EXPECT_EQ(zone.value(), CellId(60874));
}

TEST(LouvreMapTest, Fig6ChainSupportsHiddenZoneInference) {
  // E -> S has the unique intermediate P (the cloakroom is a dead end).
  const auto* zones = Map().graph().FindLayer(Map().zone_layer()).value();
  const auto hidden = zones->graph().UniqueShortestPathBetween(
      CellId(kZoneTemporaryExhibition), CellId(kZoneSouvenirShops),
      indoor::EdgeType::kAccessibility);
  ASSERT_TRUE(hidden.ok()) << hidden.status();
  ASSERT_EQ(hidden->size(), 1u);
  EXPECT_EQ((*hidden)[0], CellId(kZonePassage));
}

TEST(LouvreMapTest, ZoneGraphIsFullyConnected) {
  const auto* zones = Map().graph().FindLayer(Map().zone_layer()).value();
  const auto reachable = zones->graph().Reachable(
      CellId(kZoneEntranceHall), indoor::EdgeType::kAccessibility);
  EXPECT_EQ(reachable.size(), 52u);
}

TEST(LouvreMapTest, SalleDesEtatsHasOneWayExit) {
  // §3.2: entering the Salle des États from its neighbour room is
  // prohibited while exiting that way is allowed.
  const auto* rooms = Map().graph().FindLayer(Map().room_layer()).value();
  CellId salle;
  for (const indoor::CellSpace& room : rooms->graph().cells()) {
    if (room.name() == "Salle des Etats") salle = room.id();
  }
  ASSERT_TRUE(salle.valid());
  bool found_one_way = false;
  for (const indoor::NrgEdge& e :
       rooms->graph().OutEdges(salle, indoor::EdgeType::kAccessibility)) {
    if (!rooms->graph().HasEdge(e.to, salle,
                                indoor::EdgeType::kAccessibility)) {
      found_one_way = true;
    }
  }
  EXPECT_TRUE(found_one_way);
  EXPECT_TRUE(rooms->graph().Validate().ok());
}

TEST(LouvreMapTest, ExitAndEntryZones) {
  EXPECT_TRUE(Map().exit_zones().count(CellId(kZoneSouvenirShops)) > 0);
  EXPECT_TRUE(Map().exit_zones().count(CellId(kZoneCarrouselExit)) > 0);
  ASSERT_FALSE(Map().entry_zones().empty());
  EXPECT_EQ(Map().entry_zones().front(), CellId(kZoneEntranceHall));
}

TEST(LouvreMapTest, CellNameLookup) {
  EXPECT_EQ(Map().CellName(CellId(kMuseumCellId)).value(), "Louvre Museum");
  EXPECT_FALSE(Map().CellName(CellId(424242)).ok());
}

TEST(LouvreMapTest, CoverageAuditShowsRoiGaps) {
  // Fig. 4: RoIs do not fully cover their room; rooms do cover their
  // zone (strip partition).
  const auto h = Map().BuildHierarchy();
  ASSERT_TRUE(h.ok());
  Rng rng(17);
  // A room with at least one RoI: Salle des États.
  const auto* rooms = Map().graph().FindLayer(Map().room_layer()).value();
  CellId salle;
  for (const indoor::CellSpace& room : rooms->graph().cells()) {
    if (room.name() == "Salle des Etats") salle = room.id();
  }
  const auto roi_coverage = h->CoverageAudit(salle, 1000, &rng);
  ASSERT_TRUE(roi_coverage.ok()) << roi_coverage.status();
  EXPECT_GT(roi_coverage->coverage_ratio, 0.0);
  EXPECT_LT(roi_coverage->coverage_ratio, 0.6);  // far from full coverage
  // Zone 60874 is fully covered by its rooms.
  const auto room_coverage = h->CoverageAudit(CellId(60874), 1000, &rng);
  ASSERT_TRUE(room_coverage.ok());
  EXPECT_DOUBLE_EQ(room_coverage->coverage_ratio, 1.0);
  EXPECT_NEAR(room_coverage->overlap_ratio, 0.0, 1e-9);
}

// ---- Dataset + simulator.

TEST(DatasetTest, CsvRoundTrip) {
  VisitDataset dataset;
  dataset.mutable_detections().push_back(
      ZoneDetection{ObjectId(1), CellId(60887),
                    *Timestamp::FromCivil(2017, 2, 1, 17, 30, 21),
                    *Timestamp::FromCivil(2017, 2, 1, 17, 31, 42)});
  dataset.mutable_detections().push_back(
      ZoneDetection{ObjectId(2), CellId(60890),
                    *Timestamp::FromCivil(2017, 2, 2, 9, 0, 0),
                    *Timestamp::FromCivil(2017, 2, 2, 9, 0, 0)});
  const auto restored = VisitDataset::FromCsv(dataset.ToCsv());
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->size(), 2u);
  EXPECT_EQ(restored->detections()[0].visitor, ObjectId(1));
  EXPECT_EQ(restored->detections()[0].zone, CellId(60887));
  EXPECT_EQ(restored->detections()[0].start,
            *Timestamp::FromCivil(2017, 2, 1, 17, 30, 21));
  EXPECT_EQ(restored->CountZeroDuration(), 1u);
}

TEST(DatasetTest, FromCsvRejectsGarbage) {
  EXPECT_FALSE(VisitDataset::FromCsv("not,a,header\n1,2,3\n").ok());
  EXPECT_FALSE(
      VisitDataset::FromCsv("visitor,zone,start,end\nx,1,2017,bad\n").ok());
}

TEST(DatasetTest, FilterZeroDuration) {
  VisitDataset dataset;
  const Timestamp t = *Timestamp::FromCivil(2017, 2, 1, 10, 0, 0);
  dataset.mutable_detections().push_back(
      ZoneDetection{ObjectId(1), CellId(60887), t, t});
  dataset.mutable_detections().push_back(
      ZoneDetection{ObjectId(1), CellId(60888), t, t + Duration::Minutes(2)});
  EXPECT_EQ(dataset.FilterZeroDuration(), 1u);
  EXPECT_EQ(dataset.size(), 1u);
  EXPECT_EQ(dataset.CountZeroDuration(), 0u);
}

// Small simulator configuration shared by the behavioural tests.
SimulatorOptions SmallOptions() {
  SimulatorOptions options;
  options.num_visitors = 100;
  options.num_returning = 30;
  options.num_third_visits = 10;
  options.num_detections = 600;
  options.seed = 4242;
  return options;
}

TEST(SimulatorTest, ExactShapeTargets) {
  const LouvreMap& map = Map();
  VisitSimulator simulator(&map, SmallOptions());
  const auto dataset = simulator.Generate();
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->size(), 600u);
  const SimulationSummary& s = simulator.summary();
  EXPECT_EQ(s.num_visits, 100 + 30 + 10);
  EXPECT_EQ(s.num_detections, 600);
  EXPECT_EQ(s.num_transitions, 600 - 140);
}

TEST(SimulatorTest, BuilderRecoversVisitStructure) {
  // The §4.1 statistics are reported on the *raw* dataset; with
  // zero-duration dropping disabled, the builder must reproduce the
  // simulator's ground truth exactly.
  const LouvreMap& map = Map();
  VisitSimulator simulator(&map, SmallOptions());
  const auto dataset = simulator.Generate();
  ASSERT_TRUE(dataset.ok());
  core::BuilderOptions options;
  options.drop_zero_duration = false;
  options.same_cell_merge_gap = Duration::Zero();
  core::TrajectoryBuilder builder(options);
  const auto visits = builder.Build(dataset->ToRawDetections());
  ASSERT_TRUE(visits.ok()) << visits.status();
  const mining::DatasetStats stats = mining::ComputeDatasetStats(*visits);
  EXPECT_EQ(stats.num_visits, 140u);
  EXPECT_EQ(stats.num_visitors, 100u);
  EXPECT_EQ(stats.num_returning, 30u);
  EXPECT_EQ(stats.num_revisits, 40u);
  EXPECT_EQ(stats.num_detections, 600u);
  EXPECT_EQ(stats.num_transitions, 600u - 140u);
}

TEST(SimulatorTest, ZeroDurationRateNearTenPercent) {
  const LouvreMap& map = Map();
  SimulatorOptions options = SmallOptions();
  options.num_detections = 4000;
  VisitSimulator simulator(&map, options);
  const auto dataset = simulator.Generate();
  ASSERT_TRUE(dataset.ok());
  const double rate =
      static_cast<double>(dataset->CountZeroDuration()) / dataset->size();
  EXPECT_NEAR(rate, 0.10, 0.02);
}

TEST(SimulatorTest, WalksFollowTheAccessibilityGraph) {
  const LouvreMap& map = Map();
  VisitSimulator simulator(&map, SmallOptions());
  const auto dataset = simulator.Generate();
  ASSERT_TRUE(dataset.ok());
  const auto* zones = map.graph().FindLayer(map.zone_layer()).value();
  // Group by visitor and check consecutive detections inside a visit.
  ObjectId previous_visitor;
  CellId previous_zone;
  Timestamp previous_end;
  for (const ZoneDetection& d : dataset->detections()) {
    if (d.visitor == previous_visitor &&
        (d.start - previous_end) < Duration::Hours(2) &&
        previous_zone.valid() && d.zone != previous_zone) {
      EXPECT_TRUE(zones->graph().HasEdge(previous_zone, d.zone,
                                         indoor::EdgeType::kAccessibility))
          << previous_zone.value() << " -> " << d.zone.value();
    }
    previous_visitor = d.visitor;
    previous_zone = d.zone;
    previous_end = d.end;
  }
}

TEST(SimulatorTest, RestrictsToThe30DatasetZones) {
  // Fig. 6 covers "the 30 zones present in the dataset".
  const LouvreMap& map = Map();
  SimulatorOptions options = SmallOptions();
  options.num_detections = 5000;
  VisitSimulator simulator(&map, options);
  const auto dataset = simulator.Generate();
  ASSERT_TRUE(dataset.ok());
  std::set<CellId> zones_seen;
  for (const ZoneDetection& d : dataset->detections()) {
    zones_seen.insert(d.zone);
  }
  EXPECT_LE(zones_seen.size(), 30u);
  EXPECT_GE(zones_seen.size(), 25u);  // nearly all of the 30 with 5k dets
}

TEST(SimulatorTest, EmittedPositionsLocalizeBackToTheirZone) {
  // The raw layer beneath the symbolic detections: every emitted fix
  // must symbolically localize (grid-index CellLocator) to a zone set
  // containing the detection's zone (floors overlap in plan view, so a
  // fix can legitimately localize to several stacked zones).
  const LouvreMap& map = Map();
  SimulatorOptions options = SmallOptions();
  options.emit_positions = true;
  VisitSimulator simulator(&map, options);
  const auto dataset = simulator.Generate();
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->CountPositions(), dataset->size());
  const auto* zones = map.graph().FindLayer(map.zone_layer()).value();
  const auto locator = core::CellLocator::Build(*zones);
  ASSERT_TRUE(locator.ok()) << locator.status();
  for (const ZoneDetection& d : dataset->detections()) {
    ASSERT_TRUE(d.position.has_value());
    const std::vector<CellId> located = locator->LocalizeAll(*d.position);
    EXPECT_TRUE(std::find(located.begin(), located.end(), d.zone) !=
                located.end())
        << "fix (" << d.position->x << ", " << d.position->y
        << ") does not localize to zone " << d.zone.value();
  }
}

TEST(SimulatorTest, PositionsAreOffByDefault) {
  const LouvreMap& map = Map();
  VisitSimulator simulator(&map, SmallOptions());
  const auto dataset = simulator.Generate();
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->CountPositions(), 0u);
}

TEST(SimulatorTest, PositionsDoNotPerturbTheSymbolicStream) {
  // Positions draw from a dedicated RNG stream: toggling the flag must
  // leave the symbolic dataset (visitors, zones, timestamps) identical
  // for the same seed.
  const LouvreMap& map = Map();
  VisitSimulator without(&map, SmallOptions());
  SimulatorOptions options = SmallOptions();
  options.emit_positions = true;
  VisitSimulator with(&map, options);
  const auto da = without.Generate();
  const auto db = with.Generate();
  ASSERT_TRUE(da.ok());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(da->ToCsv(), db->ToCsv());
  EXPECT_EQ(da->CountPositions(), 0u);
  EXPECT_EQ(db->CountPositions(), db->size());
}

TEST(SimulatorTest, DeterministicPerSeed) {
  const LouvreMap& map = Map();
  VisitSimulator a(&map, SmallOptions());
  VisitSimulator b(&map, SmallOptions());
  const auto da = a.Generate();
  const auto db = b.Generate();
  ASSERT_TRUE(da.ok());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(da->ToCsv(), db->ToCsv());
  SimulatorOptions other = SmallOptions();
  other.seed = 99;
  VisitSimulator c(&map, other);
  const auto dc = c.Generate();
  ASSERT_TRUE(dc.ok());
  EXPECT_NE(da->ToCsv(), dc->ToCsv());
}

TEST(SimulatorTest, StaysWithinTheCollectionWindow) {
  const LouvreMap& map = Map();
  VisitSimulator simulator(&map, SmallOptions());
  const auto dataset = simulator.Generate();
  ASSERT_TRUE(dataset.ok());
  const Timestamp window_start = *Timestamp::FromCivil(2017, 1, 19, 0, 0, 0);
  const Timestamp window_end = *Timestamp::FromCivil(2017, 5, 30, 23, 59, 59);
  for (const ZoneDetection& d : dataset->detections()) {
    EXPECT_GE(d.start, window_start);
    EXPECT_LE(d.end, window_end);
    EXPECT_LE(d.start, d.end);
    EXPECT_LE(d.duration(), Duration(5 * 3600 + 39 * 60 + 20));
  }
}

TEST(SimulatorTest, RejectsInconsistentOptions) {
  const LouvreMap& map = Map();
  SimulatorOptions options = SmallOptions();
  options.num_returning = 200;  // > visitors
  VisitSimulator simulator(&map, options);
  EXPECT_FALSE(simulator.Generate().ok());
  VisitSimulator no_map(nullptr, SmallOptions());
  EXPECT_FALSE(no_map.Generate().ok());
}

TEST(SimulatorTest, ValidatesEveryOptionKnob) {
  const LouvreMap& map = Map();
  const auto rejects = [&map](void (*tweak)(SimulatorOptions*)) {
    SimulatorOptions options = SmallOptions();
    tweak(&options);
    VisitSimulator simulator(&map, options);
    return !simulator.Generate().ok();
  };
  EXPECT_TRUE(rejects([](SimulatorOptions* o) { o->num_visitors = -1; }));
  EXPECT_TRUE(rejects([](SimulatorOptions* o) { o->num_detections = -1; }));
  // Fewer detections than visits: the exact-total shrink could never
  // terminate (each visit emits at least one detection).
  EXPECT_TRUE(rejects([](SimulatorOptions* o) { o->num_detections = 100; }));
  // Fewer distinct days than visits per thrice-returning visitor: the
  // distinct-day rejection sampler could never terminate.
  EXPECT_TRUE(rejects([](SimulatorOptions* o) { o->num_days = 2; }));
  EXPECT_TRUE(rejects([](SimulatorOptions* o) { o->num_days = 0; }));
  EXPECT_TRUE(rejects([](SimulatorOptions* o) { o->zero_duration_rate = 1.5; }));
  EXPECT_TRUE(rejects([](SimulatorOptions* o) { o->no_backtrack_bias = -0.1; }));
  EXPECT_TRUE(rejects([](SimulatorOptions* o) { o->mean_stay_seconds = 0; }));
  EXPECT_TRUE(rejects([](SimulatorOptions* o) { o->max_stay = Duration::Zero(); }));
  EXPECT_TRUE(rejects([](SimulatorOptions* o) { o->map_replication = 0; }));
  EXPECT_TRUE(rejects([](SimulatorOptions* o) {
    o->map_replication = 2;
    o->emit_positions = true;
  }));
  // Zero visitors with a positive detection target is unreachable.
  EXPECT_TRUE(rejects([](SimulatorOptions* o) {
    o->num_visitors = 0;
    o->num_returning = 0;
    o->num_third_visits = 0;
    o->num_detections = 10;
  }));
  // Three distinct days suffice for three visits.
  EXPECT_FALSE(rejects([](SimulatorOptions* o) { o->num_days = 3; }));
}

TEST(SimulatorTest, EmptyPopulationYieldsEmptyDataset) {
  SimulatorOptions options;
  options.num_visitors = 0;
  options.num_returning = 0;
  options.num_third_visits = 0;
  options.num_detections = 0;
  VisitSimulator simulator(&Map(), options);
  const auto dataset = simulator.Generate();
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->size(), 0u);
}

TEST(SimulatorTest, MapReplicationScalesTheZoneVocabulary) {
  const LouvreMap& map = Map();
  SimulatorOptions options = SmallOptions();
  options.map_replication = 3;
  VisitSimulator simulator(&map, options);
  const auto dataset = simulator.Generate();
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->size(), 600u);

  SimulatorOptions base_options = SmallOptions();
  VisitSimulator base_simulator(&map, base_options);
  const auto base = base_simulator.Generate();
  ASSERT_TRUE(base.ok()) << base.status();

  std::set<std::int64_t> replicas_seen;
  ASSERT_EQ(dataset->size(), base->size());
  for (std::size_t i = 0; i < dataset->size(); ++i) {
    const ZoneDetection& replicated = dataset->detections()[i];
    const ZoneDetection& unreplicated = base->detections()[i];
    const std::int64_t replica =
        replicated.zone.value() / kMapReplicationStride;
    ASSERT_GE(replica, 0);
    ASSERT_LT(replica, 3);
    replicas_seen.insert(replica);
    // Only the zone-id offset differs: the walk itself (base zone,
    // timing, visitor) is the calibrated one.
    EXPECT_EQ(replicated.zone.value() - replica * kMapReplicationStride,
              unreplicated.zone.value());
    EXPECT_EQ(replicated.visitor, unreplicated.visitor);
    EXPECT_EQ(replicated.start, unreplicated.start);
    EXPECT_EQ(replicated.end, unreplicated.end);
    // Visitors are assigned round-robin: visitor id fixes the replica.
    EXPECT_EQ(replica, (replicated.visitor.value() - 1) % 3);
  }
  EXPECT_EQ(replicas_seen.size(), 3u);
}

TEST(SimulatorTest, ReplicationOfOneIsByteIdentical) {
  const LouvreMap& map = Map();
  SimulatorOptions options = SmallOptions();
  options.map_replication = 1;
  VisitSimulator a(&map, options);
  VisitSimulator b(&map, SmallOptions());
  const auto da = a.Generate();
  const auto db = b.Generate();
  ASSERT_TRUE(da.ok() && db.ok());
  ASSERT_EQ(da->size(), db->size());
  for (std::size_t i = 0; i < da->size(); ++i) {
    EXPECT_EQ(da->detections()[i].zone, db->detections()[i].zone);
    EXPECT_EQ(da->detections()[i].start, db->detections()[i].start);
  }
}

}  // namespace
}  // namespace sitm::louvre
