#include <gtest/gtest.h>

#include "indoor/hierarchy.h"

namespace sitm::indoor {
namespace {

using qsr::TopologicalRelation;

SpaceLayer MakeLayer(int id, const std::string& name,
                     std::initializer_list<int> cells) {
  SpaceLayer layer(LayerId(id), name, LayerKind::kTopographic);
  for (int c : cells) {
    EXPECT_TRUE(layer.mutable_graph()
                    .AddCell(CellSpace(CellId(c), "cell" + std::to_string(c),
                                       CellClass::kGeneric))
                    .ok());
  }
  return layer;
}

// Building 1 -> floors {10, 11} -> rooms {100, 101 under 10; 110 under
// 11}: the paper's core three-layer hierarchy in miniature.
MultiLayerGraph CoreGraph() {
  MultiLayerGraph g;
  EXPECT_TRUE(g.AddLayer(MakeLayer(2, "Building", {1})).ok());
  EXPECT_TRUE(g.AddLayer(MakeLayer(1, "Floor", {10, 11})).ok());
  EXPECT_TRUE(g.AddLayer(MakeLayer(0, "Room", {100, 101, 110})).ok());
  EXPECT_TRUE(
      g.AddJointEdge(CellId(1), CellId(10), TopologicalRelation::kCovers)
          .ok());
  EXPECT_TRUE(
      g.AddJointEdge(CellId(1), CellId(11), TopologicalRelation::kCovers)
          .ok());
  EXPECT_TRUE(
      g.AddJointEdge(CellId(10), CellId(100), TopologicalRelation::kCovers)
          .ok());
  EXPECT_TRUE(
      g.AddJointEdge(CellId(10), CellId(101), TopologicalRelation::kContains)
          .ok());
  EXPECT_TRUE(
      g.AddJointEdge(CellId(11), CellId(110), TopologicalRelation::kCovers)
          .ok());
  return g;
}

std::vector<LayerId> CoreLevels() {
  return {LayerId(2), LayerId(1), LayerId(0)};
}

TEST(HierarchyTest, LevelNames) {
  EXPECT_EQ(HierarchyLevelName(HierarchyLevel::kBuildingComplex),
            "Building Complex");
  EXPECT_EQ(HierarchyLevelName(HierarchyLevel::kRoom), "Room");
  EXPECT_EQ(HierarchyLevelName(HierarchyLevel::kRegionOfInterest), "RoI");
}

TEST(HierarchyTest, BuildAcceptsValidCore) {
  MultiLayerGraph g = CoreGraph();
  const auto h = LayerHierarchy::Build(&g, CoreLevels());
  ASSERT_TRUE(h.ok()) << h.status();
  EXPECT_EQ(h->depth(), 3);
}

TEST(HierarchyTest, BuildRequiresTwoLayers) {
  MultiLayerGraph g = CoreGraph();
  EXPECT_FALSE(LayerHierarchy::Build(&g, {LayerId(0)}).ok());
  EXPECT_FALSE(LayerHierarchy::Build(nullptr, CoreLevels()).ok());
}

TEST(HierarchyTest, BuildRejectsUnknownOrDuplicateLayers) {
  MultiLayerGraph g = CoreGraph();
  EXPECT_FALSE(
      LayerHierarchy::Build(&g, {LayerId(2), LayerId(9)}).ok());
  EXPECT_FALSE(
      LayerHierarchy::Build(&g, {LayerId(2), LayerId(2)}).ok());
}

TEST(HierarchyTest, BuildRejectsLayerSkippingJointEdges) {
  MultiLayerGraph g = CoreGraph();
  // Building directly to a room skips the Floor level.
  ASSERT_TRUE(
      g.AddJointEdge(CellId(1), CellId(100), TopologicalRelation::kContains)
          .ok());
  EXPECT_EQ(LayerHierarchy::Build(&g, CoreLevels()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(HierarchyTest, BuildRejectsOverlapInHierarchy) {
  // "we exclude 'overlap' relations from layer hierarchies" (§3.2).
  MultiLayerGraph g = CoreGraph();
  ASSERT_TRUE(
      g.AddJointEdge(CellId(11), CellId(101), TopologicalRelation::kOverlap)
          .ok());
  EXPECT_EQ(LayerHierarchy::Build(&g, CoreLevels()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(HierarchyTest, BuildRejectsEqualInHierarchy) {
  // "... we also exclude 'equal' relations to prohibit node repetition".
  MultiLayerGraph g = CoreGraph();
  ASSERT_TRUE(
      g.AddJointEdge(CellId(11), CellId(101), TopologicalRelation::kEqual)
          .ok());
  EXPECT_EQ(LayerHierarchy::Build(&g, CoreLevels()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(HierarchyTest, BuildRejectsTwoParents) {
  MultiLayerGraph g = CoreGraph();
  ASSERT_TRUE(
      g.AddJointEdge(CellId(11), CellId(100), TopologicalRelation::kCovers)
          .ok());
  EXPECT_EQ(LayerHierarchy::Build(&g, CoreLevels()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(HierarchyTest, BuildRejectsOrphans) {
  MultiLayerGraph g = CoreGraph();
  auto layer = g.MutableLayer(LayerId(0));
  ASSERT_TRUE((*layer)
                  ->mutable_graph()
                  .AddCell(CellSpace(CellId(119), "orphan room",
                                     CellClass::kRoom))
                  .ok());
  EXPECT_EQ(LayerHierarchy::Build(&g, CoreLevels()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(HierarchyTest, ParentChildrenAncestors) {
  MultiLayerGraph g = CoreGraph();
  const auto h = LayerHierarchy::Build(&g, CoreLevels());
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->Parent(CellId(100)).value(), CellId(10));
  EXPECT_EQ(h->Parent(CellId(10)).value(), CellId(1));
  EXPECT_FALSE(h->Parent(CellId(1)).ok());  // top of the hierarchy
  EXPECT_EQ(h->Children(CellId(10)).size(), 2u);
  EXPECT_TRUE(h->Children(CellId(100)).empty());
  EXPECT_EQ(h->Ancestors(CellId(101)),
            (std::vector<CellId>{CellId(10), CellId(1)}));
  EXPECT_EQ(h->Descendants(CellId(1)).size(), 5u);
}

TEST(HierarchyTest, LevelQueries) {
  MultiLayerGraph g = CoreGraph();
  const auto h = LayerHierarchy::Build(&g, CoreLevels());
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->LayerAt(0).value(), LayerId(2));
  EXPECT_EQ(h->LayerAt(2).value(), LayerId(0));
  EXPECT_FALSE(h->LayerAt(3).ok());
  EXPECT_EQ(h->LevelOf(LayerId(1)).value(), 1);
  EXPECT_FALSE(h->LevelOf(LayerId(9)).ok());
  EXPECT_EQ(h->LevelOfCell(CellId(110)).value(), 2);
}

TEST(HierarchyTest, RollUpInfersLocationAtAllCoarserLevels) {
  // §3.2: "we allow inference of a MO's location at all levels of
  // granularity above the detection data level".
  MultiLayerGraph g = CoreGraph();
  const auto h = LayerHierarchy::Build(&g, CoreLevels());
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->RollUp(CellId(100), 1).value(), CellId(10));
  EXPECT_EQ(h->RollUp(CellId(100), 0).value(), CellId(1));
  EXPECT_EQ(h->RollUp(CellId(100), 2).value(), CellId(100));  // identity
  // Downward is not a roll-up.
  EXPECT_EQ(h->RollUp(CellId(10), 2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HierarchyTest, IsAncestorAndLca) {
  MultiLayerGraph g = CoreGraph();
  const auto h = LayerHierarchy::Build(&g, CoreLevels());
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->IsAncestor(CellId(10), CellId(101)));
  EXPECT_TRUE(h->IsAncestor(CellId(1), CellId(110)));
  EXPECT_FALSE(h->IsAncestor(CellId(11), CellId(101)));
  // Same-floor rooms meet at the floor; cross-floor rooms at the
  // building.
  EXPECT_EQ(h->LowestCommonAncestor(CellId(100), CellId(101)).value(),
            CellId(10));
  EXPECT_EQ(h->LowestCommonAncestor(CellId(100), CellId(110)).value(),
            CellId(1));
  EXPECT_EQ(h->LowestCommonAncestor(CellId(100), CellId(100)).value(),
            CellId(100));
  EXPECT_EQ(h->LowestCommonAncestor(CellId(100), CellId(10)).value(),
            CellId(10));
}

TEST(HierarchyTest, LcaDistanceIsATreeMetric) {
  MultiLayerGraph g = CoreGraph();
  const auto h = LayerHierarchy::Build(&g, CoreLevels());
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->LcaDistance(CellId(100), CellId(100)).value(), 0);
  EXPECT_EQ(h->LcaDistance(CellId(100), CellId(101)).value(), 2);
  EXPECT_EQ(h->LcaDistance(CellId(100), CellId(110)).value(), 4);
  EXPECT_EQ(h->LcaDistance(CellId(100), CellId(10)).value(), 1);
}

TEST(HierarchyTest, CoverageAuditQuantifiesTheFullCoverageHypothesis) {
  // Floor 10 has geometry [0,10]^2; its rooms cover only half — the
  // audit must report ~0.5 (the paper's Fig. 4 point: full coverage is
  // often unrealistic).
  MultiLayerGraph g;
  SpaceLayer floors(LayerId(1), "Floor", LayerKind::kTopographic);
  CellSpace floor_cell(CellId(10), "floor", CellClass::kFloor);
  floor_cell.set_geometry(geom::Polygon::Rectangle(0, 0, 10, 10));
  ASSERT_TRUE(floors.mutable_graph().AddCell(std::move(floor_cell)).ok());
  SpaceLayer rooms(LayerId(0), "Room", LayerKind::kTopographic);
  CellSpace room(CellId(100), "room", CellClass::kRoom);
  room.set_geometry(geom::Polygon::Rectangle(0, 0, 5, 10));
  ASSERT_TRUE(rooms.mutable_graph().AddCell(std::move(room)).ok());
  ASSERT_TRUE(g.AddLayer(std::move(floors)).ok());
  ASSERT_TRUE(g.AddLayer(std::move(rooms)).ok());
  ASSERT_TRUE(
      g.AddJointEdge(CellId(10), CellId(100), TopologicalRelation::kCovers)
          .ok());
  const auto h = LayerHierarchy::Build(&g, {LayerId(1), LayerId(0)});
  ASSERT_TRUE(h.ok());
  Rng rng(3);
  const auto report = h->CoverageAudit(CellId(10), 4000, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->coverage_ratio, 0.5, 0.03);
  // A cell without geometry cannot be audited.
  MultiLayerGraph g2 = CoreGraph();
  const auto h2 = LayerHierarchy::Build(&g2, CoreLevels());
  ASSERT_TRUE(h2.ok());
  EXPECT_FALSE(h2->CoverageAudit(CellId(10), 100, &rng).ok());
}

}  // namespace
}  // namespace sitm::indoor
