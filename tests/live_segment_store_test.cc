// SegmentStore unit behavior: sealing, canonical-id snapshots over
// segments + the unsealed tail, inline and background compaction,
// CompactAll, and Close semantics. Everything is observed through the
// public surface — snapshots queried exactly as the live /query path
// queries them.
#include "live/segment_store.h"

#include <array>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "query/executor.h"
#include "query/predicate.h"
#include "sched/executor.h"
#include "storage/store_set.h"

namespace sitm::live {
namespace {

core::SemanticTrajectory MakeTrajectory(
    std::int64_t id, std::int64_t object,
    const std::vector<std::array<std::int64_t, 3>>& cell_start_end) {
  std::vector<core::PresenceInterval> intervals;
  for (const auto& [cell, start, end] : cell_start_end) {
    intervals.emplace_back(
        BoundaryId::Invalid(), CellId(cell),
        qsr::TimeInterval::Make(Timestamp(start), Timestamp(end)).value());
  }
  return core::SemanticTrajectory(
      TrajectoryId(id), ObjectId(object), core::Trace(std::move(intervals)),
      core::AnnotationSet{{core::AnnotationKind::kActivity, "visit"}});
}

std::string UniqueDir(const char* tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "live_segstore_" + info->name() + "_" + tag;
}

/// The store's determinism oracle: a snapshot must answer exactly like
/// an in-memory run over `expected` (already in canonical order with
/// canonical ids).
void ExpectSnapshotMatches(
    const SegmentStore& store, TrajectoryId first_id,
    const std::vector<core::SemanticTrajectory>& expected) {
  auto snapshot = store.Snapshot(first_id);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  ASSERT_TRUE(snapshot->Validate().ok());
  query::Query q;
  q.where = query::All();
  q.projection = query::Projection::kTrajectories;
  const query::QueryExecutor executor{query::QueryContext{}};
  auto from_store = executor.Run(q, *snapshot);
  ASSERT_TRUE(from_store.ok()) << from_store.status();
  auto reference = executor.Run(q, expected);
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(from_store->Fingerprint(), reference->Fingerprint());
}

/// Three-object working set whose append order deliberately disagrees
/// with the canonical (object, start) order.
std::vector<core::SemanticTrajectory> WorkingSet() {
  return {
      MakeTrajectory(901, 5, {{10, 5000, 5100}, {11, 5200, 5400}}),
      MakeTrajectory(902, 2, {{20, 100, 300}}),
      MakeTrajectory(903, 5, {{12, 50, 90}}),
      MakeTrajectory(904, 1, {{10, 9000, 9500}}),
      MakeTrajectory(905, 2, {{21, 4000, 4200}, {22, 4300, 4350}}),
  };
}

/// WorkingSet in canonical order with canonical ids from `first`.
std::vector<core::SemanticTrajectory> CanonicalSet(std::int64_t first) {
  return {
      MakeTrajectory(first + 0, 1, {{10, 9000, 9500}}),
      MakeTrajectory(first + 1, 2, {{20, 100, 300}}),
      MakeTrajectory(first + 2, 2, {{21, 4000, 4200}, {22, 4300, 4350}}),
      MakeTrajectory(first + 3, 5, {{12, 50, 90}}),
      MakeTrajectory(first + 4, 5, {{10, 5000, 5100}, {11, 5200, 5400}}),
  };
}

TEST(SegmentStoreTest, PendingOnlySnapshotCarriesCanonicalIds) {
  SegmentStoreOptions options;
  options.directory = UniqueDir("a");
  options.seal_trajectories = 0;  // never seal by size
  SegmentStore store(options);
  ASSERT_TRUE(store.Append(WorkingSet()).ok());
  EXPECT_EQ(store.stats().segments, 0u);
  EXPECT_EQ(store.stats().pending_trajectories, 5u);
  ExpectSnapshotMatches(store, TrajectoryId(1), CanonicalSet(1));
  // The id base is the caller's: a different first_id shifts every id.
  ExpectSnapshotMatches(store, TrajectoryId(50), CanonicalSet(50));
  ASSERT_TRUE(store.Close().ok());
}

TEST(SegmentStoreTest, FlushSealsAndAnswersIdentically) {
  SegmentStoreOptions options;
  options.directory = UniqueDir("a");
  options.seal_trajectories = 0;
  SegmentStore store(options);
  ASSERT_TRUE(store.Append(WorkingSet()).ok());
  ASSERT_TRUE(store.Flush().ok());
  const SegmentStoreStats stats = store.stats();
  EXPECT_EQ(stats.segments, 1u);
  EXPECT_EQ(stats.pending_trajectories, 0u);
  EXPECT_EQ(stats.sealed_trajectories, 5u);
  EXPECT_GT(stats.segment_bytes, 0u);
  EXPECT_EQ(stats.logical_bytes, stats.written_bytes);  // no compaction yet
  ExpectSnapshotMatches(store, TrajectoryId(1), CanonicalSet(1));
  ASSERT_TRUE(store.Close().ok());
}

TEST(SegmentStoreTest, CanonicalIdsSpanSegmentsAndTail) {
  SegmentStoreOptions options;
  options.directory = UniqueDir("a");
  options.seal_trajectories = 2;  // tiny segments
  options.compaction_fanin = 0;   // isolate sealing from compaction
  SegmentStore store(options);
  // Appended one at a time: seals fire at 2, leaving one in the tail.
  for (core::SemanticTrajectory& t : WorkingSet()) {
    std::vector<core::SemanticTrajectory> one;
    one.push_back(std::move(t));
    ASSERT_TRUE(store.Append(std::move(one)).ok());
  }
  const SegmentStoreStats stats = store.stats();
  EXPECT_EQ(stats.segments, 2u);
  EXPECT_EQ(stats.pending_trajectories, 1u);
  // Ranking is global: ids interleave across both files and the tail.
  ExpectSnapshotMatches(store, TrajectoryId(1), CanonicalSet(1));
  ASSERT_TRUE(store.Close().ok());
}

TEST(SegmentStoreTest, InlineCompactionCascadesLevels) {
  SegmentStoreOptions options;
  options.directory = UniqueDir("a");
  options.seal_trajectories = 1;
  options.compaction_fanin = 2;
  // No runner: compaction runs inline on the sealing thread.
  SegmentStore store(options);
  for (core::SemanticTrajectory& t : WorkingSet()) {
    std::vector<core::SemanticTrajectory> one;
    one.push_back(std::move(t));
    ASSERT_TRUE(store.Append(std::move(one)).ok());
  }
  const SegmentStoreStats stats = store.stats();
  // 5 L0 seals with fanin 2 force at least L0->L1 and L1->L2 merges.
  EXPECT_GE(stats.compactions, 2u);
  EXPECT_GE(stats.max_level, 2);
  EXPECT_GT(stats.written_bytes, stats.logical_bytes);
  ExpectSnapshotMatches(store, TrajectoryId(1), CanonicalSet(1));
  ASSERT_TRUE(store.Close().ok());
}

TEST(SegmentStoreTest, CompactAllLeavesOneSegment) {
  SegmentStoreOptions options;
  options.directory = UniqueDir("a");
  options.seal_trajectories = 2;
  options.compaction_fanin = 0;
  SegmentStore store(options);
  for (core::SemanticTrajectory& t : WorkingSet()) {
    std::vector<core::SemanticTrajectory> one;
    one.push_back(std::move(t));
    ASSERT_TRUE(store.Append(std::move(one)).ok());
  }
  ASSERT_TRUE(store.Flush().ok());
  ASSERT_TRUE(store.CompactAll().ok());
  const SegmentStoreStats stats = store.stats();
  EXPECT_EQ(stats.segments, 1u);
  EXPECT_EQ(stats.pending_trajectories, 0u);
  ExpectSnapshotMatches(store, TrajectoryId(1), CanonicalSet(1));
  ASSERT_TRUE(store.Close().ok());
}

TEST(SegmentStoreTest, SnapshotSurvivesLaterCompaction) {
  SegmentStoreOptions options;
  options.directory = UniqueDir("a");
  options.seal_trajectories = 2;
  options.compaction_fanin = 0;
  SegmentStore store(options);
  for (core::SemanticTrajectory& t : WorkingSet()) {
    std::vector<core::SemanticTrajectory> one;
    one.push_back(std::move(t));
    ASSERT_TRUE(store.Append(std::move(one)).ok());
  }
  ASSERT_TRUE(store.Flush().ok());
  ASSERT_GE(store.stats().segments, 2u);
  auto snapshot = store.Snapshot(TrajectoryId(1));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  // CompactAll unlinks the files the snapshot still maps; shared
  // readers must keep it answering identically.
  ASSERT_TRUE(store.CompactAll().ok());
  query::Query q;
  q.where = query::All();
  q.projection = query::Projection::kTrajectories;
  const query::QueryExecutor executor{query::QueryContext{}};
  auto stale = executor.Run(q, *snapshot);
  ASSERT_TRUE(stale.ok()) << stale.status();
  auto reference = executor.Run(q, CanonicalSet(1));
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(stale->Fingerprint(), reference->Fingerprint());
  ASSERT_TRUE(store.Close().ok());
}

TEST(SegmentStoreTest, BackgroundCompactionOnExecutor) {
  sched::Executor executor(2);
  SegmentStoreOptions options;
  options.directory = UniqueDir("a");
  options.seal_trajectories = 1;
  options.compaction_fanin = 2;
  options.runner = &executor;
  SegmentStore store(options);
  for (int round = 0; round < 4; ++round) {
    std::vector<core::SemanticTrajectory> batch = WorkingSet();
    // Distinct objects per round so the canonical set is well-defined.
    for (core::SemanticTrajectory& t : batch) {
      std::vector<core::SemanticTrajectory> one;
      one.push_back(core::SemanticTrajectory(
          t.id(), ObjectId(t.object().value() + round * 100),
          std::move(t.mutable_trace()), t.annotations()));
      ASSERT_TRUE(store.Append(std::move(one)).ok());
    }
    // Snapshots taken while compactions are in flight must stay valid.
    auto snapshot = store.Snapshot(TrajectoryId(1));
    ASSERT_TRUE(snapshot.ok()) << snapshot.status();
    ASSERT_TRUE(snapshot->Validate().ok());
    EXPECT_EQ(snapshot->TotalTrajectories(),
              static_cast<std::uint64_t>((round + 1) * 5));
  }
  // Close waits out in-flight merges and surfaces any background error.
  ASSERT_TRUE(store.Close().ok());
  EXPECT_GT(store.stats().compactions, 0u);
  // Idempotent.
  ASSERT_TRUE(store.Close().ok());
}

}  // namespace
}  // namespace sitm::live
