// Stress harness for the parallel substrates — the base/parallel pool
// and the sched task-graph executor — written to run under TSan (ctest
// label: parallel): every scenario here is about *schedule* coverage,
// not output checking alone — nested submission, exceptions thrown and
// handled inside tasks, pool teardown racing a full queue,
// ParallelFor/ParallelMap hammered from many callers at once, and
// task-graph shapes (diamonds, fan-out/fan-in) under steal pressure.
// The determinism contract ("byte-identical at every worker count") is
// only credible if a race detector stays silent on exactly these
// shapes.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "core/pipeline.h"
#include "louvre/museum.h"
#include "louvre/simulator.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "query/result_cache.h"
#include "base/task_graph.h"
#include "sched/executor.h"
#include "sched/parallel.h"
#include "storage/event_store.h"

namespace sitm {
namespace {

std::size_t Hc() { return ThreadPool::DefaultConcurrency(); }

// Pool sizes the contract is pinned at: minimal contention (2) and the
// hardware concurrency of the machine running the test.
std::vector<std::size_t> StressPoolSizes() {
  std::vector<std::size_t> sizes{2};
  if (Hc() != 2) sizes.push_back(Hc());
  return sizes;
}

TEST(ParallelStressTest, ManySubmittersOneConsumerCounter) {
  for (const std::size_t pool_size : StressPoolSizes()) {
    ThreadPool pool(pool_size);
    std::atomic<int> counter{0};
    constexpr int kSubmitters = 4;
    constexpr int kTasksEach = 256;
    // Raw threads on purpose: they *are* the external submitters whose
    // races this harness exists to provoke. sitm-lint: allow(naked-thread)
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&pool, &counter] {
        for (int i = 0; i < kTasksEach; ++i) {
          pool.Submit([&counter] { counter.fetch_add(1); });
        }
      });
    }
    for (std::thread& t : submitters) t.join();  // sitm-lint: allow(naked-thread)
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);
  }
}

TEST(ParallelStressTest, NestedSubmissionFromInsideTasks) {
  for (const std::size_t pool_size : StressPoolSizes()) {
    ThreadPool pool(pool_size);
    std::atomic<int> leaves{0};
    constexpr int kRoots = 64;
    constexpr int kChildren = 8;
    for (int r = 0; r < kRoots; ++r) {
      pool.Submit([&pool, &leaves] {
        for (int c = 0; c < kChildren; ++c) {
          pool.Submit([&leaves] { leaves.fetch_add(1); });
        }
      });
    }
    // WaitIdle must cover tasks submitted *by* tasks: in_flight_ counts
    // the children before any root finishes decrementing it to zero.
    pool.WaitIdle();
    EXPECT_EQ(leaves.load(), kRoots * kChildren);
  }
}

TEST(ParallelStressTest, ExceptionsThrownAndCaughtInsideTasks) {
  // The pool contract forbids exceptions *escaping* a task; throwing and
  // catching inside one is ordinary control flow, and the unwinding must
  // not corrupt queue state or lose the in-flight count.
  for (const std::size_t pool_size : StressPoolSizes()) {
    ThreadPool pool(pool_size);
    std::atomic<int> caught{0};
    std::atomic<int> clean{0};
    constexpr int kTasks = 512;
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([i, &caught, &clean] {
        try {
          if (i % 3 == 0) throw std::runtime_error("expected");
          clean.fetch_add(1);
        } catch (const std::runtime_error&) {
          caught.fetch_add(1);
        }
      });
    }
    pool.WaitIdle();
    EXPECT_EQ(caught.load() + clean.load(), kTasks);
    EXPECT_EQ(caught.load(), (kTasks + 2) / 3);
  }
}

TEST(ParallelStressTest, TeardownWithFullQueue) {
  // Destroying a pool right after flooding it races ~shutdown against
  // workers mid-dequeue; the destructor must drain everything first.
  for (const std::size_t pool_size : StressPoolSizes()) {
    for (int round = 0; round < 16; ++round) {
      auto counter = std::make_shared<std::atomic<int>>(0);
      constexpr int kTasks = 128;
      {
        ThreadPool pool(pool_size);
        for (int i = 0; i < kTasks; ++i) {
          pool.Submit([counter] { counter->fetch_add(1); });
        }
        // No WaitIdle: the destructor itself is the barrier under test.
      }
      EXPECT_EQ(counter->load(), kTasks);
    }
  }
}

TEST(ParallelStressTest, ConcurrentParallelForCallersShareOnePool) {
  for (const std::size_t pool_size : StressPoolSizes()) {
    ThreadPool pool(pool_size);
    constexpr int kCallers = 4;
    constexpr std::size_t kN = 4096;
    std::vector<std::vector<int>> outputs(kCallers,
                                          std::vector<int>(kN, 0));
    // Raw threads model independent library callers. sitm-lint: allow(naked-thread)
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int c = 0; c < kCallers; ++c) {
      callers.emplace_back([&pool, &outputs, c] {
        std::vector<int>& out = outputs[c];
        ParallelFor(
            &pool, kN,
            [&out, c](std::size_t begin, std::size_t end) {
              for (std::size_t i = begin; i < end; ++i) {
                out[i] = static_cast<int>(i) + c;
              }
            },
            /*grain=*/64);
      });
    }
    for (std::thread& t : callers) t.join();  // sitm-lint: allow(naked-thread)
    for (int c = 0; c < kCallers; ++c) {
      for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(outputs[c][i], static_cast<int>(i) + c);
      }
    }
  }
}

TEST(ParallelStressTest, NestedParallelForInsidePoolTasks) {
  // The pipeline nests ParallelFor (over store blocks) inside pool tasks
  // (over shards); caller participation is what keeps this deadlock-free
  // when every worker is already busy in the outer loop.
  for (const std::size_t pool_size : StressPoolSizes()) {
    ThreadPool pool(pool_size);
    constexpr std::size_t kOuter = 16;
    constexpr std::size_t kInner = 512;
    std::vector<std::uint64_t> sums(kOuter, 0);
    ParallelFor(
        &pool, kOuter,
        [&pool, &sums](std::size_t begin, std::size_t end) {
          for (std::size_t o = begin; o < end; ++o) {
            std::vector<std::uint64_t> inner(kInner, 0);
            ParallelFor(
                &pool, kInner,
                [&inner](std::size_t ib, std::size_t ie) {
                  for (std::size_t i = ib; i < ie; ++i) inner[i] = i;
                },
                /*grain=*/32);
            sums[o] = std::accumulate(inner.begin(), inner.end(),
                                      std::uint64_t{0});
          }
        },
        /*grain=*/1);
    const std::uint64_t expected = kInner * (kInner - 1) / 2;
    for (std::size_t o = 0; o < kOuter; ++o) EXPECT_EQ(sums[o], expected);
  }
}

TEST(ParallelStressTest, ParallelMapIdenticalAcrossPoolSizesUnderLoad) {
  // The determinism oracle, run at stress sizes so TSan sees the exact
  // slot-discipline the library's parallel entry points depend on.
  constexpr std::size_t kN = 10000;
  auto run = [](ThreadPool* pool) {
    return ParallelMap<std::uint64_t>(
        pool, kN, [](std::size_t i) { return i * i + 1; }, /*grain=*/37);
  };
  const std::vector<std::uint64_t> reference = run(nullptr);
  for (const std::size_t pool_size : StressPoolSizes()) {
    ThreadPool pool(pool_size);
    EXPECT_EQ(run(&pool), reference) << "pool size " << pool_size;
  }
}

// ---------------------------------------------------------------------------
// sched::Executor shapes under steal pressure. The graphs are small;
// the stress comes from running many of them at once on few workers, so
// ready queues drain cross-deque and every dependency edge's release /
// acquire pairing gets exercised by actual thieves.
// ---------------------------------------------------------------------------

TEST(ExecutorStressTest, DiamondDagsUnderStealPressure) {
  // A -> {B, C} -> D, many diamonds per run: D must observe both B's
  // and C's writes, which in turn must observe A's. Any missing edge in
  // the release chain shows up as a torn read here (and under TSan, as
  // a report).
  for (const std::size_t workers : StressPoolSizes()) {
    sched::Executor executor(workers);
    constexpr std::size_t kDiamonds = 128;
    std::vector<int> a(kDiamonds, 0);
    std::vector<int> b(kDiamonds, 0);
    std::vector<int> c(kDiamonds, 0);
    std::vector<int> d(kDiamonds, 0);
    sitm::TaskGraph graph;
    for (std::size_t i = 0; i < kDiamonds; ++i) {
      const sitm::TaskId ta = graph.AddTask("a", [&a, i] { a[i] = 1; });
      const sitm::TaskId tb =
          graph.AddTask("b", [&a, &b, i] { b[i] = a[i] + 1; });
      const sitm::TaskId tc =
          graph.AddTask("c", [&a, &c, i] { c[i] = a[i] + 2; });
      const sitm::TaskId td =
          graph.AddTask("d", [&b, &c, &d, i] { d[i] = b[i] * 10 + c[i]; });
      ASSERT_TRUE(graph.AddEdge(ta, tb).ok());
      ASSERT_TRUE(graph.AddEdge(ta, tc).ok());
      ASSERT_TRUE(graph.AddEdge(tb, td).ok());
      ASSERT_TRUE(graph.AddEdge(tc, td).ok());
    }
    ASSERT_TRUE(executor.Run(std::move(graph)).ok());
    for (std::size_t i = 0; i < kDiamonds; ++i) {
      ASSERT_EQ(d[i], 23) << "diamond " << i << " at " << workers
                          << " workers";
    }
  }
}

TEST(ExecutorStressTest, FanOutFanInUnderStealPressure) {
  // 1 -> 256 -> 1: the seed task's pushes flood one deque, so nearly
  // every leaf a thief runs was stolen; the join task must still see
  // all 256 increments.
  for (const std::size_t workers : StressPoolSizes()) {
    sched::Executor executor(workers);
    constexpr std::size_t kLeaves = 256;
    std::vector<std::uint64_t> leaves(kLeaves, 0);
    std::uint64_t total = 0;
    bool seeded = false;
    sitm::TaskGraph graph;
    const sitm::TaskId seed =
        graph.AddTask("seed", [&seeded] { seeded = true; });
    const sitm::TaskId join = graph.AddTask("join", [&leaves, &total] {
      total = std::accumulate(leaves.begin(), leaves.end(),
                              std::uint64_t{0});
    });
    for (std::size_t i = 0; i < kLeaves; ++i) {
      const sitm::TaskId leaf = graph.AddTask(
          "leaf", [&leaves, &seeded, i] { leaves[i] = seeded ? i + 1 : 0; });
      ASSERT_TRUE(graph.AddEdge(seed, leaf).ok());
      ASSERT_TRUE(graph.AddEdge(leaf, join).ok());
    }
    ASSERT_TRUE(executor.Run(std::move(graph)).ok());
    EXPECT_EQ(total, kLeaves * (kLeaves + 1) / 2);
  }
}

TEST(ExecutorStressTest, ExceptionInNodeStillRunsTheRestOfTheGraph) {
  // A throwing node is captured per-task: its successors and every
  // unrelated task still execute (slot state stays deterministic), Run
  // reports the failure, and the executor keeps working afterwards.
  for (const std::size_t workers : StressPoolSizes()) {
    sched::Executor executor(workers);
    constexpr std::size_t kTasks = 256;
    std::atomic<std::size_t> ran{0};
    sitm::TaskGraph graph;
    for (std::size_t i = 0; i < kTasks; ++i) {
      graph.AddTask("work", [&ran, i]() {
        if (i == kTasks / 2) throw std::runtime_error("boom");
        ran.fetch_add(1);
      });
    }
    const Status status = executor.Run(std::move(graph));
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(ran.load(), kTasks - 1);

    sitm::TaskGraph again;
    std::atomic<std::size_t> after{0};
    for (std::size_t i = 0; i < kTasks; ++i) {
      again.AddTask("work", [&after] { after.fetch_add(1); });
    }
    EXPECT_TRUE(executor.Run(std::move(again)).ok());
    EXPECT_EQ(after.load(), kTasks);
  }
}

TEST(ExecutorStressTest, DestructionRacesUnfinishedGraphs) {
  // Destroying the executor while external threads are mid-Run races
  // Shutdown's drain against live runs; the destructor must block until
  // every graph has finished, never strand a queued task.
  for (const std::size_t workers : StressPoolSizes()) {
    for (int round = 0; round < 8; ++round) {
      auto counter = std::make_shared<std::atomic<int>>(0);
      constexpr int kRunners = 3;
      constexpr int kTasksEach = 64;
      auto executor = std::make_unique<sched::Executor>(workers);
      sched::Executor* raw = executor.get();
      std::atomic<int> entered{0};
      // Raw threads on purpose: they are the external callers whose
      // in-flight runs the destructor must drain.
      // sitm-lint: allow(naked-thread)
      std::vector<std::thread> runners;
      runners.reserve(kRunners);
      for (int r = 0; r < kRunners; ++r) {
        runners.emplace_back([raw, counter, &entered] {
          sitm::TaskGraph graph;
          // The first task proves this run is in flight before the
          // destructor starts; the rest race against the drain.
          graph.AddTask("enter", [&entered] { entered.fetch_add(1); });
          for (int i = 0; i < kTasksEach; ++i) {
            graph.AddTask("tick", [counter] { counter->fetch_add(1); });
          }
          ASSERT_TRUE(raw->Run(std::move(graph)).ok());
        });
      }
      while (entered.load() < kRunners) std::this_thread::yield();
      executor.reset();  // races the runners' unfinished graphs
      for (std::thread& t : runners) t.join();  // sitm-lint: allow(naked-thread)
      EXPECT_EQ(counter->load(), kRunners * kTasksEach);
    }
  }
}

TEST(ExecutorStressTest, ConcurrentNestedParallelForCallersShareOneExecutor) {
  // The library pattern at stress scale: independent callers fan out
  // ParallelFor on one shared executor, and each outer chunk nests an
  // inner ParallelFor (caller participation keeps this deadlock-free
  // when every worker is busy in outer loops).
  for (const std::size_t workers : StressPoolSizes()) {
    sched::Executor executor(workers);
    constexpr int kCallers = 4;
    constexpr std::size_t kN = 2048;
    std::vector<std::vector<std::uint64_t>> outputs(
        kCallers, std::vector<std::uint64_t>(kN, 0));
    // Raw threads model independent library callers.
    // sitm-lint: allow(naked-thread)
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int c = 0; c < kCallers; ++c) {
      callers.emplace_back([&executor, &outputs, c] {
        std::vector<std::uint64_t>& out = outputs[c];
        sched::ParallelFor(
            &executor, kN,
            [&executor, &out, c](std::size_t begin, std::size_t end) {
              for (std::size_t i = begin; i < end; ++i) {
                std::uint64_t inner_sum = 0;
                if (i % 512 == 0) {
                  std::vector<std::uint64_t> inner(64, 0);
                  sched::ParallelFor(
                      &executor, inner.size(),
                      [&inner](std::size_t ib, std::size_t ie) {
                        for (std::size_t k = ib; k < ie; ++k) inner[k] = k;
                      },
                      /*grain=*/8);
                  inner_sum = std::accumulate(inner.begin(), inner.end(),
                                              std::uint64_t{0});
                }
                out[i] = i + static_cast<std::uint64_t>(c) + inner_sum;
              }
            },
            /*grain=*/64);
      });
    }
    for (std::thread& t : callers) t.join();  // sitm-lint: allow(naked-thread)
    constexpr std::uint64_t kInnerSum = 64 * 63 / 2;
    for (int c = 0; c < kCallers; ++c) {
      for (std::size_t i = 0; i < kN; ++i) {
        const std::uint64_t expected =
            i + static_cast<std::uint64_t>(c) + (i % 512 == 0 ? kInnerSum : 0);
        ASSERT_EQ(outputs[c][i], expected) << "caller " << c << " slot " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Query-result cache under concurrent readers. The cache's one mutex
// guards an LRU splice on every *lookup*, so read-mostly traffic is
// exactly the contention shape that needs a TSan pass: many threads
// hitting, missing, inserting, and evicting on one instance while the
// shared sched::Executor fans out the cold runs underneath.
// ---------------------------------------------------------------------------

TEST(QueryCacheStressTest, ConcurrentReadersShareOneCache) {
  const auto map = louvre::LouvreMap::Build();
  ASSERT_TRUE(map.ok()) << map.status();
  louvre::SimulatorOptions sim_options;
  sim_options.seed = 4242;
  sim_options.num_visitors = 60;
  sim_options.num_returning = 24;
  sim_options.num_third_visits = 10;
  sim_options.num_detections = (60 + 24 + 10) * 4;
  louvre::VisitSimulator simulator(&*map, sim_options);
  const auto dataset = simulator.Generate();
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  core::PipelineOptions pipeline_options;
  pipeline_options.builder.graph =
      &map->graph().FindLayer(map->zone_layer()).value()->graph();
  core::BatchPipeline pipeline(pipeline_options);
  const auto trajectories = pipeline.Run(dataset->ToRawDetections());
  ASSERT_TRUE(trajectories.ok()) << trajectories.status();

  const std::string path =
      ::testing::TempDir() + "/cache_stress.evst";
  auto writer = storage::EventStoreWriter::Create(
      path, storage::StoreKind::kTrajectories, {});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(*trajectories).ok());
  ASSERT_TRUE(writer->Finish().ok());
  const auto reader = storage::EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();

  const auto hierarchy = map->BuildHierarchy();
  ASSERT_TRUE(hierarchy.ok());
  query::QueryContext context;
  context.hierarchy = &*hierarchy;
  context.graph = &map->graph();

  // A query mix wide enough to churn a capacity-2 cache: every thread
  // keeps evicting what the others just inserted.
  std::vector<query::Query> queries;
  for (const std::int64_t object : {0, 1, 2, 3}) {
    query::Query q;
    q.where = query::ObjectIs(ObjectId(object));
    q.projection = query::Projection::kIds;
    queries.push_back(std::move(q));
  }
  query::Query count;
  count.projection = query::Projection::kCount;
  queries.push_back(std::move(count));

  for (const std::size_t workers : StressPoolSizes()) {
    sched::Executor executor(workers);
    query::QueryResultCache cache(2);  // far smaller than the mix
    query::ExecutorOptions options;
    options.executor = &executor;
    options.cache = &cache;
    const query::QueryExecutor query_executor(context, options);

    // Reference fingerprints, computed before any concurrency.
    std::vector<std::string> expected;
    for (const query::Query& q : queries) {
      const auto reference = query_executor.Run(q, *reader);
      ASSERT_TRUE(reference.ok()) << reference.status();
      expected.push_back(reference->Fingerprint());
    }
    cache.Clear();

    constexpr int kReaders = 4;
    constexpr int kRounds = 32;
    std::atomic<int> divergences{0};
    // Raw threads model independent query clients.
    // sitm-lint: allow(naked-thread)
    std::vector<std::thread> clients;
    clients.reserve(kReaders);
    for (int c = 0; c < kReaders; ++c) {
      clients.emplace_back([&, c] {
        for (int round = 0; round < kRounds; ++round) {
          // Different threads walk the mix with different strides, so
          // hit/miss/evict interleavings vary from run to run.
          const std::size_t q =
              (static_cast<std::size_t>(round) * (c + 1) + c) %
              queries.size();
          const auto result = query_executor.Run(queries[q], *reader);
          if (!result.ok() ||
              result->Fingerprint() != expected[q]) {
            divergences.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();  // sitm-lint: allow(naked-thread)
    EXPECT_EQ(divergences.load(), 0);
    // Every lookup was either a hit or a miss (Clear keeps counters, so
    // the reference pass counts too), every miss re-ran cold, and the
    // cache never grew past its capacity. Two threads missing the same
    // key concurrently both report a miss but only the first materialises
    // a fresh entry, so inserts may trail misses — never exceed them.
    const query::QueryResultCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses,
              static_cast<std::uint64_t>(kReaders) * kRounds +
                  queries.size());
    EXPECT_LE(stats.inserts, stats.misses);
    EXPECT_GE(stats.inserts, queries.size());
    EXPECT_LE(cache.size(), 2u);
    EXPECT_GT(stats.evictions, 0u);
  }
  std::remove(path.c_str());
}

#if defined(SITM_DEADLOCK_DETECTOR)

// The detector's contract (base/mutex.cc): an acquisition that closes a
// cycle in the global acquisition-order graph aborts with both orders —
// on the FIRST run that exercises both orders, no unlucky interleaving
// required. The classic A/B inversion below never actually deadlocks
// (one thread, sequential scopes), which is exactly the point: the
// detector catches the latent bug shape, not the hang.
TEST(DeadlockDetectorDeathTest, AbInversionAbortsWithBothOrders) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a;
        Mutex b;
        {
          MutexLock hold_a(a);
          MutexLock hold_b(b);  // records a -> b
        }
        {
          MutexLock hold_b(b);
          MutexLock hold_a(a);  // b -> a closes the cycle: abort
        }
      },
      "lock-order inversion");
}

TEST(DeadlockDetectorDeathTest, RecursiveAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex m;
        MutexLock outer(m);
        m.Lock();  // intentional re-lock of a held mutex
      },
      "recursive acquisition");
}

// Consistent nesting must stay silent: same order twice, a longer chain
// sharing a prefix, and re-use after the locks were dropped. This is
// the false-positive guard for the graph bookkeeping (edges persist
// process-wide, so earlier consistent runs must never poison later
// ones), and HeldCount pins the release bookkeeping across non-LIFO
// unlock orders.
TEST(DeadlockDetectorTest, ConsistentOrdersAndNonLifoReleaseStayQuiet) {
  Mutex a;
  Mutex b;
  Mutex c;
  for (int round = 0; round < 3; ++round) {
    MutexLock hold_a(a);
    MutexLock hold_b(b);
  }
  {
    MutexLock hold_a(a);
    MutexLock hold_b(b);
    MutexLock hold_c(c);
  }
  // Non-LIFO release: a then b, while b was acquired second.
  a.Lock();
  b.Lock();
  EXPECT_EQ(deadlock_internal::HeldCount(), 2u);
  a.Unlock();
  EXPECT_EQ(deadlock_internal::HeldCount(), 1u);
  b.Unlock();
  EXPECT_EQ(deadlock_internal::HeldCount(), 0u);
}

// Stress shape: the executor's own locking (worker deques, injection
// queue, per-run state, trace rings) under steal pressure must record
// no order cycles — every MutexLock scope in sched/ is flat by
// design, and this pins that staying true with the detector watching.
TEST(DeadlockDetectorTest, ExecutorStressRecordsNoOrderCycles) {
  for (const std::size_t workers : StressPoolSizes()) {
    sched::Executor executor(workers);
    std::atomic<int> ran{0};
    for (int round = 0; round < 8; ++round) {
      TaskGraph graph;
      std::vector<TaskId> layer;
      for (int i = 0; i < 16; ++i) {
        layer.push_back(graph.AddTask("work", [&ran] { ran.fetch_add(1); }));
      }
      const TaskId join = graph.AddTask("join", nullptr);
      for (const TaskId id : layer) {
        ASSERT_TRUE(graph.AddEdge(id, join).ok());
      }
      ASSERT_TRUE(executor.Run(std::move(graph)).ok());
    }
    EXPECT_EQ(ran.load(), 8 * 16);
  }
}

#endif  // SITM_DEADLOCK_DETECTOR

}  // namespace
}  // namespace sitm
