// Stress harness for the base/parallel substrate, written to run under
// TSan (ctest label: parallel): every scenario here is about *schedule*
// coverage, not output checking alone — nested submission, exceptions
// thrown and handled inside tasks, pool teardown racing a full queue,
// and ParallelFor/ParallelMap hammered from many callers at once. The
// determinism contract ("byte-identical at every pool size") is only
// credible if a race detector stays silent on exactly these shapes.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"

namespace sitm {
namespace {

std::size_t Hc() { return ThreadPool::DefaultConcurrency(); }

// Pool sizes the contract is pinned at: minimal contention (2) and the
// hardware concurrency of the machine running the test.
std::vector<std::size_t> StressPoolSizes() {
  std::vector<std::size_t> sizes{2};
  if (Hc() != 2) sizes.push_back(Hc());
  return sizes;
}

TEST(ParallelStressTest, ManySubmittersOneConsumerCounter) {
  for (const std::size_t pool_size : StressPoolSizes()) {
    ThreadPool pool(pool_size);
    std::atomic<int> counter{0};
    constexpr int kSubmitters = 4;
    constexpr int kTasksEach = 256;
    // Raw threads on purpose: they *are* the external submitters whose
    // races this harness exists to provoke. sitm-lint: allow(naked-thread)
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&pool, &counter] {
        for (int i = 0; i < kTasksEach; ++i) {
          pool.Submit([&counter] { counter.fetch_add(1); });
        }
      });
    }
    for (std::thread& t : submitters) t.join();  // sitm-lint: allow(naked-thread)
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);
  }
}

TEST(ParallelStressTest, NestedSubmissionFromInsideTasks) {
  for (const std::size_t pool_size : StressPoolSizes()) {
    ThreadPool pool(pool_size);
    std::atomic<int> leaves{0};
    constexpr int kRoots = 64;
    constexpr int kChildren = 8;
    for (int r = 0; r < kRoots; ++r) {
      pool.Submit([&pool, &leaves] {
        for (int c = 0; c < kChildren; ++c) {
          pool.Submit([&leaves] { leaves.fetch_add(1); });
        }
      });
    }
    // WaitIdle must cover tasks submitted *by* tasks: in_flight_ counts
    // the children before any root finishes decrementing it to zero.
    pool.WaitIdle();
    EXPECT_EQ(leaves.load(), kRoots * kChildren);
  }
}

TEST(ParallelStressTest, ExceptionsThrownAndCaughtInsideTasks) {
  // The pool contract forbids exceptions *escaping* a task; throwing and
  // catching inside one is ordinary control flow, and the unwinding must
  // not corrupt queue state or lose the in-flight count.
  for (const std::size_t pool_size : StressPoolSizes()) {
    ThreadPool pool(pool_size);
    std::atomic<int> caught{0};
    std::atomic<int> clean{0};
    constexpr int kTasks = 512;
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([i, &caught, &clean] {
        try {
          if (i % 3 == 0) throw std::runtime_error("expected");
          clean.fetch_add(1);
        } catch (const std::runtime_error&) {
          caught.fetch_add(1);
        }
      });
    }
    pool.WaitIdle();
    EXPECT_EQ(caught.load() + clean.load(), kTasks);
    EXPECT_EQ(caught.load(), (kTasks + 2) / 3);
  }
}

TEST(ParallelStressTest, TeardownWithFullQueue) {
  // Destroying a pool right after flooding it races ~shutdown against
  // workers mid-dequeue; the destructor must drain everything first.
  for (const std::size_t pool_size : StressPoolSizes()) {
    for (int round = 0; round < 16; ++round) {
      auto counter = std::make_shared<std::atomic<int>>(0);
      constexpr int kTasks = 128;
      {
        ThreadPool pool(pool_size);
        for (int i = 0; i < kTasks; ++i) {
          pool.Submit([counter] { counter->fetch_add(1); });
        }
        // No WaitIdle: the destructor itself is the barrier under test.
      }
      EXPECT_EQ(counter->load(), kTasks);
    }
  }
}

TEST(ParallelStressTest, ConcurrentParallelForCallersShareOnePool) {
  for (const std::size_t pool_size : StressPoolSizes()) {
    ThreadPool pool(pool_size);
    constexpr int kCallers = 4;
    constexpr std::size_t kN = 4096;
    std::vector<std::vector<int>> outputs(kCallers,
                                          std::vector<int>(kN, 0));
    // Raw threads model independent library callers. sitm-lint: allow(naked-thread)
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int c = 0; c < kCallers; ++c) {
      callers.emplace_back([&pool, &outputs, c] {
        std::vector<int>& out = outputs[c];
        ParallelFor(
            &pool, kN,
            [&out, c](std::size_t begin, std::size_t end) {
              for (std::size_t i = begin; i < end; ++i) {
                out[i] = static_cast<int>(i) + c;
              }
            },
            /*grain=*/64);
      });
    }
    for (std::thread& t : callers) t.join();  // sitm-lint: allow(naked-thread)
    for (int c = 0; c < kCallers; ++c) {
      for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(outputs[c][i], static_cast<int>(i) + c);
      }
    }
  }
}

TEST(ParallelStressTest, NestedParallelForInsidePoolTasks) {
  // The pipeline nests ParallelFor (over store blocks) inside pool tasks
  // (over shards); caller participation is what keeps this deadlock-free
  // when every worker is already busy in the outer loop.
  for (const std::size_t pool_size : StressPoolSizes()) {
    ThreadPool pool(pool_size);
    constexpr std::size_t kOuter = 16;
    constexpr std::size_t kInner = 512;
    std::vector<std::uint64_t> sums(kOuter, 0);
    ParallelFor(
        &pool, kOuter,
        [&pool, &sums](std::size_t begin, std::size_t end) {
          for (std::size_t o = begin; o < end; ++o) {
            std::vector<std::uint64_t> inner(kInner, 0);
            ParallelFor(
                &pool, kInner,
                [&inner](std::size_t ib, std::size_t ie) {
                  for (std::size_t i = ib; i < ie; ++i) inner[i] = i;
                },
                /*grain=*/32);
            sums[o] = std::accumulate(inner.begin(), inner.end(),
                                      std::uint64_t{0});
          }
        },
        /*grain=*/1);
    const std::uint64_t expected = kInner * (kInner - 1) / 2;
    for (std::size_t o = 0; o < kOuter; ++o) EXPECT_EQ(sums[o], expected);
  }
}

TEST(ParallelStressTest, ParallelMapIdenticalAcrossPoolSizesUnderLoad) {
  // The determinism oracle, run at stress sizes so TSan sees the exact
  // slot-discipline the library's parallel entry points depend on.
  constexpr std::size_t kN = 10000;
  auto run = [](ThreadPool* pool) {
    return ParallelMap<std::uint64_t>(
        pool, kN, [](std::size_t i) { return i * i + 1; }, /*grain=*/37);
  };
  const std::vector<std::uint64_t> reference = run(nullptr);
  for (const std::size_t pool_size : StressPoolSizes()) {
    ThreadPool pool(pool_size);
    EXPECT_EQ(run(&pool), reference) << "pool size " << pool_size;
  }
}

}  // namespace
}  // namespace sitm
