// Ingest-boundary hardening: ParseDetectionBatch faces raw network
// bodies, so every malformed, truncated, or type-confused input must
// come back as Status::InvalidArgument — never UB, never a throw, never
// a partial batch — and the happy paths must decode exactly.
#include "live/ingest.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "live/incremental_builder.h"
#include "live/segment_store.h"

namespace sitm::live {
namespace {

void ExpectRejected(const std::string& body, const char* why) {
  const auto result = ParseDetectionBatch(body);
  ASSERT_FALSE(result.ok()) << why << ": " << body;
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
      << why << ": " << result.status();
}

TEST(ParseDetectionBatchTest, MalformedBodiesAreInvalidArgument) {
  // A fuzz-derived corpus: every entry once produced (or plausibly
  // could produce) something other than a clean InvalidArgument.
  const struct {
    const char* body;
    const char* why;
  } corpus[] = {
      {"", "empty body"},
      {"   \n\t ", "whitespace only"},
      {"not json at all", "non-JSON"},
      {"\xff\xfe\x00garbage", "binary garbage"},
      {"[", "truncated array"},
      {"[{\"object\":1,", "truncated mid-object"},
      {"[{\"object\":1}]trailing", "trailing garbage"},
      {"null", "top-level null"},
      {"42", "top-level number"},
      {"\"detections\"", "top-level string"},
      {"true", "top-level bool"},
      {"{}", "object without detections member"},
      {"{\"detections\": 7}", "detections member not an array"},
      {"{\"detections\": {\"object\": 1}}", "detections member an object"},
      {"[1, 2, 3]", "elements not objects"},
      {"[null]", "null element"},
      {"[[]]", "array element"},
      {"[{}]", "element missing every field"},
      {"[{\"object\":1,\"cell\":2,\"start\":0}]", "missing end"},
      {"[{\"cell\":2,\"start\":0,\"end\":1}]", "missing object"},
      {"[{\"object\":\"v1\",\"cell\":2,\"start\":0,\"end\":1}]",
       "object id as string"},
      {"[{\"object\":1.5,\"cell\":2,\"start\":0,\"end\":1}]",
       "object id as float"},
      {"[{\"object\":-1,\"cell\":2,\"start\":0,\"end\":1}]",
       "negative object id"},
      {"[{\"object\":1,\"cell\":-2,\"start\":0,\"end\":1}]",
       "negative cell id"},
      {"[{\"object\":1,\"cell\":null,\"start\":0,\"end\":1}]",
       "null cell"},
      {"[{\"object\":1,\"cell\":2,\"start\":true,\"end\":1}]",
       "bool timestamp"},
      {"[{\"object\":1,\"cell\":2,\"start\":[0],\"end\":1}]",
       "array timestamp"},
      {"[{\"object\":1,\"cell\":2,\"start\":\"yesterday\",\"end\":1}]",
       "unparseable timestamp string"},
      {"[{\"object\":1,\"cell\":2,\"start\":\"2017-02-30 12:00:00\","
       "\"end\":1}]",
       "impossible civil date"},
  };
  for (const auto& sample : corpus) {
    ExpectRejected(sample.body, sample.why);
  }
}

TEST(ParseDetectionBatchTest, DeepNestingIsRejectedNotFatal) {
  // Stack-smash probes: pathological nesting must die in the JSON
  // parser's depth cap and surface as InvalidArgument.
  ExpectRejected(std::string(10000, '['), "10k open brackets");
  std::string deep(5000, '[');
  deep += "{\"object\":1}";
  deep.append(5000, ']');
  ExpectRejected(deep, "detection buried 5k levels down");
}

TEST(ParseDetectionBatchTest, OneBadElementRejectsTheWholeBatch) {
  // No partial ingestion: a batch is all-or-nothing so a retry after a
  // 400 can resend the same body without duplicating the good prefix.
  const std::string body =
      "[{\"object\":1,\"cell\":2,\"start\":100,\"end\":200},"
      " {\"object\":1,\"cell\":\"oops\",\"start\":300,\"end\":400}]";
  ExpectRejected(body, "bad second element");
}

TEST(ParseDetectionBatchTest, AcceptsArrayAndWrappedForms) {
  const char* bodies[] = {
      "[{\"object\":7,\"cell\":3,\"start\":100,\"end\":250}]",
      "{\"detections\":[{\"object\":7,\"cell\":3,\"start\":100,"
      "\"end\":250}]}",
  };
  for (const char* body : bodies) {
    const auto result = ParseDetectionBatch(body);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->size(), 1u);
    EXPECT_EQ((*result)[0].object, ObjectId(7));
    EXPECT_EQ((*result)[0].cell, CellId(3));
    EXPECT_EQ((*result)[0].start, Timestamp(100));
    EXPECT_EQ((*result)[0].end, Timestamp(250));
  }
}

TEST(ParseDetectionBatchTest, AcceptsCivilTimestampStrings) {
  const auto result = ParseDetectionBatch(
      "[{\"object\":1,\"cell\":2,\"start\":\"2017-02-01 17:30:21\","
      "\"end\":\"2017-02-01 17:45:00\"}]");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].start,
            Timestamp::Parse("2017-02-01 17:30:21").value());
  EXPECT_EQ((*result)[0].end,
            Timestamp::Parse("2017-02-01 17:45:00").value());
}

TEST(ParseDetectionBatchTest, UnknownKeysAreIgnored) {
  const auto result = ParseDetectionBatch(
      "[{\"object\":1,\"cell\":2,\"start\":5,\"end\":9,"
      "\"sensor\":\"gate-4\",\"rssi\":-61}]");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 1u);
}

TEST(ParseDetectionBatchTest, EmptyBatchIsValid) {
  EXPECT_EQ(ParseDetectionBatch("[]").value().size(), 0u);
  EXPECT_EQ(ParseDetectionBatch("{\"detections\": []}").value().size(), 0u);
}

TEST(RenderStatsTest, EmitsEveryCounterAsValidJson) {
  IncrementalStats builder;
  builder.has_watermark = true;
  builder.watermark = Timestamp(1234);
  builder.records_in = 10;
  builder.late_dropped = 2;
  builder.finalized = 3;
  builder.peak_open_objects = 4;
  SegmentStoreStats store;
  store.segments = 5;
  store.compactions = 1;
  store.segments_per_level = {3, 2};

  const io::JsonValue doc = RenderStats(builder, store);
  // Dump -> Parse round trip proves the document is well-formed.
  const auto parsed = io::JsonValue::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const io::JsonValue* b = parsed->Get("builder").value();
  EXPECT_EQ(b->Get("watermark").value()->AsInt().value(), 1234);
  EXPECT_EQ(b->Get("records_in").value()->AsInt().value(), 10);
  EXPECT_EQ(b->Get("late_dropped").value()->AsInt().value(), 2);
  EXPECT_EQ(b->Get("peak_open_objects").value()->AsInt().value(), 4);
  const io::JsonValue* s = parsed->Get("store").value();
  EXPECT_EQ(s->Get("segments").value()->AsInt().value(), 5);
  EXPECT_EQ(s->Get("compactions").value()->AsInt().value(), 1);
  EXPECT_EQ(s->Get("segments_per_level").value()->AsArray().value()->size(),
            2u);
}

TEST(RenderStatsTest, NoWatermarkRendersNull) {
  const io::JsonValue doc = RenderStats(IncrementalStats{},
                                        SegmentStoreStats{});
  const auto parsed = io::JsonValue::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->Get("builder").value()->Get("watermark").value()
                  ->is_null());
}

}  // namespace
}  // namespace sitm::live
