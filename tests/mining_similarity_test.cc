#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "base/rng.h"
#include "mining/floor_switch.h"
#include "mining/profiling.h"
#include "mining/similarity.h"

namespace sitm::mining {
namespace {

using core::AnnotationKind;
using core::AnnotationSet;
using core::PresenceInterval;
using core::SemanticTrajectory;
using core::Trace;

PresenceInterval Pi(int cell, std::int64_t start, std::int64_t end) {
  PresenceInterval p;
  p.cell = CellId(cell);
  p.interval = *qsr::TimeInterval::Make(Timestamp(start), Timestamp(end));
  return p;
}

SemanticTrajectory Traj(int id, std::vector<PresenceInterval> intervals,
                        AnnotationSet annotations = AnnotationSet{
                            {AnnotationKind::kActivity, "visit"}}) {
  return SemanticTrajectory(TrajectoryId(id), ObjectId(id),
                            Trace(std::move(intervals)),
                            std::move(annotations));
}

std::vector<CellId> Seq(std::initializer_list<int> ids) {
  std::vector<CellId> out;
  for (int id : ids) out.push_back(CellId(id));
  return out;
}

TEST(EditDistanceTest, ClassicValues) {
  const CellCost unit = UnitCellCost();
  EXPECT_DOUBLE_EQ(EditDistance(Seq({}), Seq({}), unit), 0);
  EXPECT_DOUBLE_EQ(EditDistance(Seq({1, 2, 3}), Seq({1, 2, 3}), unit), 0);
  EXPECT_DOUBLE_EQ(EditDistance(Seq({1, 2, 3}), Seq({}), unit), 3);
  EXPECT_DOUBLE_EQ(EditDistance(Seq({1, 2, 3}), Seq({1, 9, 3}), unit), 1);
  EXPECT_DOUBLE_EQ(EditDistance(Seq({1, 2, 3}), Seq({2, 3}), unit), 1);
  EXPECT_DOUBLE_EQ(EditDistance(Seq({1, 2}), Seq({2, 1}), unit), 2);
}

TEST(EditDistanceTest, SimilarityNormalization) {
  const CellCost unit = UnitCellCost();
  EXPECT_DOUBLE_EQ(EditSimilarity(Seq({}), Seq({}), unit), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity(Seq({1, 2, 3, 4}), Seq({1, 2, 3, 4}), unit),
                   1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity(Seq({1, 2}), Seq({3, 4}), unit), 0.0);
  EXPECT_DOUBLE_EQ(EditSimilarity(Seq({1, 2, 3, 4}), Seq({1, 2, 3, 9}), unit),
                   0.75);
}

TEST(EditDistanceTest, SimilarityLengthGapEarlyExitSkipsTheDp) {
  // ||a| - |b|| >= max(|a|, |b|) pins similarity at 0 via the
  // length-difference lower bound; the substitution cost must never run.
  int cost_calls = 0;
  const CellCost counting = [&cost_calls](CellId a, CellId b) {
    ++cost_calls;
    return a == b ? 0.0 : 1.0;
  };
  EXPECT_DOUBLE_EQ(EditSimilarity(Seq({}), Seq({1, 2, 3}), counting), 0.0);
  EXPECT_DOUBLE_EQ(EditSimilarity(Seq({1, 2, 3}), Seq({}), counting), 0.0);
  EXPECT_EQ(cost_calls, 0);
}

TEST(EditDistanceBoundedTest, ExactWithinCutoffInfiniteBeyond) {
  const CellCost unit = UnitCellCost();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Distance 1 cases around the cutoff boundary.
  EXPECT_DOUBLE_EQ(
      EditDistanceBounded(Seq({1, 2, 3}), Seq({1, 9, 3}), unit, 1.0), 1.0);
  EXPECT_EQ(EditDistanceBounded(Seq({1, 2, 3}), Seq({1, 9, 3}), unit, 0.5),
            kInf);
  // Length-gap early exit: gap 3 > cutoff 2.
  EXPECT_EQ(EditDistanceBounded(Seq({1, 2, 3}), Seq({}), unit, 2.0), kInf);
  EXPECT_DOUBLE_EQ(EditDistanceBounded(Seq({1, 2, 3}), Seq({}), unit, 3.0),
                   3.0);
  // Identical sequences at cutoff 0.
  EXPECT_DOUBLE_EQ(EditDistanceBounded(Seq({5, 6}), Seq({5, 6}), unit, 0.0),
                   0.0);
  // Negative cutoff admits nothing.
  EXPECT_EQ(EditDistanceBounded(Seq({}), Seq({}), unit, -1.0), kInf);
}

TEST(EditDistanceBoundedTest, LengthGapEarlyExitSkipsTheDp) {
  int cost_calls = 0;
  const CellCost counting = [&cost_calls](CellId a, CellId b) {
    ++cost_calls;
    return a == b ? 0.0 : 1.0;
  };
  EXPECT_TRUE(std::isinf(
      EditDistanceBounded(Seq({1, 2, 3, 4, 5}), Seq({1}), counting, 2.0)));
  EXPECT_EQ(cost_calls, 0);
}

TEST(EditDistanceBoundedTest, AgreesWithFullDpOnRandomSequences) {
  // Randomized oracle across cutoffs, with a fractional substitution
  // cost so the band logic is exercised off the integer lattice.
  const CellCost fractional = [](CellId a, CellId b) {
    return a == b ? 0.0 : 0.4;
  };
  Rng rng(20260727);
  for (int round = 0; round < 400; ++round) {
    std::vector<CellId> a;
    std::vector<CellId> b;
    const int la = static_cast<int>(rng.NextInt(0, 10));
    const int lb = static_cast<int>(rng.NextInt(0, 10));
    for (int i = 0; i < la; ++i) a.push_back(CellId(rng.NextInt(1, 4)));
    for (int i = 0; i < lb; ++i) b.push_back(CellId(rng.NextInt(1, 4)));
    const double exact = EditDistance(a, b, fractional);
    for (const double cutoff : {0.0, 0.4, 1.0, 2.5, 4.0, 100.0,
                                std::numeric_limits<double>::infinity()}) {
      const double bounded = EditDistanceBounded(a, b, fractional, cutoff);
      if (exact <= cutoff) {
        ASSERT_DOUBLE_EQ(bounded, exact)
            << "round " << round << " cutoff " << cutoff;
      } else {
        ASSERT_TRUE(std::isinf(bounded))
            << "round " << round << " cutoff " << cutoff << " exact "
            << exact << " bounded " << bounded;
      }
    }
  }
}

TEST(EditDistanceTest, HierarchyCostSoftensSubstitutions) {
  // Two rooms under the same floor substitute at cost < 1; rooms under
  // different floors cost more.
  indoor::MultiLayerGraph g;
  indoor::SpaceLayer floors(LayerId(1), "Floor",
                            indoor::LayerKind::kTopographic);
  for (int f : {10, 11}) {
    ASSERT_TRUE(floors.mutable_graph()
                    .AddCell(indoor::CellSpace(CellId(f), "floor",
                                               indoor::CellClass::kFloor))
                    .ok());
  }
  indoor::SpaceLayer rooms(LayerId(0), "Room",
                           indoor::LayerKind::kTopographic);
  for (int r : {100, 101, 110}) {
    ASSERT_TRUE(rooms.mutable_graph()
                    .AddCell(indoor::CellSpace(CellId(r), "room",
                                               indoor::CellClass::kRoom))
                    .ok());
  }
  ASSERT_TRUE(g.AddLayer(std::move(floors)).ok());
  ASSERT_TRUE(g.AddLayer(std::move(rooms)).ok());
  for (auto [f, r] : {std::pair{10, 100}, {10, 101}, {11, 110}}) {
    ASSERT_TRUE(g.AddJointEdge(CellId(f), CellId(r),
                               qsr::TopologicalRelation::kCovers)
                    .ok());
  }
  const auto h = indoor::LayerHierarchy::Build(&g, {LayerId(1), LayerId(0)});
  ASSERT_TRUE(h.ok());
  const CellCost cost = HierarchyCellCost(&*h, /*max_distance=*/4);
  EXPECT_DOUBLE_EQ(cost(CellId(100), CellId(100)), 0.0);
  EXPECT_DOUBLE_EQ(cost(CellId(100), CellId(101)), 0.5);  // LCA = floor
  EXPECT_DOUBLE_EQ(cost(CellId(100), CellId(110)), 1.0);  // different roots
  // Same-floor swap is cheaper than a cross-floor swap in the induced
  // edit distance.
  const double same_floor =
      EditDistance(Seq({100}), Seq({101}), cost);
  const double cross_floor =
      EditDistance(Seq({100}), Seq({110}), cost);
  EXPECT_LT(same_floor, cross_floor);
}

TEST(LcsTest, LengthAndSimilarity) {
  EXPECT_EQ(LcsLength(Seq({1, 2, 3, 4}), Seq({2, 4})), 2u);
  EXPECT_EQ(LcsLength(Seq({1, 2, 3}), Seq({4, 5})), 0u);
  EXPECT_EQ(LcsLength(Seq({}), Seq({1})), 0u);
  EXPECT_DOUBLE_EQ(LcssSimilarity(Seq({1, 2, 3, 4}), Seq({2, 4})), 1.0);
  EXPECT_DOUBLE_EQ(LcssSimilarity(Seq({1, 2}), Seq({3, 4})), 0.0);
  EXPECT_DOUBLE_EQ(LcssSimilarity(Seq({}), Seq({})), 1.0);
}

TEST(JaccardTest, CellSets) {
  const SemanticTrajectory a = Traj(1, {Pi(1, 0, 10), Pi(2, 20, 30)});
  const SemanticTrajectory b = Traj(2, {Pi(2, 0, 10), Pi(3, 20, 30)});
  EXPECT_DOUBLE_EQ(JaccardCellSimilarity(a, b), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardCellSimilarity(a, a), 1.0);
}

TEST(DwellDistributionTest, DistanceProperties) {
  const SemanticTrajectory a = Traj(1, {Pi(1, 0, 100)});
  const SemanticTrajectory b = Traj(2, {Pi(2, 0, 100)});
  const SemanticTrajectory c = Traj(3, {Pi(1, 0, 50), Pi(2, 60, 110)});
  EXPECT_DOUBLE_EQ(DwellDistributionDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(DwellDistributionDistance(a, b), 2.0);  // disjoint
  EXPECT_NEAR(DwellDistributionDistance(a, c), 1.0, 1e-9);
  // Symmetry.
  EXPECT_DOUBLE_EQ(DwellDistributionDistance(a, c),
                   DwellDistributionDistance(c, a));
}

TEST(AnnotationSimilarityTest, JaccardOnAnnotations) {
  const SemanticTrajectory a =
      Traj(1, {Pi(1, 0, 10)},
           AnnotationSet{{AnnotationKind::kGoal, "visit"},
                         {AnnotationKind::kGoal, "buy"}});
  const SemanticTrajectory b =
      Traj(2, {Pi(1, 0, 10)},
           AnnotationSet{{AnnotationKind::kGoal, "visit"}});
  EXPECT_DOUBLE_EQ(AnnotationSimilarity(a, b), 0.5);
  EXPECT_DOUBLE_EQ(AnnotationSimilarity(a, a), 1.0);
}

TEST(DistanceMatrixTest, SymmetricZeroDiagonal) {
  const std::vector<SemanticTrajectory> trajectories = {
      Traj(1, {Pi(1, 0, 10)}), Traj(2, {Pi(2, 0, 10)}),
      Traj(3, {Pi(1, 0, 10), Pi(2, 20, 30)})};
  const std::vector<double> m =
      DistanceMatrix(trajectories, DwellDistributionDistance);
  const std::size_t n = trajectories.size();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(m[i * n + i], 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(m[i * n + j], m[j * n + i]);
    }
  }
}

TEST(FeaturesTest, ExtractedQuantities) {
  const SemanticTrajectory t =
      Traj(1, {Pi(1, 0, 600), Pi(2, 660, 1260), Pi(1, 1320, 1920)});
  const VisitFeatures f = ExtractFeatures(t, /*total_cells=*/10);
  EXPECT_DOUBLE_EQ(f.duration_minutes, 32.0);
  EXPECT_DOUBLE_EQ(f.num_cells, 2.0);
  EXPECT_DOUBLE_EQ(f.num_detections, 3.0);
  EXPECT_DOUBLE_EQ(f.mean_stay_minutes, 10.0);
  EXPECT_DOUBLE_EQ(f.coverage, 0.2);
  // Dwell split 2/3 vs 1/3: entropy = log2(3) - 2/3 bits.
  EXPECT_NEAR(f.dwell_entropy, 0.9183, 1e-3);
}

TEST(FeaturesTest, EmptyTrajectory) {
  const SemanticTrajectory t(TrajectoryId(1), ObjectId(1), Trace{},
                             AnnotationSet{{AnnotationKind::kGoal, "g"}});
  const VisitFeatures f = ExtractFeatures(t, 10);
  EXPECT_DOUBLE_EQ(f.num_detections, 0.0);
}

TEST(StyleTest, FourQuadrants) {
  // ant: wide & slow; fish: narrow & quick; grasshopper: narrow & slow;
  // butterfly: wide & quick.
  VisitFeatures f;
  f.coverage = 0.8;
  f.mean_stay_minutes = 10;
  EXPECT_EQ(ClassifyStyle(f, 0.5, 5), VisitorStyle::kAnt);
  f.coverage = 0.2;
  f.mean_stay_minutes = 2;
  EXPECT_EQ(ClassifyStyle(f, 0.5, 5), VisitorStyle::kFish);
  f.mean_stay_minutes = 10;
  EXPECT_EQ(ClassifyStyle(f, 0.5, 5), VisitorStyle::kGrasshopper);
  f.coverage = 0.8;
  f.mean_stay_minutes = 2;
  EXPECT_EQ(ClassifyStyle(f, 0.5, 5), VisitorStyle::kButterfly);
  EXPECT_EQ(VisitorStyleName(VisitorStyle::kAnt), "ant");
  EXPECT_EQ(VisitorStyleName(VisitorStyle::kButterfly), "butterfly");
}

TEST(KMedoidsTest, SeparatesObviousClusters) {
  // Two tight groups on a line: {0, 1, 2} and {100, 101, 102}.
  const std::vector<double> points = {0, 1, 2, 100, 101, 102};
  const std::size_t n = points.size();
  std::vector<double> matrix(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      matrix[i * n + j] = std::abs(points[i] - points[j]);
    }
  }
  Rng rng(7);
  const auto result = KMedoids(matrix, n, 2, &rng);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->assignment[0], result->assignment[1]);
  EXPECT_EQ(result->assignment[0], result->assignment[2]);
  EXPECT_EQ(result->assignment[3], result->assignment[4]);
  EXPECT_EQ(result->assignment[3], result->assignment[5]);
  EXPECT_NE(result->assignment[0], result->assignment[3]);
  EXPECT_LE(result->total_cost, 4.0);
}

TEST(KMedoidsTest, ValidatesArguments) {
  Rng rng(1);
  EXPECT_FALSE(KMedoids({}, 0, 1, &rng).ok());
  EXPECT_FALSE(KMedoids({0.0}, 1, 2, &rng).ok());
  EXPECT_FALSE(KMedoids({0.0, 1.0}, 2, 1, &rng).ok());  // size != n*n
  EXPECT_FALSE(KMedoids({0.0}, 1, 1, nullptr).ok());
}

TEST(KMedoidsTest, DeterministicPerSeed) {
  const std::size_t n = 5;
  std::vector<double> matrix(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      matrix[i * n + j] = std::abs(static_cast<double>(i) - double(j));
    }
  }
  Rng rng_a(3);
  Rng rng_b(3);
  const auto a = KMedoids(matrix, n, 2, &rng_a);
  const auto b = KMedoids(matrix, n, 2, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_EQ(a->medoids, b->medoids);
}

}  // namespace
}  // namespace sitm::mining
