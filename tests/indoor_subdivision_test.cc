#include <gtest/gtest.h>

#include "indoor/hierarchy.h"
#include "indoor/subdivision.h"

namespace sitm::indoor {
namespace {

using qsr::TopologicalRelation;

// One coarse layer with a hall (geometry [0,12]x[0,4]) and a room, plus
// an empty fine layer to subdivide into — the Fig. 1 setting.
MultiLayerGraph BaseGraph() {
  MultiLayerGraph g;
  SpaceLayer coarse(LayerId(1), "coarse", LayerKind::kTopographic);
  CellSpace hall(CellId(5), "hall 5", CellClass::kHall);
  hall.set_geometry(geom::Polygon::Rectangle(0, 0, 12, 4));
  hall.SetAttribute("theme", "Italian Paintings");
  hall.set_floor_level(1);
  EXPECT_TRUE(coarse.mutable_graph().AddCell(std::move(hall)).ok());
  EXPECT_TRUE(coarse.mutable_graph()
                  .AddCell(CellSpace(CellId(4), "room 4", CellClass::kRoom))
                  .ok());
  SpaceLayer fine(LayerId(0), "fine", LayerKind::kTopographic);
  EXPECT_TRUE(g.AddLayer(std::move(coarse)).ok());
  EXPECT_TRUE(g.AddLayer(std::move(fine)).ok());
  return g;
}

CellSpace SubCell(int id, const char* name, double x0, double x1) {
  CellSpace cell(CellId(id), name, CellClass::kHall);
  cell.set_geometry(geom::Polygon::Rectangle(x0, 0, x1, 4));
  return cell;
}

TEST(SubdivisionTest, SplitsHallIntoThreeSubCells) {
  MultiLayerGraph g = BaseGraph();
  const auto added = SubdivideCell(
      &g, CellId(5), LayerId(0),
      {SubCell(15, "5a", 0, 4), SubCell(16, "5b", 4, 8),
       SubCell(17, "5c", 8, 12)});
  ASSERT_TRUE(added.ok()) << added.status();
  EXPECT_EQ(*added, 6);  // 3 covers + 3 converses
  // The MLSM active-state semantics now hold (Fig. 1).
  const std::vector<CellId> active = g.CandidateStates(CellId(5), LayerId(0));
  EXPECT_EQ(active.size(), 3u);
  EXPECT_TRUE(g.Validate().ok());
  // And the two layers now form a proper hierarchy for that subtree.
  auto fine_layer = g.MutableLayer(LayerId(0));
  ASSERT_TRUE(fine_layer.ok());
  // room 4 has no children, which a hierarchy does not require; but the
  // subdivided cells must each have exactly one parent.
  const auto h = LayerHierarchy::Build(&g, {LayerId(1), LayerId(0)});
  ASSERT_TRUE(h.ok()) << h.status();
  EXPECT_EQ(h->Parent(CellId(16)).value(), CellId(5));
}

TEST(SubdivisionTest, RejectsSubCellOutsideParent) {
  MultiLayerGraph g = BaseGraph();
  const auto added = SubdivideCell(&g, CellId(5), LayerId(0),
                                   {SubCell(15, "stray", 10, 20)});
  EXPECT_EQ(added.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SubdivisionTest, RejectsOverlappingSubCells) {
  MultiLayerGraph g = BaseGraph();
  const auto added = SubdivideCell(
      &g, CellId(5), LayerId(0),
      {SubCell(15, "5a", 0, 7), SubCell(16, "5b", 5, 12)});
  EXPECT_EQ(added.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SubdivisionTest, RejectsSameLayerAndBadArguments) {
  MultiLayerGraph g = BaseGraph();
  EXPECT_FALSE(
      SubdivideCell(&g, CellId(5), LayerId(1), {SubCell(15, "x", 0, 4)})
          .ok());
  EXPECT_FALSE(SubdivideCell(&g, CellId(5), LayerId(0), {}).ok());
  EXPECT_FALSE(SubdivideCell(nullptr, CellId(5), LayerId(0),
                             {SubCell(15, "x", 0, 4)})
                   .ok());
  EXPECT_FALSE(SubdivideCell(&g, CellId(99), LayerId(0),
                             {SubCell(15, "x", 0, 4)})
                   .ok());
}

TEST(SubdivisionTest, ManySubCellsStayDisjointThroughTheIndexPrune) {
  // 24 sub-cells: the pairwise disjointness check goes through the
  // grid-index candidate prune; a single overlapping pair among the
  // tail must still be caught, and a fully disjoint split must pass.
  MultiLayerGraph ok_graph = BaseGraph();
  std::vector<CellSpace> disjoint;
  for (int i = 0; i < 24; ++i) {
    disjoint.push_back(
        SubCell(100 + i, "part", i * 0.5, (i + 1) * 0.5));
  }
  const auto added =
      SubdivideCell(&ok_graph, CellId(5), LayerId(0), std::move(disjoint));
  ASSERT_TRUE(added.ok()) << added.status();
  EXPECT_EQ(*added, 48);

  MultiLayerGraph bad_graph = BaseGraph();
  std::vector<CellSpace> overlapping;
  for (int i = 0; i < 24; ++i) {
    overlapping.push_back(
        SubCell(100 + i, "part", i * 0.5, (i + 1) * 0.5));
  }
  // Widen one tail cell into its neighbor's interior.
  overlapping[22] = SubCell(122, "wide", 11.0, 11.8);
  const auto rejected =
      SubdivideCell(&bad_graph, CellId(5), LayerId(0),
                    std::move(overlapping));
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SubdivisionTest, MixedGeometryAndSymbolicSubCellsPrune) {
  // Geometry-free sub-cells are skipped by the index while the
  // geometry-bearing ones are still checked pairwise.
  MultiLayerGraph g = BaseGraph();
  const auto rejected = SubdivideCell(
      &g, CellId(5), LayerId(0),
      {SubCell(15, "5a", 0, 7),
       CellSpace(CellId(99), "symbolic", CellClass::kRoom),
       SubCell(16, "5b", 5, 12)});
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SubdivisionTest, SubCellsWithoutGeometryAreAcceptedSymbolically) {
  MultiLayerGraph g = BaseGraph();
  const auto added = SubdivideCell(
      &g, CellId(4), LayerId(0),
      {CellSpace(CellId(40), "4-north", CellClass::kRoom),
       CellSpace(CellId(41), "4-south", CellClass::kRoom)});
  ASSERT_TRUE(added.ok()) << added.status();
  EXPECT_EQ(g.CandidateStates(CellId(4), LayerId(0)).size(), 2u);
}

TEST(ReplicationTest, CopiesCellWithEqualJointEdge) {
  MultiLayerGraph g = BaseGraph();
  const auto replica = ReplicateCell(&g, CellId(5), LayerId(0), CellId(105));
  ASSERT_TRUE(replica.ok()) << replica.status();
  const CellSpace* copy = g.FindCell(CellId(105)).value();
  EXPECT_EQ(copy->name(), "hall 5");
  EXPECT_EQ(copy->cell_class(), CellClass::kHall);
  EXPECT_TRUE(copy->AttributeEquals("theme", "Italian Paintings"));
  EXPECT_EQ(*copy->floor_level(), 1);
  ASSERT_TRUE(copy->has_geometry());
  EXPECT_DOUBLE_EQ(copy->geometry()->Area(), 48);
  // The joint edge is "equal" in both directions.
  bool found = false;
  for (const JointEdge& e : g.JointEdgesOf(CellId(105))) {
    if (e.to == CellId(5)) {
      EXPECT_EQ(e.relation, TopologicalRelation::kEqual);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ReplicationTest, RejectsSameLayerAndDuplicates) {
  MultiLayerGraph g = BaseGraph();
  EXPECT_FALSE(ReplicateCell(&g, CellId(5), LayerId(1), CellId(105)).ok());
  ASSERT_TRUE(ReplicateCell(&g, CellId(5), LayerId(0), CellId(105)).ok());
  EXPECT_FALSE(ReplicateCell(&g, CellId(4), LayerId(0), CellId(105)).ok());
  EXPECT_FALSE(ReplicateCell(nullptr, CellId(5), LayerId(0), CellId(106)).ok());
}

}  // namespace
}  // namespace sitm::indoor
