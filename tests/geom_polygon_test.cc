#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "geom/coverage.h"
#include "geom/grid_index.h"
#include "geom/polygon.h"
#include "geom/relate.h"

namespace sitm::geom {
namespace {

Polygon LShape() {
  // Concave hexagon: a 4x4 square minus its upper-right 2x2 quadrant.
  return Polygon({{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
}

TEST(PolygonTest, RectangleFactoryNormalizesCorners) {
  const Polygon r = Polygon::Rectangle(3, 4, 1, 2);
  EXPECT_DOUBLE_EQ(r.Area(), 4);
  EXPECT_TRUE(r.IsCounterClockwise());
}

TEST(PolygonTest, AreaAndPerimeter) {
  const Polygon r = Polygon::Rectangle(0, 0, 4, 3);
  EXPECT_DOUBLE_EQ(r.Area(), 12);
  EXPECT_DOUBLE_EQ(r.Perimeter(), 14);
  EXPECT_DOUBLE_EQ(LShape().Area(), 12);
}

TEST(PolygonTest, SignedAreaFlipsWithOrientation) {
  Polygon r = Polygon::Rectangle(0, 0, 2, 2);
  EXPECT_GT(r.SignedArea(), 0);
  r.Reverse();
  EXPECT_LT(r.SignedArea(), 0);
  EXPECT_DOUBLE_EQ(r.Area(), 4);
}

TEST(PolygonTest, Centroid) {
  EXPECT_EQ(Polygon::Rectangle(0, 0, 2, 4).Centroid(), (Point{1, 2}));
  // The L-shape centroid is pulled toward the filled corner.
  const Point c = LShape().Centroid();
  EXPECT_LT(c.x, 2);
  EXPECT_LT(c.y, 2);
}

TEST(PolygonTest, BoundsAreTight) {
  const Box b = LShape().bounds();
  EXPECT_DOUBLE_EQ(b.min_x, 0);
  EXPECT_DOUBLE_EQ(b.max_x, 4);
  EXPECT_DOUBLE_EQ(b.max_y, 4);
}

TEST(PolygonTest, Convexity) {
  EXPECT_TRUE(Polygon::Rectangle(0, 0, 1, 1).IsConvex());
  EXPECT_FALSE(LShape().IsConvex());
  EXPECT_TRUE(Polygon({{0, 0}, {2, 0}, {1, 2}}).IsConvex());
}

TEST(PolygonTest, SimpleDetectsBowtie) {
  const Polygon bowtie({{0, 0}, {2, 2}, {2, 0}, {0, 2}});
  EXPECT_FALSE(bowtie.IsSimple());
  EXPECT_FALSE(bowtie.Validate().ok());
}

TEST(PolygonTest, SimpleAcceptsConcave) {
  EXPECT_TRUE(LShape().IsSimple());
  EXPECT_TRUE(LShape().Validate().ok());
}

TEST(PolygonTest, ValidateRejectsDegenerate) {
  EXPECT_FALSE(Polygon({{0, 0}, {1, 1}}).Validate().ok());  // 2 vertices
  EXPECT_FALSE(
      Polygon({{0, 0}, {1, 0}, {2, 0}}).Validate().ok());  // zero area
  EXPECT_FALSE(
      Polygon({{0, 0}, {0, 0}, {1, 1}}).Validate().ok());  // dup vertex
}

TEST(PolygonTest, MakeValidNormalizesToCounterClockwise) {
  auto r = Polygon::MakeValid({{0, 0}, {0, 2}, {2, 2}, {2, 0}});  // clockwise
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->IsCounterClockwise());
  EXPECT_FALSE(Polygon::MakeValid({{0, 0}, {2, 2}, {2, 0}, {0, 2}}).ok());
}

TEST(PolygonTest, LocateInsideBoundaryOutside) {
  const Polygon r = Polygon::Rectangle(0, 0, 4, 4);
  EXPECT_EQ(r.Locate({2, 2}), Location::kInside);
  EXPECT_EQ(r.Locate({0, 2}), Location::kBoundary);
  EXPECT_EQ(r.Locate({4, 4}), Location::kBoundary);  // corner
  EXPECT_EQ(r.Locate({5, 2}), Location::kOutside);
  EXPECT_EQ(r.Locate({-1, -1}), Location::kOutside);
}

TEST(PolygonTest, LocateConcaveNotch) {
  const Polygon l = LShape();
  EXPECT_EQ(l.Locate({1, 1}), Location::kInside);
  EXPECT_EQ(l.Locate({3, 3}), Location::kOutside);  // in the notch
  EXPECT_EQ(l.Locate({2, 3}), Location::kBoundary);
  EXPECT_EQ(l.Locate({1, 3}), Location::kInside);
}

TEST(PolygonTest, ContainsIncludesBoundary) {
  const Polygon r = Polygon::Rectangle(0, 0, 1, 1);
  EXPECT_TRUE(r.Contains({0.5, 0.5}));
  EXPECT_TRUE(r.Contains({1, 0.5}));
  EXPECT_FALSE(r.Contains({2, 2}));
}

TEST(PolygonTest, InteriorPointIsInside) {
  for (const Polygon& poly :
       {Polygon::Rectangle(0, 0, 1, 1), LShape(),
        Polygon({{0, 0}, {10, 0}, {10, 1}, {1, 1}, {1, 9}, {10, 9}, {10, 10},
                 {0, 10}})}) {  // C-shape whose centroid may fall outside
    const auto p = poly.InteriorPoint();
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(poly.Locate(*p), Location::kInside) << "at " << p->x;
  }
}

TEST(PolygonTest, InteriorPointFailsOnInvalid) {
  EXPECT_FALSE(Polygon({{0, 0}, {1, 0}, {2, 0}}).InteriorPoint().ok());
}

TEST(PolygonTest, TranslatedPreservesShape) {
  const Polygon t = LShape().Translated(10, -5);
  EXPECT_DOUBLE_EQ(t.Area(), 12);
  EXPECT_EQ(t.Locate({11, -4}), Location::kInside);
}

TEST(PolygonTest, ScaledAboutCentroidScalesArea) {
  const Polygon big = Polygon::Rectangle(0, 0, 2, 2).ScaledAboutCentroid(2);
  EXPECT_DOUBLE_EQ(big.Area(), 16);
  EXPECT_EQ(big.Centroid(), (Point{1, 1}));
  const Polygon small = Polygon::Rectangle(0, 0, 2, 2).ScaledAboutCentroid(0.5);
  EXPECT_DOUBLE_EQ(small.Area(), 1);
}

TEST(GridIndexTest, BuildRejectsBadInput) {
  EXPECT_FALSE(GridIndex::Build({}, 8).ok());
  EXPECT_FALSE(GridIndex::Build({Polygon::Rectangle(0, 0, 1, 1)}, 0).ok());
  EXPECT_FALSE(
      GridIndex::Build({Polygon({{0, 0}, {1, 0}, {2, 0}})}, 8).ok());
}

TEST(GridIndexTest, LocateFindsContainingPolygons) {
  std::vector<Polygon> cells;
  for (int i = 0; i < 4; ++i) {
    cells.push_back(Polygon::Rectangle(i * 10.0, 0, i * 10.0 + 10, 10));
  }
  const auto index = GridIndex::Build(std::move(cells), 16);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->Locate({15, 5}), (std::vector<std::size_t>{1}));
  EXPECT_EQ(index->LocateFirst({35, 5}).value(), 3u);
  EXPECT_TRUE(index->Locate({100, 100}).empty());
  EXPECT_FALSE(index->LocateFirst({-5, 5}).ok());
}

TEST(GridIndexTest, BoundaryPointsHitBothNeighbors) {
  const auto index = GridIndex::Build(
      {Polygon::Rectangle(0, 0, 10, 10), Polygon::Rectangle(10, 0, 20, 10)},
      8);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->Locate({10, 5}).size(), 2u);  // shared wall
}

TEST(GridIndexTest, CandidatesFiltersByBoundingBox) {
  const auto index = GridIndex::Build(
      {Polygon::Rectangle(0, 0, 10, 10), Polygon::Rectangle(50, 50, 60, 60)},
      8);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->Candidates(Box(1, 1, 2, 2)),
            (std::vector<std::size_t>{0}));
  EXPECT_EQ(index->Candidates(Box(0, 0, 60, 60)).size(), 2u);
  EXPECT_TRUE(index->Candidates(Box(200, 200, 300, 300)).empty());
}

TEST(CoverageTest, FullPartitionCoversCompletely) {
  Rng rng(5);
  const auto report = EstimateCoverage(
      Polygon::Rectangle(0, 0, 10, 10),
      {Polygon::Rectangle(0, 0, 5, 10), Polygon::Rectangle(5, 0, 10, 10)},
      2000, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->coverage_ratio, 1.0);
  EXPECT_NEAR(report->overlap_ratio, 0.0, 1e-9);
}

TEST(CoverageTest, PartialCoverageEstimatesFraction) {
  Rng rng(5);
  const auto report =
      EstimateCoverage(Polygon::Rectangle(0, 0, 10, 10),
                       {Polygon::Rectangle(0, 0, 5, 10)}, 4000, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->coverage_ratio, 0.5, 0.03);
}

TEST(CoverageTest, DetectsSiblingOverlap) {
  Rng rng(5);
  const auto report = EstimateCoverage(
      Polygon::Rectangle(0, 0, 10, 10),
      {Polygon::Rectangle(0, 0, 6, 10), Polygon::Rectangle(4, 0, 10, 10)},
      4000, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->overlap_ratio, 0.2, 0.03);
}

TEST(CoverageTest, NoChildrenMeansZeroCoverage) {
  Rng rng(5);
  const auto report =
      EstimateCoverage(Polygon::Rectangle(0, 0, 1, 1), {}, 100, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->coverage_ratio, 0.0);
}

TEST(CoverageTest, DeterministicForFixedSeed) {
  Rng rng_a(99);
  Rng rng_b(99);
  const std::vector<Polygon> children{Polygon::Rectangle(0, 0, 3, 10)};
  const auto a = EstimateCoverage(Polygon::Rectangle(0, 0, 10, 10), children,
                                  500, &rng_a);
  const auto b = EstimateCoverage(Polygon::Rectangle(0, 0, 10, 10), children,
                                  500, &rng_b);
  EXPECT_DOUBLE_EQ(a->coverage_ratio, b->coverage_ratio);
}

TEST(CoverageTest, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_FALSE(
      EstimateCoverage(Polygon::Rectangle(0, 0, 1, 1), {}, 0, &rng).ok());
  EXPECT_FALSE(
      EstimateCoverage(Polygon::Rectangle(0, 0, 1, 1), {}, 10, nullptr).ok());
  EXPECT_FALSE(EstimateCoverage(Polygon({{0, 0}, {1, 0}, {2, 0}}), {}, 10,
                                &rng)
                   .ok());
}

TEST(PolygonTest, ValidateRejectsNonFiniteVertices) {
  // Regression (UBSan float-cast-overflow): NaN fails every comparison,
  // so a NaN-vertex polygon used to pass the zero-area check and reach
  // GridIndex::Build's float->int cell casts.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const Polygon with_nan({{0, 0}, {4, nan}, {4, 4}});
  EXPECT_TRUE(with_nan.Validate().Is(StatusCode::kInvalidArgument));
  const Polygon with_inf({{0, 0}, {inf, 0}, {4, 4}});
  EXPECT_TRUE(with_inf.Validate().Is(StatusCode::kInvalidArgument));
  const Polygon with_neg_inf({{0, 0}, {4, 0}, {-inf, 4}});
  EXPECT_TRUE(with_neg_inf.Validate().Is(StatusCode::kInvalidArgument));
}

TEST(PolygonTest, ValidateRejectsFiniteCoordinatesThatOverflow) {
  // Finite vertices near ±DBL_MAX overflow the shoelace products and the
  // bounding-box extent; downstream grid math would divide by inf and
  // cast the resulting NaN. Validation must stop them at the gate.
  const double huge = std::numeric_limits<double>::max();
  const Polygon spanning({{-huge, 0}, {huge, 0}, {0, huge}});
  EXPECT_TRUE(spanning.Validate().Is(StatusCode::kInvalidArgument));
}

TEST(PolygonTest, GridIndexBuildRejectsNonFinitePolygons) {
  // End-to-end pin: the index (whose CellX/CellY casts double to int)
  // must refuse the polygon rather than compute NaN cell coordinates.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<Polygon> polys;
  polys.push_back(Polygon::Rectangle(0, 0, 2, 2));
  polys.emplace_back(
      std::vector<Point>{{0, 0}, {4, nan}, {4, 4}});
  const Result<GridIndex> index = GridIndex::Build(std::move(polys), 8);
  ASSERT_FALSE(index.ok());
  EXPECT_TRUE(index.status().Is(StatusCode::kInvalidArgument));
}

}  // namespace
}  // namespace sitm::geom
