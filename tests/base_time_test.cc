#include <gtest/gtest.h>

#include "base/time.h"

namespace sitm {
namespace {

TEST(DurationTest, Factories) {
  EXPECT_EQ(Duration::Seconds(90).seconds(), 90);
  EXPECT_EQ(Duration::Minutes(2).seconds(), 120);
  EXPECT_EQ(Duration::Hours(3).seconds(), 10800);
  EXPECT_EQ(Duration::Zero().seconds(), 0);
}

TEST(DurationTest, UnitConversions) {
  EXPECT_DOUBLE_EQ(Duration::Seconds(90).minutes(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::Seconds(5400).hours(), 1.5);
}

TEST(DurationTest, Arithmetic) {
  EXPECT_EQ(Duration::Minutes(2) + Duration::Seconds(5),
            Duration::Seconds(125));
  EXPECT_EQ(Duration::Minutes(2) - Duration::Seconds(5),
            Duration::Seconds(115));
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::Seconds(1), Duration::Seconds(2));
  EXPECT_GT(Duration::Minutes(1), Duration::Seconds(59));
  EXPECT_LE(Duration::Zero(), Duration::Zero());
  EXPECT_GE(Duration::Hours(1), Duration::Minutes(60));
}

TEST(DurationTest, ToStringMatchesPaperNotation) {
  // §4.1 reports 7 h 41 min 37 s as the longest visit.
  EXPECT_EQ(Duration(7 * 3600 + 41 * 60 + 37).ToString(), "7:41:37");
  EXPECT_EQ(Duration::Zero().ToString(), "0:00:00");
  EXPECT_EQ(Duration::Seconds(-3661).ToString(), "-1:01:01");
  EXPECT_EQ(Duration::Hours(100).ToString(), "100:00:00");
}

TEST(TimestampTest, FromCivilEpoch) {
  const auto t = Timestamp::FromCivil(1970, 1, 1, 0, 0, 0);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->seconds_since_epoch(), 0);
}

TEST(TimestampTest, FromCivilKnownDate) {
  // 2017-01-19 is the dataset collection start (§4.1).
  const auto t = Timestamp::FromCivil(2017, 1, 19, 0, 0, 0);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->seconds_since_epoch(), 1484784000);
}

TEST(TimestampTest, FromCivilValidatesMonth) {
  EXPECT_FALSE(Timestamp::FromCivil(2017, 0, 1, 0, 0, 0).ok());
  EXPECT_FALSE(Timestamp::FromCivil(2017, 13, 1, 0, 0, 0).ok());
}

TEST(TimestampTest, FromCivilValidatesDayPerMonth) {
  EXPECT_FALSE(Timestamp::FromCivil(2017, 2, 29, 0, 0, 0).ok());
  EXPECT_TRUE(Timestamp::FromCivil(2016, 2, 29, 0, 0, 0).ok());  // leap
  EXPECT_TRUE(Timestamp::FromCivil(2000, 2, 29, 0, 0, 0).ok());  // 400-year
  EXPECT_FALSE(Timestamp::FromCivil(1900, 2, 29, 0, 0, 0).ok());  // 100-year
  EXPECT_FALSE(Timestamp::FromCivil(2017, 4, 31, 0, 0, 0).ok());
}

TEST(TimestampTest, FromCivilValidatesTimeOfDay) {
  EXPECT_FALSE(Timestamp::FromCivil(2017, 1, 1, 24, 0, 0).ok());
  EXPECT_FALSE(Timestamp::FromCivil(2017, 1, 1, 0, 60, 0).ok());
  EXPECT_FALSE(Timestamp::FromCivil(2017, 1, 1, 0, 0, 60).ok());
  EXPECT_FALSE(Timestamp::FromCivil(2017, 1, 1, -1, 0, 0).ok());
}

TEST(TimestampTest, ParseAndToStringRoundTrip) {
  const auto t = Timestamp::Parse("2017-05-29 14:28:00");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->ToString(), "2017-05-29 14:28:00");
}

TEST(TimestampTest, ParseAcceptsIsoT) {
  const auto t = Timestamp::Parse("2017-05-29T14:28:00");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->ToString(), "2017-05-29 14:28:00");
}

TEST(TimestampTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Timestamp::Parse("").ok());
  EXPECT_FALSE(Timestamp::Parse("2017-05-29").ok());
  EXPECT_FALSE(Timestamp::Parse("2017/05/29 14:28:00").ok());
  EXPECT_FALSE(Timestamp::Parse("2017-05-29 14-28-00").ok());
  EXPECT_FALSE(Timestamp::Parse("2017-05-29 14:28:0x").ok());
  EXPECT_FALSE(Timestamp::Parse("2017-13-29 14:28:00").ok());
}

TEST(TimestampTest, TimeOfDayString) {
  const auto t = Timestamp::FromCivil(2017, 2, 3, 17, 30, 21);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->TimeOfDayString(), "17:30:21");
}

TEST(TimestampTest, Arithmetic) {
  const Timestamp t = *Timestamp::FromCivil(2017, 1, 19, 11, 30, 0);
  const Timestamp u = t + Duration::Minutes(2) + Duration::Seconds(35);
  EXPECT_EQ(u.TimeOfDayString(), "11:32:35");
  EXPECT_EQ((u - t).seconds(), 155);
  EXPECT_EQ(u - Duration::Seconds(155), t);
}

TEST(TimestampTest, ComparisonOperators) {
  const Timestamp a = *Timestamp::FromCivil(2017, 1, 19, 0, 0, 0);
  const Timestamp b = a + Duration::Seconds(1);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LE(a, a);
  EXPECT_GE(b, b);
  EXPECT_NE(a, b);
}

TEST(TimestampTest, NegativeTimesFormatCorrectly) {
  const Timestamp before_epoch(-1);
  EXPECT_EQ(before_epoch.ToString(), "1969-12-31 23:59:59");
}

// Property sweep: civil -> epoch -> civil is the identity over a wide
// date range (month ends, leap days, century boundaries).
struct CivilCase {
  int year, month, day;
};

class TimestampRoundTrip : public ::testing::TestWithParam<CivilCase> {};

TEST_P(TimestampRoundTrip, CivilEpochCivil) {
  const CivilCase c = GetParam();
  const auto t = Timestamp::FromCivil(c.year, c.month, c.day, 13, 7, 9);
  ASSERT_TRUE(t.ok());
  char expected[32];
  std::snprintf(expected, sizeof(expected), "%04d-%02d-%02d 13:07:09", c.year,
                c.month, c.day);
  EXPECT_EQ(t->ToString(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Dates, TimestampRoundTrip,
    ::testing::Values(CivilCase{1970, 1, 1}, CivilCase{1999, 12, 31},
                      CivilCase{2000, 1, 1}, CivilCase{2000, 2, 29},
                      CivilCase{2016, 2, 29}, CivilCase{2017, 1, 19},
                      CivilCase{2017, 5, 29}, CivilCase{2024, 2, 29},
                      CivilCase{2026, 6, 9}, CivilCase{2100, 3, 1},
                      CivilCase{1969, 7, 20}, CivilCase{1904, 2, 29}));

}  // namespace
}  // namespace sitm
