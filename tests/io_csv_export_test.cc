#include <gtest/gtest.h>

#include <cstdio>

#include "io/csv.h"
#include "io/graph_export.h"
#include "io/indoorgml.h"

namespace sitm::io {
namespace {

TEST(CsvParseTest, SimpleTable) {
  const auto table = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][2], "6");
}

TEST(CsvParseTest, QuotedFieldsAndEscapes) {
  const auto table =
      ParseCsv("name,notes\n\"Salle, des Etats\",\"said \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "Salle, des Etats");
  EXPECT_EQ(table->rows[0][1], "said \"hi\"");
}

TEST(CsvParseTest, QuotedNewlines) {
  const auto table = ParseCsv("a,b\n\"line1\nline2\",x\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "line1\nline2");
}

TEST(CsvParseTest, CrLfLineEndings) {
  const auto table = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][1], "2");
}

TEST(CsvParseTest, MissingTrailingNewline) {
  const auto table = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0][1], "2");
}

TEST(CsvParseTest, ArityMismatchIsCorruption) {
  EXPECT_EQ(ParseCsv("a,b\n1,2,3\n").status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(ParseCsv("a,b\n1\n").status().code(), StatusCode::kCorruption);
}

TEST(CsvParseTest, UnterminatedQuoteIsCorruption) {
  EXPECT_EQ(ParseCsv("a\n\"oops\n").status().code(),
            StatusCode::kCorruption);
}

// --- Regression pins for the io/ hardening pass: malformed input must
// parse or return Corruption, never silently reinterpret or drop rows.

TEST(CsvParseTest, InputEndingInsideQuotedFieldIsCorruption) {
  // EOF in the middle of a quoted field, with and without preceding
  // content, including right after an escaped quote.
  EXPECT_EQ(ParseCsv("a,b\n1,\"unclosed").status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(ParseCsv("\"").status().code(), StatusCode::kCorruption);
  EXPECT_EQ(ParseCsv("a\n\"x\"\"").status().code(), StatusCode::kCorruption);
}

TEST(CsvParseTest, LoneQuoteInUnquotedFieldIsCorruption) {
  // A '"' that does not open the field is malformed; the old lenient
  // parser re-entered quoted mode mid-field and swallowed the rest of
  // the line (including the record separator).
  EXPECT_EQ(ParseCsv("a,b\n1,sa\"y\n").status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(ParseCsv("a\nx\"\n").status().code(), StatusCode::kCorruption);
  // Data after a closing quote is equally malformed.
  EXPECT_EQ(ParseCsv("a\n\"x\" y\n").status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(ParseCsv("a\n\"x\"\"y\"z\n").status().code(),
            StatusCode::kCorruption);
}

TEST(CsvParseTest, FinalRecordWithoutTrailingNewlineNeverDropsRows) {
  // Plain last field.
  const auto plain = ParseCsv("a,b\n1,2\n3,4");
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(plain->rows.size(), 2u);
  EXPECT_EQ(plain->rows[1], (std::vector<std::string>{"3", "4"}));
  // Quoted last field (incl. an escaped quote and an empty one).
  const auto quoted = ParseCsv("a,b\n1,\"x,y\"");
  ASSERT_TRUE(quoted.ok());
  ASSERT_EQ(quoted->rows.size(), 1u);
  EXPECT_EQ(quoted->rows[0][1], "x,y");
  const auto escaped = ParseCsv("a\n\"say \"\"hi\"\"\"");
  ASSERT_TRUE(escaped.ok());
  EXPECT_EQ(escaped->rows[0][0], "say \"hi\"");
  const auto empty_quoted = ParseCsv("a,b\n1,\"\"");
  ASSERT_TRUE(empty_quoted.ok());
  EXPECT_EQ(empty_quoted->rows[0][1], "");
  // Trailing comma: the final empty field still counts.
  const auto trailing_comma = ParseCsv("a,b\n1,");
  ASSERT_TRUE(trailing_comma.ok());
  EXPECT_EQ(trailing_comma->rows[0],
            (std::vector<std::string>{"1", ""}));
  // Header-only input without a newline.
  const auto header_only = ParseCsv("a,b");
  ASSERT_TRUE(header_only.ok());
  EXPECT_EQ(header_only->header, (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(header_only->rows.empty());
}

TEST(CsvParseTest, EmptyInput) {
  const auto table = ParseCsv("");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->header.empty());
  EXPECT_TRUE(table->rows.empty());
}

TEST(CsvWriteTest, RoundTrip) {
  CsvTable table;
  table.header = {"visitor", "zone", "note"};
  table.rows = {{"1", "60887", "has, comma"},
                {"2", "60890", "has \"quote\""}};
  const auto parsed = ParseCsv(WriteCsv(table));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, table.header);
  EXPECT_EQ(parsed->rows, table.rows);
}

TEST(CsvTableTest, ColumnIndex) {
  CsvTable table;
  table.header = {"a", "b"};
  EXPECT_EQ(table.ColumnIndex("b").value(), 1u);
  EXPECT_FALSE(table.ColumnIndex("z").ok());
}

TEST(CsvQuoteTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvQuote("plain"), "plain");
  EXPECT_EQ(CsvQuote("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvQuote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvQuote("two\nlines"), "\"two\nlines\"");
}

TEST(FileIoTest, WriteReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/sitm_io_test.csv";
  ASSERT_TRUE(WriteFile(path, "a,b\n1,2\n").ok());
  const auto content = ReadFile(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(FileIoTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadFile("/nonexistent/dir/file.csv").status().code(),
            StatusCode::kIOError);
  EXPECT_EQ(WriteFile("/nonexistent/dir/file.csv", "x").code(),
            StatusCode::kIOError);
}

// ---- Graph / trajectory exports.

indoor::MultiLayerGraph SmallGraph() {
  indoor::MultiLayerGraph g;
  indoor::SpaceLayer floors(LayerId(1), "Floor",
                            indoor::LayerKind::kTopographic);
  indoor::CellSpace floor(CellId(10), "Floor 0", indoor::CellClass::kFloor);
  floor.set_floor_level(0);
  floor.set_geometry(geom::Polygon::Rectangle(0, 0, 10, 10));
  EXPECT_TRUE(floors.mutable_graph().AddCell(std::move(floor)).ok());
  indoor::SpaceLayer rooms(LayerId(0), "Room",
                           indoor::LayerKind::kTopographic);
  for (int r : {100, 101}) {
    indoor::CellSpace room(CellId(r), "Room " + std::to_string(r),
                           indoor::CellClass::kRoom);
    room.SetAttribute("theme", "Egyptian Antiquities");
    EXPECT_TRUE(rooms.mutable_graph().AddCell(std::move(room)).ok());
  }
  EXPECT_TRUE(rooms.mutable_graph()
                  .AddBoundary({BoundaryId(9), "door9",
                                indoor::BoundaryType::kDoor})
                  .ok());
  EXPECT_TRUE(rooms.mutable_graph()
                  .AddSymmetricEdge(CellId(100), CellId(101),
                                    indoor::EdgeType::kAccessibility,
                                    BoundaryId(9))
                  .ok());
  EXPECT_TRUE(g.AddLayer(std::move(floors)).ok());
  EXPECT_TRUE(g.AddLayer(std::move(rooms)).ok());
  for (int r : {100, 101}) {
    EXPECT_TRUE(g.AddJointEdge(CellId(10), CellId(r),
                               qsr::TopologicalRelation::kCovers)
                    .ok());
  }
  return g;
}

TEST(DotExportTest, NrgContainsNodesAndEdges) {
  const indoor::MultiLayerGraph g = SmallGraph();
  const std::string dot =
      NrgToDot(g.FindLayer(LayerId(0)).value()->graph(), "rooms");
  EXPECT_NE(dot.find("digraph rooms"), std::string::npos);
  EXPECT_NE(dot.find("c100"), std::string::npos);
  EXPECT_NE(dot.find("c100 -> c101"), std::string::npos);
}

TEST(DotExportTest, MultiLayerHasClustersAndJointEdges) {
  const std::string dot = MultiLayerGraphToDot(SmallGraph());
  EXPECT_NE(dot.find("subgraph cluster_1"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("label=\"covers\""), std::string::npos);
}

TEST(JsonExportTest, GraphStructureIsParseable) {
  const JsonValue json = MultiLayerGraphToJson(SmallGraph());
  const auto reparsed = JsonValue::Parse(json.Dump());
  ASSERT_TRUE(reparsed.ok());
  const auto layers = reparsed->Get("layers").value()->AsArray();
  ASSERT_TRUE(layers.ok());
  EXPECT_EQ((*layers)->size(), 2u);
  const auto joints = reparsed->Get("jointEdges").value()->AsArray();
  ASSERT_TRUE(joints.ok());
  EXPECT_EQ((*joints)->size(), 4u);  // 2 covers + 2 converses
  // Attributes and floor levels survive.
  const std::string dump = json.Dump();
  EXPECT_NE(dump.find("Egyptian Antiquities"), std::string::npos);
  EXPECT_NE(dump.find("\"floor\":0"), std::string::npos);
}

core::SemanticTrajectory SampleTrajectory() {
  core::PresenceInterval p1;
  p1.cell = CellId(100);
  p1.interval = *qsr::TimeInterval::Make(
      *Timestamp::FromCivil(2017, 2, 1, 11, 30, 0),
      *Timestamp::FromCivil(2017, 2, 1, 11, 32, 35));
  core::PresenceInterval p2;
  p2.cell = CellId(101);
  p2.transition = BoundaryId(9);
  p2.interval = *qsr::TimeInterval::Make(
      *Timestamp::FromCivil(2017, 2, 1, 11, 32, 40),
      *Timestamp::FromCivil(2017, 2, 1, 11, 40, 0));
  p2.annotations.Add(core::AnnotationKind::kGoal, "visit");
  p2.inferred = true;
  return core::SemanticTrajectory(
      TrajectoryId(3), ObjectId(7), core::Trace({p1, p2}),
      core::AnnotationSet{{core::AnnotationKind::kActivity, "visit"}});
}

TEST(TrajectoryJsonTest, RoundTripPreservesEverything) {
  const core::SemanticTrajectory original = SampleTrajectory();
  const JsonValue json = TrajectoryToJson(original);
  const auto restored = TrajectoryFromJson(json);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->id(), original.id());
  EXPECT_EQ(restored->object(), original.object());
  EXPECT_EQ(restored->annotations(), original.annotations());
  ASSERT_EQ(restored->trace().size(), original.trace().size());
  for (std::size_t i = 0; i < original.trace().size(); ++i) {
    EXPECT_EQ(restored->trace().at(i), original.trace().at(i)) << i;
  }
}

TEST(TrajectoryJsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(TrajectoryFromJson(JsonValue(1)).ok());
  JsonValue missing{JsonValue::Object{}};
  ASSERT_TRUE(missing.Set("id", 1).ok());
  EXPECT_FALSE(TrajectoryFromJson(missing).ok());
}

TEST(IndoorGmlExportTest, ContainsExpectedElements) {
  const std::string xml = ExportIndoorGml(SmallGraph());
  EXPECT_NE(xml.find("<core:IndoorFeatures"), std::string::npos);
  EXPECT_NE(xml.find("<core:SpaceLayer gml:id=\"L0\""), std::string::npos);
  EXPECT_NE(xml.find("<core:State gml:id=\"S100\""), std::string::npos);
  EXPECT_NE(xml.find("<core:Transition type=\"accessibility\""),
            std::string::npos);
  EXPECT_NE(xml.find("typeOfTopoExpression=\"covers\""), std::string::npos);
  EXPECT_NE(xml.find("<core:cellSpaceGeometry>"), std::string::npos);
}

TEST(XmlEscapeTest, EscapesMarkup) {
  EXPECT_EQ(XmlEscape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

}  // namespace
}  // namespace sitm::io
