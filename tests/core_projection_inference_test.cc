#include <gtest/gtest.h>

#include "core/inference.h"
#include "core/projection.h"

namespace sitm::core {
namespace {

using indoor::CellClass;
using indoor::CellSpace;
using indoor::EdgeType;
using indoor::LayerHierarchy;
using indoor::LayerKind;
using indoor::MultiLayerGraph;
using indoor::SpaceLayer;

PresenceInterval Pi(int cell, std::int64_t start, std::int64_t end,
                    AnnotationSet annotations = {}) {
  PresenceInterval p;
  p.cell = CellId(cell);
  p.interval = *qsr::TimeInterval::Make(Timestamp(start), Timestamp(end));
  p.annotations = std::move(annotations);
  return p;
}

SemanticTrajectory Traj(Trace trace) {
  return SemanticTrajectory(TrajectoryId(1), ObjectId(7), std::move(trace),
                            AnnotationSet{{AnnotationKind::kActivity,
                                           "visit"}});
}

// Floors {10, 11}; rooms 100, 101 on floor 10 and 110 on floor 11.
MultiLayerGraph TwoFloorGraph() {
  MultiLayerGraph g;
  SpaceLayer floors(LayerId(1), "Floor", LayerKind::kTopographic);
  for (int f : {10, 11}) {
    EXPECT_TRUE(floors.mutable_graph()
                    .AddCell(CellSpace(CellId(f), "floor", CellClass::kFloor))
                    .ok());
  }
  SpaceLayer rooms(LayerId(0), "Room", LayerKind::kTopographic);
  for (int r : {100, 101, 110}) {
    EXPECT_TRUE(rooms.mutable_graph()
                    .AddCell(CellSpace(CellId(r), "room", CellClass::kRoom))
                    .ok());
  }
  EXPECT_TRUE(g.AddLayer(std::move(floors)).ok());
  EXPECT_TRUE(g.AddLayer(std::move(rooms)).ok());
  for (auto [floor, room] :
       {std::pair{10, 100}, {10, 101}, {11, 110}}) {
    EXPECT_TRUE(g.AddJointEdge(CellId(floor), CellId(room),
                               qsr::TopologicalRelation::kCovers)
                    .ok());
  }
  return g;
}

TEST(ProjectionTest, MergesConsecutiveSameParentTuples) {
  const MultiLayerGraph g = TwoFloorGraph();
  const auto h = LayerHierarchy::Build(&g, {LayerId(1), LayerId(0)});
  ASSERT_TRUE(h.ok());
  const SemanticTrajectory t = Traj(Trace(
      {Pi(100, 0, 100), Pi(101, 120, 300), Pi(110, 320, 400),
       Pi(101, 420, 500)}));
  const auto projected = ProjectTrajectory(t, *h, 0);
  ASSERT_TRUE(projected.ok()) << projected.status();
  const Trace& trace = projected->trace();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.at(0).cell, CellId(10));
  EXPECT_EQ(trace.at(0).start(), Timestamp(0));
  EXPECT_EQ(trace.at(0).end(), Timestamp(300));  // gap absorbed
  EXPECT_EQ(trace.at(1).cell, CellId(11));
  EXPECT_EQ(trace.at(2).cell, CellId(10));
  EXPECT_TRUE(projected->Validate().ok());
}

TEST(ProjectionTest, IdentityAtOwnLevel) {
  const MultiLayerGraph g = TwoFloorGraph();
  const auto h = LayerHierarchy::Build(&g, {LayerId(1), LayerId(0)});
  ASSERT_TRUE(h.ok());
  const SemanticTrajectory t =
      Traj(Trace({Pi(100, 0, 100), Pi(101, 120, 300)}));
  const auto projected = ProjectTrajectory(t, *h, 1);
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->trace().size(), 2u);
  EXPECT_EQ(projected->trace().at(0).cell, CellId(100));
}

TEST(ProjectionTest, UnionsAnnotationsOfMergedTuples) {
  const MultiLayerGraph g = TwoFloorGraph();
  const auto h = LayerHierarchy::Build(&g, {LayerId(1), LayerId(0)});
  ASSERT_TRUE(h.ok());
  const SemanticTrajectory t = Traj(
      Trace({Pi(100, 0, 100, {{AnnotationKind::kGoal, "a"}}),
             Pi(101, 120, 300, {{AnnotationKind::kGoal, "b"}})}));
  const auto projected = ProjectTrajectory(t, *h, 0);
  ASSERT_TRUE(projected.ok());
  ASSERT_EQ(projected->trace().size(), 1u);
  EXPECT_TRUE(projected->trace().at(0).annotations.Contains(
      AnnotationKind::kGoal, "a"));
  EXPECT_TRUE(projected->trace().at(0).annotations.Contains(
      AnnotationKind::kGoal, "b"));
}

TEST(ProjectionTest, InferredOnlyWhenAllSourcesInferred) {
  const MultiLayerGraph g = TwoFloorGraph();
  const auto h = LayerHierarchy::Build(&g, {LayerId(1), LayerId(0)});
  ASSERT_TRUE(h.ok());
  Trace trace({Pi(100, 0, 100), Pi(101, 120, 300)});
  trace.mutable_intervals()[0].inferred = true;
  const auto partially = ProjectTrace(trace, *h, 0);
  ASSERT_TRUE(partially.ok());
  EXPECT_FALSE(partially->at(0).inferred);
  trace.mutable_intervals()[1].inferred = true;
  const auto fully = ProjectTrace(trace, *h, 0);
  ASSERT_TRUE(fully.ok());
  EXPECT_TRUE(fully->at(0).inferred);
}

TEST(ProjectionTest, FailsOnCellsOutsideHierarchy) {
  const MultiLayerGraph g = TwoFloorGraph();
  const auto h = LayerHierarchy::Build(&g, {LayerId(1), LayerId(0)});
  ASSERT_TRUE(h.ok());
  const SemanticTrajectory t = Traj(Trace({Pi(999, 0, 100)}));
  EXPECT_FALSE(ProjectTrajectory(t, *h, 0).ok());
  // Rolling a floor-level trace "down" to rooms is not possible.
  const SemanticTrajectory floors = Traj(Trace({Pi(10, 0, 100)}));
  EXPECT_FALSE(ProjectTrajectory(floors, *h, 1).ok());
}

// ---- Inference (the paper's Fig. 6 scenario).

// Zone chain E(87) - P(88) - S(90) - C(91) with a cloakroom dead end
// (89) off P, exactly like the Napoléon -2 topology.
indoor::Nrg Fig6Chain() {
  indoor::Nrg g;
  for (int id : {87, 88, 89, 90, 91}) {
    EXPECT_TRUE(
        g.AddCell(CellSpace(CellId(id), "Zone608" + std::to_string(id),
                            CellClass::kZone))
            .ok());
  }
  for (auto [a, b] : {std::pair{87, 88}, {88, 89}, {88, 90}, {90, 91}}) {
    EXPECT_TRUE(g.AddSymmetricEdge(CellId(a), CellId(b),
                                   EdgeType::kAccessibility)
                    .ok());
  }
  return g;
}

TEST(InferenceTest, InsertsTheHiddenZonePassage) {
  // "although never detected there, the visitor must have passed from
  // Zone60888" — detected in E for [0, 600], then in S at [720, 1500].
  const indoor::Nrg g = Fig6Chain();
  const SemanticTrajectory t =
      Traj(Trace({Pi(87, 0, 600), Pi(90, 720, 1500)}));
  const auto result = InferHiddenPassages(t, g);
  ASSERT_TRUE(result.ok()) << result.status();
  const auto& [completed, report] = *result;
  EXPECT_EQ(report.inserted, 1);
  ASSERT_EQ(completed.trace().size(), 3u);
  const PresenceInterval& hidden = completed.trace().at(1);
  EXPECT_EQ(hidden.cell, CellId(88));
  EXPECT_TRUE(hidden.inferred);
  EXPECT_EQ(hidden.start(), Timestamp(600));
  EXPECT_EQ(hidden.end(), Timestamp(720));
  EXPECT_TRUE(completed.Validate().ok());
  EXPECT_TRUE(completed.trace().ValidateAgainstGraph(g).ok());
}

TEST(InferenceTest, SplitsGapAmongMultipleHiddenCells) {
  // E then C: both P and S must be traversed; the 300 s gap is split.
  const indoor::Nrg g = Fig6Chain();
  const SemanticTrajectory t =
      Traj(Trace({Pi(87, 0, 600), Pi(91, 900, 1000)}));
  const auto result = InferHiddenPassages(t, g);
  ASSERT_TRUE(result.ok());
  const auto& [completed, report] = *result;
  EXPECT_EQ(report.inserted, 2);
  ASSERT_EQ(completed.trace().size(), 4u);
  EXPECT_EQ(completed.trace().at(1).cell, CellId(88));
  EXPECT_EQ(completed.trace().at(2).cell, CellId(90));
  EXPECT_EQ(completed.trace().at(1).interval.length().seconds(), 150);
  EXPECT_EQ(completed.trace().at(2).interval.length().seconds(), 150);
}

TEST(InferenceTest, ZeroGapYieldsZeroLengthInferredStays) {
  const indoor::Nrg g = Fig6Chain();
  const SemanticTrajectory t =
      Traj(Trace({Pi(87, 0, 600), Pi(90, 600, 700)}));
  const auto result = InferHiddenPassages(t, g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->second.inserted, 1);
  EXPECT_EQ(result->first.trace().at(1).duration().seconds(), 0);
}

TEST(InferenceTest, DirectNeighborsNeedNoInference) {
  const indoor::Nrg g = Fig6Chain();
  const SemanticTrajectory t =
      Traj(Trace({Pi(87, 0, 600), Pi(88, 620, 700)}));
  const auto result = InferHiddenPassages(t, g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->second.inserted, 0);
  EXPECT_EQ(result->second.already_consistent, 1);
  EXPECT_EQ(result->first.trace().size(), 2u);
}

TEST(InferenceTest, AmbiguousPathsAreLeftUntouched) {
  // Add a parallel corridor E - X - S: two shortest chains, no certain
  // inference.
  indoor::Nrg g = Fig6Chain();
  ASSERT_TRUE(
      g.AddCell(CellSpace(CellId(95), "corridor", CellClass::kCorridor))
          .ok());
  ASSERT_TRUE(g.AddSymmetricEdge(CellId(87), CellId(95),
                                 EdgeType::kAccessibility)
                  .ok());
  ASSERT_TRUE(g.AddSymmetricEdge(CellId(95), CellId(90),
                                 EdgeType::kAccessibility)
                  .ok());
  const SemanticTrajectory t =
      Traj(Trace({Pi(87, 0, 600), Pi(90, 720, 1500)}));
  const auto result = InferHiddenPassages(t, g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->second.inserted, 0);
  EXPECT_EQ(result->second.ambiguous, 1);
  EXPECT_EQ(result->first.trace().size(), 2u);
}

TEST(InferenceTest, DisconnectedPairsAreCounted) {
  indoor::Nrg g = Fig6Chain();
  ASSERT_TRUE(
      g.AddCell(CellSpace(CellId(99), "island", CellClass::kRoom)).ok());
  const SemanticTrajectory t =
      Traj(Trace({Pi(87, 0, 600), Pi(99, 720, 800)}));
  const auto result = InferHiddenPassages(t, g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->second.disconnected, 1);
}

TEST(InferenceTest, CustomAnnotationsOnInferredTuples) {
  InferenceOptions options;
  options.inferred_annotations =
      AnnotationSet{{AnnotationKind::kGoal, "cloakroomPickup"}};
  const indoor::Nrg g = Fig6Chain();
  const SemanticTrajectory t =
      Traj(Trace({Pi(87, 0, 600), Pi(90, 720, 1500)}));
  const auto result = InferHiddenPassages(t, g, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->first.trace().at(1).annotations.Contains(
      AnnotationKind::kGoal, "cloakroomPickup"));
}

TEST(GapClassificationTest, HolesVsSemanticGaps) {
  // A gap next to an exit zone is intentional (the visitor left); other
  // gaps are accidental holes (§2.2).
  const Trace trace({Pi(87, 0, 600), Pi(88, 800, 1200),
                     Pi(90, 5000, 5600), Pi(88, 9000, 9100)});
  const std::unordered_set<CellId> exits{CellId(90)};
  const auto gaps = ClassifyGaps(trace, Duration::Minutes(5), exits);
  ASSERT_EQ(gaps.size(), 2u);
  // 600 -> 800 is only 200 s < 5 min: not a gap at all.
  EXPECT_EQ(gaps[0].after_index, 1u);
  EXPECT_EQ(gaps[0].kind, GapKind::kSemanticGap);  // next cell is an exit
  EXPECT_EQ(gaps[1].after_index, 2u);
  EXPECT_EQ(gaps[1].kind, GapKind::kSemanticGap);  // previous is an exit
  const auto no_exit_gaps = ClassifyGaps(trace, Duration::Minutes(5), {});
  EXPECT_EQ(no_exit_gaps[0].kind, GapKind::kHole);
}

// --- CellLocator: geometric projection of raw fixes onto a layer.

SpaceLayer GeometricRoomLayer() {
  SpaceLayer rooms(LayerId(0), "Room", LayerKind::kTopographic);
  CellSpace left(CellId(100), "left", indoor::CellClass::kRoom);
  left.set_geometry(geom::Polygon::Rectangle(0, 0, 10, 10));
  CellSpace right(CellId(101), "right", indoor::CellClass::kRoom);
  right.set_geometry(geom::Polygon::Rectangle(10, 0, 20, 10));
  CellSpace symbolic(CellId(102), "no-geom", indoor::CellClass::kRoom);
  EXPECT_TRUE(rooms.mutable_graph().AddCell(std::move(left)).ok());
  EXPECT_TRUE(rooms.mutable_graph().AddCell(std::move(right)).ok());
  EXPECT_TRUE(rooms.mutable_graph().AddCell(std::move(symbolic)).ok());
  return rooms;
}

TEST(CellLocatorTest, LocalizesFixesToCells) {
  const SpaceLayer rooms = GeometricRoomLayer();
  const auto locator = CellLocator::Build(rooms);
  ASSERT_TRUE(locator.ok()) << locator.status();
  EXPECT_EQ(locator->num_cells(), 2u);  // the symbolic cell is skipped
  EXPECT_EQ(*locator->Localize({5, 5}), CellId(100));
  EXPECT_EQ(*locator->Localize({15, 5}), CellId(101));
  // On the shared wall both rooms answer, in layer order.
  EXPECT_EQ(locator->LocalizeAll({10, 5}),
            (std::vector<CellId>{CellId(100), CellId(101)}));
  // A fix outside every region is a localization gap.
  const auto gap = locator->Localize({50, 50});
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.status().code(), StatusCode::kNotFound);
}

TEST(CellLocatorTest, FailsWithoutAnyGeometry) {
  SpaceLayer rooms(LayerId(0), "Room", LayerKind::kTopographic);
  EXPECT_TRUE(rooms.mutable_graph()
                  .AddCell(CellSpace(CellId(1), "bare",
                                     indoor::CellClass::kRoom))
                  .ok());
  const auto locator = CellLocator::Build(rooms);
  ASSERT_FALSE(locator.ok());
  EXPECT_EQ(locator.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CellLocatorTest, UsesAutoResolutionIndex) {
  const SpaceLayer rooms = GeometricRoomLayer();
  const auto locator = CellLocator::Build(rooms);
  ASSERT_TRUE(locator.ok()) << locator.status();
  EXPECT_EQ(locator->index().resolution(),
            geom::GridIndex::AutoResolution(2));
}

TEST(CandidateCellsTest, DelegatesToJointEdges) {
  MultiLayerGraph g = TwoFloorGraph();
  const auto candidates = CandidateCellsAt(g, CellId(10), LayerId(0));
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates->size(), 2u);
  EXPECT_FALSE(CandidateCellsAt(g, CellId(999), LayerId(0)).ok());
  EXPECT_FALSE(CandidateCellsAt(g, CellId(10), LayerId(9)).ok());
  // A cell without joint edges toward the layer: NotFound.
  auto rooms = g.MutableLayer(LayerId(0));
  ASSERT_TRUE((*rooms)
                  ->mutable_graph()
                  .AddCell(CellSpace(CellId(120), "new", CellClass::kRoom))
                  .ok());
  EXPECT_FALSE(CandidateCellsAt(g, CellId(120), LayerId(1)).ok());
}

}  // namespace
}  // namespace sitm::core
