#include <gtest/gtest.h>

#include "base/rng.h"
#include "qsr/interval.h"

namespace sitm::qsr {
namespace {

TimeInterval Iv(std::int64_t start, std::int64_t end) {
  return *TimeInterval::Make(Timestamp(start), Timestamp(end));
}

TEST(TimeIntervalTest, MakeValidates) {
  EXPECT_TRUE(TimeInterval::Make(Timestamp(1), Timestamp(2)).ok());
  EXPECT_TRUE(TimeInterval::Make(Timestamp(2), Timestamp(2)).ok());
  EXPECT_FALSE(TimeInterval::Make(Timestamp(3), Timestamp(2)).ok());
}

TEST(TimeIntervalTest, Accessors) {
  const TimeInterval iv = Iv(10, 40);
  EXPECT_EQ(iv.length().seconds(), 30);
  EXPECT_TRUE(iv.Contains(Timestamp(10)));
  EXPECT_TRUE(iv.Contains(Timestamp(40)));
  EXPECT_FALSE(iv.Contains(Timestamp(41)));
}

TEST(TimeIntervalTest, IntersectionPredicates) {
  EXPECT_TRUE(Iv(0, 10).Intersects(Iv(10, 20)));          // touch
  EXPECT_FALSE(Iv(0, 10).InteriorsIntersect(Iv(10, 20))); // touch only
  EXPECT_TRUE(Iv(0, 10).InteriorsIntersect(Iv(5, 20)));
  EXPECT_FALSE(Iv(0, 10).Intersects(Iv(11, 20)));
  EXPECT_TRUE(Iv(0, 100).Covers(Iv(20, 30)));
  EXPECT_FALSE(Iv(20, 30).Covers(Iv(0, 100)));
}

TEST(AllenTest, AllThirteenRelations) {
  EXPECT_EQ(ClassifyIntervals(Iv(0, 1), Iv(5, 9)), AllenRelation::kBefore);
  EXPECT_EQ(ClassifyIntervals(Iv(5, 9), Iv(0, 1)), AllenRelation::kAfter);
  EXPECT_EQ(ClassifyIntervals(Iv(0, 5), Iv(5, 9)), AllenRelation::kMeets);
  EXPECT_EQ(ClassifyIntervals(Iv(5, 9), Iv(0, 5)), AllenRelation::kMetBy);
  EXPECT_EQ(ClassifyIntervals(Iv(0, 6), Iv(4, 9)), AllenRelation::kOverlaps);
  EXPECT_EQ(ClassifyIntervals(Iv(4, 9), Iv(0, 6)),
            AllenRelation::kOverlappedBy);
  EXPECT_EQ(ClassifyIntervals(Iv(0, 4), Iv(0, 9)), AllenRelation::kStarts);
  EXPECT_EQ(ClassifyIntervals(Iv(0, 9), Iv(0, 4)), AllenRelation::kStartedBy);
  EXPECT_EQ(ClassifyIntervals(Iv(3, 6), Iv(0, 9)), AllenRelation::kDuring);
  EXPECT_EQ(ClassifyIntervals(Iv(0, 9), Iv(3, 6)), AllenRelation::kContains);
  EXPECT_EQ(ClassifyIntervals(Iv(5, 9), Iv(0, 9)), AllenRelation::kFinishes);
  EXPECT_EQ(ClassifyIntervals(Iv(0, 9), Iv(5, 9)),
            AllenRelation::kFinishedBy);
  EXPECT_EQ(ClassifyIntervals(Iv(2, 7), Iv(2, 7)), AllenRelation::kEquals);
}

TEST(AllenTest, InverseIsSymmetricAroundEquals) {
  EXPECT_EQ(AllenInverse(AllenRelation::kBefore), AllenRelation::kAfter);
  EXPECT_EQ(AllenInverse(AllenRelation::kMeets), AllenRelation::kMetBy);
  EXPECT_EQ(AllenInverse(AllenRelation::kEquals), AllenRelation::kEquals);
  for (int i = 0; i < kNumAllenRelations; ++i) {
    const auto r = static_cast<AllenRelation>(i);
    EXPECT_EQ(AllenInverse(AllenInverse(r)), r);
  }
}

TEST(AllenTest, NamesAreDistinct) {
  std::set<std::string_view> names;
  for (int i = 0; i < kNumAllenRelations; ++i) {
    names.insert(AllenRelationName(static_cast<AllenRelation>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumAllenRelations));
}

// Property sweep over random interval pairs: exactly one relation holds,
// and swapping the arguments yields the converse relation.
class AllenPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllenPropertySweep, ConverseCoherentOnRandomPairs) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t a0 = rng.NextInt(0, 20);
    const std::int64_t a1 = a0 + rng.NextInt(0, 10);
    const std::int64_t b0 = rng.NextInt(0, 20);
    const std::int64_t b1 = b0 + rng.NextInt(0, 10);
    const TimeInterval a = Iv(a0, a1);
    const TimeInterval b = Iv(b0, b1);
    EXPECT_EQ(ClassifyIntervals(a, b),
              AllenInverse(ClassifyIntervals(b, a)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllenPropertySweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(MergeIntervalsTest, MergesOverlapsAndDiscreteAdjacency) {
  // [0,5] and [6,9] are contiguous in whole seconds.
  const auto merged = MergeIntervals({Iv(6, 9), Iv(0, 5), Iv(20, 30)});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], Iv(0, 9));
  EXPECT_EQ(merged[1], Iv(20, 30));
}

TEST(MergeIntervalsTest, ContainedIntervalsDisappear) {
  const auto merged = MergeIntervals({Iv(0, 100), Iv(10, 20), Iv(50, 60)});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], Iv(0, 100));
}

TEST(MergeIntervalsTest, EmptyInput) {
  EXPECT_TRUE(MergeIntervals({}).empty());
}

TEST(CoversTimewiseTest, ExactCover) {
  EXPECT_TRUE(CoversTimewise(Iv(0, 10), {Iv(0, 4), Iv(5, 10)}));
}

TEST(CoversTimewiseTest, OverlappingEpisodesCover) {
  // The paper's Fig. 5 situation: overlapping episodes still form a
  // valid segmentation.
  EXPECT_TRUE(CoversTimewise(Iv(0, 10), {Iv(0, 8), Iv(4, 10)}));
}

TEST(CoversTimewiseTest, GapBreaksCover) {
  EXPECT_FALSE(CoversTimewise(Iv(0, 10), {Iv(0, 3), Iv(6, 10)}));
}

TEST(CoversTimewiseTest, PiecesBeyondWholeStillCover) {
  EXPECT_TRUE(CoversTimewise(Iv(5, 10), {Iv(0, 20)}));
}

TEST(CoversTimewiseTest, NoPieces) {
  EXPECT_FALSE(CoversTimewise(Iv(0, 1), {}));
}

TEST(UncoveredGapsTest, FindsExactMissingSeconds) {
  const auto gaps = UncoveredGaps(Iv(0, 20), {Iv(0, 5), Iv(8, 10)});
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], Iv(6, 7));
  EXPECT_EQ(gaps[1], Iv(11, 20));
}

TEST(UncoveredGapsTest, SingleMissingSecondIsZeroLengthGap) {
  const auto gaps = UncoveredGaps(Iv(0, 10), {Iv(0, 4), Iv(6, 10)});
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], Iv(5, 5));
}

TEST(UncoveredGapsTest, FullCoverYieldsNoGaps) {
  EXPECT_TRUE(UncoveredGaps(Iv(0, 10), {Iv(0, 10)}).empty());
  EXPECT_TRUE(UncoveredGaps(Iv(0, 10), {Iv(0, 6), Iv(7, 10)}).empty());
}

TEST(UncoveredGapsTest, NothingCoveredIsOneBigGap) {
  const auto gaps = UncoveredGaps(Iv(3, 9), {});
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], Iv(3, 9));
}

}  // namespace
}  // namespace sitm::qsr
