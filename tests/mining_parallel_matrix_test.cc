// Parallel distance-matrix determinism: the blocked parallel fill must
// be byte-identical to the sequential fill for every worker count and block
// size, under several distance functions.
#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "sched/executor.h"
#include "base/rng.h"
#include "core/trajectory.h"
#include "mining/similarity.h"

namespace sitm::mining {
namespace {

using core::AnnotationKind;
using core::AnnotationSet;
using core::PresenceInterval;
using core::SemanticTrajectory;
using core::Trace;

/// Random but deterministic trajectories over a small cell vocabulary.
std::vector<SemanticTrajectory> MakeTrajectories(std::size_t count,
                                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<SemanticTrajectory> out;
  out.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    Trace trace;
    const int length = static_cast<int>(rng.NextInt(1, 12));
    std::int64_t time = static_cast<std::int64_t>(rng.NextInt(0, 1000));
    for (int i = 0; i < length; ++i) {
      PresenceInterval p;
      p.cell = CellId(rng.NextInt(1, 20));
      const std::int64_t dwell = rng.NextInt(1, 600);
      p.interval = *qsr::TimeInterval::Make(Timestamp(time),
                                            Timestamp(time + dwell));
      time += dwell + rng.NextInt(1, 30);
      trace.Append(std::move(p));
    }
    out.emplace_back(TrajectoryId(static_cast<std::int64_t>(t + 1)),
                     ObjectId(static_cast<std::int64_t>(t + 1)),
                     std::move(trace),
                     AnnotationSet{{AnnotationKind::kActivity, "visit"}});
  }
  return out;
}

TrajectoryDistance EditCellDistance() {
  return EditTrajectoryDistance(UnitCellCost());
}

void ExpectByteIdentical(const std::vector<double>& expected,
                         const std::vector<double>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  ASSERT_EQ(std::memcmp(expected.data(), actual.data(),
                        expected.size() * sizeof(double)),
            0);
}

TEST(ParallelDistanceMatrixTest, MatchesSequentialFillByteForByte) {
  const std::vector<SemanticTrajectory> trajectories =
      MakeTrajectories(97, 2024);  // prime: never an exact block multiple
  for (const TrajectoryDistance& distance :
       {EditCellDistance(), TrajectoryDistance(DwellDistributionDistance)}) {
    const std::vector<double> reference =
        DistanceMatrix(trajectories, distance);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      sched::Executor::DefaultConcurrency()}) {
      sched::Executor executor(threads);
      for (const std::size_t block :
           {std::size_t{1}, std::size_t{13}, std::size_t{64},
            std::size_t{1024}}) {
        DistanceMatrixOptions options;
        options.executor = &executor;
        options.block = block;
        ExpectByteIdentical(reference,
                            DistanceMatrix(trajectories, distance, options));
      }
    }
  }
}

TEST(ParallelDistanceMatrixTest, SymmetricWithZeroDiagonal) {
  const std::vector<SemanticTrajectory> trajectories =
      MakeTrajectories(40, 7);
  sched::Executor executor(2);
  DistanceMatrixOptions options;
  options.executor = &executor;
  options.block = 16;
  const std::vector<double> matrix =
      DistanceMatrix(trajectories, EditCellDistance(), options);
  const std::size_t n = trajectories.size();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(matrix[i * n + i], 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(matrix[i * n + j], matrix[j * n + i]);
    }
  }
}

TEST(ParallelDistanceMatrixTest, TinyInputs) {
  sched::Executor executor(2);
  DistanceMatrixOptions options;
  options.executor = &executor;
  EXPECT_TRUE(DistanceMatrix({}, EditCellDistance(), options).empty());
  const std::vector<SemanticTrajectory> one = MakeTrajectories(1, 3);
  EXPECT_EQ(DistanceMatrix(one, EditCellDistance(), options),
            std::vector<double>{0.0});
}

TEST(EditTrajectoryDistanceTest, SimilarityFloorCapsAtDistanceOne) {
  const std::vector<SemanticTrajectory> trajectories =
      MakeTrajectories(30, 99);
  const TrajectoryDistance exact = EditTrajectoryDistance(UnitCellCost());
  const TrajectoryDistance floored =
      EditTrajectoryDistance(UnitCellCost(), /*min_similarity=*/0.6);
  int capped = 0;
  for (std::size_t i = 0; i < trajectories.size(); ++i) {
    for (std::size_t j = i + 1; j < trajectories.size(); ++j) {
      const double d = exact(trajectories[i], trajectories[j]);
      const double f = floored(trajectories[i], trajectories[j]);
      if (d > 0.4) {
        // Below the similarity floor: the banded DP gives up early and
        // reports the maximal distance.
        ASSERT_EQ(f, 1.0) << i << "," << j << " exact " << d;
        ++capped;
      } else {
        ASSERT_DOUBLE_EQ(f, d) << i << "," << j;
      }
    }
  }
  EXPECT_GT(capped, 0);
  // Self-distance is 0 under any floor.
  EXPECT_EQ(floored(trajectories[0], trajectories[0]), 0.0);
}

TEST(ParallelDistanceMatrixTest, ZeroBlockSizeIsClampedNotFatal) {
  const std::vector<SemanticTrajectory> trajectories =
      MakeTrajectories(10, 5);
  DistanceMatrixOptions options;
  options.block = 0;
  ExpectByteIdentical(DistanceMatrix(trajectories, EditCellDistance()),
                      DistanceMatrix(trajectories, EditCellDistance(),
                                     options));
}

}  // namespace
}  // namespace sitm::mining
