#include <gtest/gtest.h>

#include "geom/box.h"
#include "geom/point.h"
#include "geom/segment.h"

namespace sitm::geom {
namespace {

TEST(PointTest, VectorArithmetic) {
  const Point p{1, 2};
  const Point q{3, -1};
  EXPECT_EQ(p + q, (Point{4, 1}));
  EXPECT_EQ(p - q, (Point{-2, 3}));
  EXPECT_EQ(p * 2.0, (Point{2, 4}));
  EXPECT_EQ(2.0 * p, (Point{2, 4}));
}

TEST(PointTest, DotAndCross) {
  EXPECT_DOUBLE_EQ(Dot({1, 2}, {3, 4}), 11);
  EXPECT_DOUBLE_EQ(Cross({1, 0}, {0, 1}), 1);
  EXPECT_DOUBLE_EQ(Cross({0, 1}, {1, 0}), -1);
  EXPECT_DOUBLE_EQ(Cross({2, 3}, {4, 6}), 0);  // parallel
}

TEST(PointTest, Distances) {
  EXPECT_DOUBLE_EQ(DistanceSquared({0, 0}, {3, 4}), 25);
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5);
}

TEST(PointTest, Orientation) {
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {1, 1}), 1);   // left turn
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {1, -1}), -1); // right turn
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {2, 0}), 0);   // collinear
}

TEST(PointTest, NearlyEqualTolerance) {
  EXPECT_TRUE(NearlyEqual({1, 1}, {1 + 1e-12, 1 - 1e-12}));
  EXPECT_FALSE(NearlyEqual({1, 1}, {1.001, 1}));
}

TEST(BoxTest, DefaultIsEmpty) {
  Box box;
  EXPECT_TRUE(box.empty());
  EXPECT_DOUBLE_EQ(box.width(), 0);
  EXPECT_FALSE(box.Contains({0, 0}));
}

TEST(BoxTest, ExtendGrowsTightly) {
  Box box;
  box.Extend({1, 2});
  box.Extend({-1, 5});
  EXPECT_FALSE(box.empty());
  EXPECT_DOUBLE_EQ(box.min_x, -1);
  EXPECT_DOUBLE_EQ(box.max_x, 1);
  EXPECT_DOUBLE_EQ(box.min_y, 2);
  EXPECT_DOUBLE_EQ(box.max_y, 5);
  EXPECT_EQ(box.center(), (Point{0, 3.5}));
}

TEST(BoxTest, ExtendWithBox) {
  Box a(0, 0, 1, 1);
  a.Extend(Box(2, 2, 3, 3));
  EXPECT_DOUBLE_EQ(a.max_x, 3);
  a.Extend(Box());  // empty: no-op
  EXPECT_DOUBLE_EQ(a.max_x, 3);
}

TEST(BoxTest, ContainsIncludesBoundary) {
  const Box box(0, 0, 2, 2);
  EXPECT_TRUE(box.Contains({1, 1}));
  EXPECT_TRUE(box.Contains({0, 0}));
  EXPECT_TRUE(box.Contains({2, 2}));
  EXPECT_FALSE(box.Contains({2.1, 1}));
}

TEST(BoxTest, Intersects) {
  EXPECT_TRUE(Box(0, 0, 2, 2).Intersects(Box(1, 1, 3, 3)));
  EXPECT_TRUE(Box(0, 0, 2, 2).Intersects(Box(2, 0, 3, 2)));  // touching
  EXPECT_FALSE(Box(0, 0, 1, 1).Intersects(Box(2, 2, 3, 3)));
  EXPECT_FALSE(Box().Intersects(Box(0, 0, 1, 1)));
}

TEST(SegmentTest, BasicProperties) {
  const Segment s({0, 0}, {3, 4});
  EXPECT_DOUBLE_EQ(s.Length(), 5);
  EXPECT_EQ(s.Midpoint(), (Point{1.5, 2}));
  EXPECT_TRUE(s.bounds().Contains({1, 1}));
}

TEST(SegmentTest, OnSegment) {
  const Segment s({0, 0}, {4, 0});
  EXPECT_TRUE(OnSegment({2, 0}, s));
  EXPECT_TRUE(OnSegment({0, 0}, s));
  EXPECT_TRUE(OnSegment({4, 0}, s));
  EXPECT_FALSE(OnSegment({5, 0}, s));   // collinear but beyond
  EXPECT_FALSE(OnSegment({2, 0.1}, s)); // off the line
}

TEST(SegmentTest, ProperCrossing) {
  const Segment a({0, 0}, {2, 2});
  const Segment b({0, 2}, {2, 0});
  EXPECT_EQ(ClassifyIntersection(a, b), SegmentIntersection::kCrossing);
  EXPECT_TRUE(SegmentsCross(a, b));
  EXPECT_TRUE(SegmentsIntersect(a, b));
}

TEST(SegmentTest, EndpointTouchIsTouchingNotCrossing) {
  const Segment a({0, 0}, {2, 0});
  const Segment b({2, 0}, {3, 5});
  EXPECT_EQ(ClassifyIntersection(a, b), SegmentIntersection::kTouching);
  EXPECT_FALSE(SegmentsCross(a, b));
}

TEST(SegmentTest, TShapedTouchIsTouching) {
  const Segment a({0, 0}, {4, 0});
  const Segment b({2, 0}, {2, 3});
  EXPECT_EQ(ClassifyIntersection(a, b), SegmentIntersection::kTouching);
}

TEST(SegmentTest, DisjointSegments) {
  const Segment a({0, 0}, {1, 0});
  const Segment b({0, 1}, {1, 1});
  EXPECT_EQ(ClassifyIntersection(a, b), SegmentIntersection::kNone);
  EXPECT_FALSE(SegmentsIntersect(a, b));
}

TEST(SegmentTest, CollinearOverlapIsTouching) {
  const Segment a({0, 0}, {3, 0});
  const Segment b({2, 0}, {5, 0});
  EXPECT_EQ(ClassifyIntersection(a, b), SegmentIntersection::kTouching);
  EXPECT_TRUE(CollinearOverlap(a, b));
}

TEST(SegmentTest, CollinearButDisjointIsNotOverlap) {
  const Segment a({0, 0}, {1, 0});
  const Segment b({2, 0}, {3, 0});
  EXPECT_FALSE(CollinearOverlap(a, b));
  EXPECT_EQ(ClassifyIntersection(a, b), SegmentIntersection::kNone);
}

TEST(SegmentTest, CollinearPointTouchIsNotOverlap) {
  const Segment a({0, 0}, {2, 0});
  const Segment b({2, 0}, {4, 0});
  EXPECT_FALSE(CollinearOverlap(a, b));  // single shared point
  EXPECT_EQ(ClassifyIntersection(a, b), SegmentIntersection::kTouching);
}

TEST(SegmentTest, VerticalCollinearOverlap) {
  const Segment a({1, 0}, {1, 5});
  const Segment b({1, 3}, {1, 9});
  EXPECT_TRUE(CollinearOverlap(a, b));
}

TEST(SegmentTest, ParallelNotCollinear) {
  const Segment a({0, 0}, {4, 0});
  const Segment b({0, 1}, {4, 1});
  EXPECT_FALSE(CollinearOverlap(a, b));
}

TEST(SegmentTest, DistanceToSegment) {
  const Segment s({0, 0}, {4, 0});
  EXPECT_DOUBLE_EQ(DistanceSquaredToSegment({2, 3}, s), 9);
  EXPECT_DOUBLE_EQ(DistanceSquaredToSegment({-3, 4}, s), 25);  // clamps to a
  EXPECT_DOUBLE_EQ(DistanceSquaredToSegment({7, 4}, s), 25);   // clamps to b
  EXPECT_DOUBLE_EQ(DistanceSquaredToSegment({2, 0}, s), 0);
}

TEST(SegmentTest, DistanceToDegenerateSegment) {
  const Segment point({1, 1}, {1, 1});
  EXPECT_DOUBLE_EQ(DistanceSquaredToSegment({4, 5}, point), 25);
}

}  // namespace
}  // namespace sitm::geom
