#include <gtest/gtest.h>

#include "core/enrichment.h"

namespace sitm::core {
namespace {

indoor::Nrg MuseumFloor() {
  indoor::Nrg g;
  indoor::CellSpace gallery(CellId(1), "Italian Gallery",
                            indoor::CellClass::kRoom);
  gallery.SetAttribute("theme", "Italian Paintings");
  indoor::CellSpace stairs(CellId(2), "Main Stairs",
                           indoor::CellClass::kStaircase);
  indoor::CellSpace shop(CellId(3), "Museum Shop", indoor::CellClass::kRoom);
  shop.SetAttribute("theme", "Souvenirs");
  EXPECT_TRUE(g.AddCell(std::move(gallery)).ok());
  EXPECT_TRUE(g.AddCell(std::move(stairs)).ok());
  EXPECT_TRUE(g.AddCell(std::move(shop)).ok());
  return g;
}

PresenceInterval Pi(int cell, std::int64_t start, std::int64_t end) {
  PresenceInterval p;
  p.cell = CellId(cell);
  p.interval = *qsr::TimeInterval::Make(Timestamp(start), Timestamp(end));
  return p;
}

SemanticTrajectory Visit() {
  return SemanticTrajectory(
      TrajectoryId(1), ObjectId(7),
      Trace({Pi(1, 0, 1200), Pi(2, 1210, 1240), Pi(3, 1250, 1800)}),
      AnnotationSet{{AnnotationKind::kActivity, "visit"}});
}

TEST(EnrichmentTest, AttributeRuleFiresOnMatchingCells) {
  SemanticTrajectory t = Visit();
  const indoor::Nrg g = MuseumFloor();
  const auto report = EnrichTrajectory(
      &t, g,
      {AnnotateWhereAttribute(
          "theme", "Italian Paintings",
          {AnnotationKind::kActivity, "art viewing"})});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->tuples_touched, 1u);
  EXPECT_EQ(report->annotations_added, 1u);
  EXPECT_TRUE(t.trace().at(0).annotations.Contains(AnnotationKind::kActivity,
                                                   "art viewing"));
  EXPECT_TRUE(t.trace().at(1).annotations.empty());
}

TEST(EnrichmentTest, ClassRuleAnnotatesStaircases) {
  SemanticTrajectory t = Visit();
  const indoor::Nrg g = MuseumFloor();
  ASSERT_TRUE(EnrichTrajectory(
                  &t, g,
                  {AnnotateWhereClass(indoor::CellClass::kStaircase,
                                      {AnnotationKind::kBehavior, "transit"})})
                  .ok());
  EXPECT_TRUE(t.trace().at(1).annotations.Contains(AnnotationKind::kBehavior,
                                                   "transit"));
  EXPECT_FALSE(t.trace().at(0).annotations.Contains(
      AnnotationKind::kBehavior, "transit"));
}

TEST(EnrichmentTest, StopsAndMovesThresholding) {
  SemanticTrajectory t = Visit();
  const indoor::Nrg g = MuseumFloor();
  ASSERT_TRUE(
      EnrichTrajectory(&t, g,
                       {AnnotateStopsAndMoves(
                           Duration::Minutes(5),
                           {AnnotationKind::kBehavior, "stop"},
                           {AnnotationKind::kBehavior, "move"})})
          .ok());
  EXPECT_TRUE(t.trace().at(0).annotations.Contains(AnnotationKind::kBehavior,
                                                   "stop"));  // 20 min
  EXPECT_TRUE(t.trace().at(1).annotations.Contains(AnnotationKind::kBehavior,
                                                   "move"));  // 30 s
  EXPECT_TRUE(t.trace().at(2).annotations.Contains(AnnotationKind::kBehavior,
                                                   "stop"));
}

TEST(EnrichmentTest, FinalExitRuleOnlyFiresOnLastTuple) {
  SemanticTrajectory t = Visit();
  const indoor::Nrg g = MuseumFloor();
  ASSERT_TRUE(EnrichTrajectory(
                  &t, g,
                  {AnnotateFinalExit({CellId(3)},
                                     {AnnotationKind::kGoal, "museumExit"})})
                  .ok());
  EXPECT_TRUE(t.trace().at(2).annotations.Contains(AnnotationKind::kGoal,
                                                   "museumExit"));
  EXPECT_FALSE(
      t.trace().at(0).annotations.Contains(AnnotationKind::kGoal,
                                           "museumExit"));
  // If the visit does not end at an exit, the rule stays silent.
  SemanticTrajectory other = Visit();
  ASSERT_TRUE(EnrichTrajectory(
                  &other, g,
                  {AnnotateFinalExit({CellId(2)},
                                     {AnnotationKind::kGoal, "museumExit"})})
                  .ok());
  EXPECT_FALSE(other.trace().at(2).annotations.Contains(
      AnnotationKind::kGoal, "museumExit"));
}

TEST(EnrichmentTest, MultipleRulesCompose) {
  SemanticTrajectory t = Visit();
  const indoor::Nrg g = MuseumFloor();
  const auto report = EnrichTrajectory(
      &t, g,
      {AnnotateWhereAttribute("theme", "Souvenirs",
                              {AnnotationKind::kGoal, "buy"}),
       AnnotateFinalExit({CellId(3)}, {AnnotationKind::kGoal, "museumExit"}),
       AnnotateStopsAndMoves(Duration::Minutes(5),
                             {AnnotationKind::kBehavior, "stop"},
                             {AnnotationKind::kBehavior, "move"})});
  ASSERT_TRUE(report.ok());
  // The shop stay collects buy + museumExit + stop.
  const AnnotationSet& shop = t.trace().at(2).annotations;
  EXPECT_TRUE(shop.Contains(AnnotationKind::kGoal, "buy"));
  EXPECT_TRUE(shop.Contains(AnnotationKind::kGoal, "museumExit"));
  EXPECT_TRUE(shop.Contains(AnnotationKind::kBehavior, "stop"));
  EXPECT_TRUE(t.Validate().ok());
}

TEST(EnrichmentTest, EnrichmentIsIdempotent) {
  SemanticTrajectory t = Visit();
  const indoor::Nrg g = MuseumFloor();
  const std::vector<EnrichmentRule> rules = {AnnotateWhereClass(
      indoor::CellClass::kStaircase, {AnnotationKind::kBehavior, "transit"})};
  ASSERT_TRUE(EnrichTrajectory(&t, g, rules).ok());
  const auto second = EnrichTrajectory(&t, g, rules);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->annotations_added, 0u);
  EXPECT_EQ(second->tuples_touched, 0u);
}

TEST(EnrichmentTest, RejectsBadInput) {
  const indoor::Nrg g = MuseumFloor();
  EXPECT_FALSE(EnrichTrajectory(nullptr, g, {}).ok());
  SemanticTrajectory invalid(TrajectoryId(1), ObjectId(1), Trace{},
                             AnnotationSet{{AnnotationKind::kGoal, "g"}});
  EXPECT_FALSE(EnrichTrajectory(&invalid, g, {}).ok());
  SemanticTrajectory t = Visit();
  EnrichmentRule broken;
  broken.name = "broken";
  EXPECT_FALSE(EnrichTrajectory(&t, g, {broken}).ok());
}

TEST(EnrichmentTest, UnknownCellsAreSilentlySkippedByContextRules) {
  // A trajectory over cells outside the graph: attribute/class rules
  // simply do not fire (the cell cannot be resolved).
  SemanticTrajectory t(TrajectoryId(1), ObjectId(7),
                       Trace({Pi(99, 0, 600)}),
                       AnnotationSet{{AnnotationKind::kActivity, "visit"}});
  const indoor::Nrg g = MuseumFloor();
  const auto report = EnrichTrajectory(
      &t, g,
      {AnnotateWhereAttribute("theme", "Souvenirs",
                              {AnnotationKind::kGoal, "buy"})});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->annotations_added, 0u);
}

}  // namespace
}  // namespace sitm::core
