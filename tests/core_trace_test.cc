#include <gtest/gtest.h>

#include "core/trace.h"

namespace sitm::core {
namespace {

PresenceInterval Pi(int cell, std::int64_t start, std::int64_t end,
                    AnnotationSet annotations = {},
                    int transition = -1) {
  PresenceInterval p;
  p.cell = CellId(cell);
  p.transition = transition >= 0 ? BoundaryId(transition) : BoundaryId();
  p.interval = *qsr::TimeInterval::Make(Timestamp(start), Timestamp(end));
  p.annotations = std::move(annotations);
  return p;
}

Trace PaperLikeTrace() {
  // Mirrors the paper's museum-visit example trace shape.
  return Trace({Pi(1, 0, 155), Pi(3, 160, 600, {}, 12), Pi(6, 640, 1600)});
}

TEST(TraceTest, AccessorsAndDurations) {
  const Trace t = PaperLikeTrace();
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.start(), Timestamp(0));
  EXPECT_EQ(t.end(), Timestamp(1600));
  EXPECT_EQ(t.Span().seconds(), 1600);
  EXPECT_EQ(t.TotalPresence().seconds(), 155 + 440 + 960);
  EXPECT_EQ(t.NumTransitions(), 2u);
}

TEST(TraceTest, EmptyTraceProperties) {
  const Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.Span().seconds(), 0);
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TraceTest, VisitedCellsAreFirstVisitOrdered) {
  Trace t({Pi(5, 0, 10), Pi(2, 20, 30), Pi(5, 40, 50)});
  EXPECT_EQ(t.VisitedCells(), (std::vector<CellId>{CellId(5), CellId(2)}));
}

TEST(TraceTest, SliceBoundsChecked) {
  const Trace t = PaperLikeTrace();
  const auto slice = t.Slice(1, 3);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->size(), 2u);
  EXPECT_EQ(slice->start(), Timestamp(160));
  EXPECT_FALSE(t.Slice(2, 2).ok());
  EXPECT_FALSE(t.Slice(0, 4).ok());
}

TEST(TraceTest, SliceBadRangeIsInvalidArgument) {
  // Checked errors, not preconditions: a storage reader can hit these
  // with untrusted inputs, so the codes are pinned.
  const Trace t = PaperLikeTrace();
  EXPECT_EQ(t.Slice(2, 2).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.Slice(3, 1).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.Slice(0, 4).status().code(), StatusCode::kInvalidArgument);
  const Trace empty;
  EXPECT_EQ(empty.Slice(0, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TraceTest, CheckedBoundsOnEmptyTraceAreInvalidArgument) {
  const Trace empty;
  EXPECT_EQ(empty.StartTime().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(empty.EndTime().status().code(), StatusCode::kInvalidArgument);
  const Trace t = PaperLikeTrace();
  ASSERT_TRUE(t.StartTime().ok());
  ASSERT_TRUE(t.EndTime().ok());
  EXPECT_EQ(*t.StartTime(), t.start());
  EXPECT_EQ(*t.EndTime(), t.end());
}

TEST(TraceTest, ValidateAcceptsGaps) {
  // Temporal gaps are allowed: they are holes or semantic gaps (§2.2).
  EXPECT_TRUE(PaperLikeTrace().Validate().ok());
}

TEST(TraceTest, ValidateRejectsTimeTravel) {
  Trace t({Pi(1, 0, 100), Pi(2, 50, 200)});  // starts before previous end
  EXPECT_EQ(t.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(TraceTest, ValidateRejectsInvalidCell) {
  Trace t;
  PresenceInterval p;
  p.interval = *qsr::TimeInterval::Make(Timestamp(0), Timestamp(1));
  t.Append(p);  // cell id never set
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TraceTest, ValidateEnforcesEventBasedModel) {
  // Two contiguous tuples in the same cell with the same annotations are
  // one event and must be a single tuple (§3.3).
  Trace t({Pi(1, 0, 100), Pi(1, 100, 200)});
  EXPECT_EQ(t.Validate().code(), StatusCode::kFailedPrecondition);
  // With different annotations it is a legitimate event boundary --
  // the paper's room006 goal change.
  Trace ok({Pi(1, 0, 100),
            Pi(1, 100, 200, {{AnnotationKind::kGoal, "buy"}})});
  EXPECT_TRUE(ok.Validate().ok());
  // Same cell after a gap is a revisit, not a duplicate event.
  Trace revisit({Pi(1, 0, 100), Pi(1, 200, 300)});
  EXPECT_TRUE(revisit.Validate().ok());
}

TEST(TraceTest, ValidateAllowsZeroLengthStay) {
  // Zero-duration presence is representable (instantaneous crossing);
  // filtering them is the builder's job, not the model's.
  Trace t({Pi(1, 0, 0), Pi(2, 10, 20)});
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TraceTest, ValidateAgainstGraphChecksAccessibility) {
  indoor::Nrg g;
  for (int id : {1, 3, 6}) {
    ASSERT_TRUE(
        g.AddCell(indoor::CellSpace(CellId(id), "c", indoor::CellClass::kRoom))
            .ok());
  }
  ASSERT_TRUE(g.AddBoundary({BoundaryId(12), "door012",
                             indoor::BoundaryType::kDoor})
                  .ok());
  ASSERT_TRUE(g.AddSymmetricEdge(CellId(1), CellId(3),
                                 indoor::EdgeType::kAccessibility,
                                 BoundaryId(12))
                  .ok());
  ASSERT_TRUE(g.AddSymmetricEdge(CellId(3), CellId(6),
                                 indoor::EdgeType::kAccessibility)
                  .ok());
  EXPECT_TRUE(PaperLikeTrace().ValidateAgainstGraph(g).ok());

  // A trace jumping 1 -> 6 directly has no supporting edge.
  Trace teleport({Pi(1, 0, 10), Pi(6, 20, 30)});
  EXPECT_EQ(teleport.ValidateAgainstGraph(g).code(),
            StatusCode::kFailedPrecondition);

  // A declared transition must match an actual edge boundary.
  Trace wrong_door({Pi(1, 0, 10), Pi(3, 20, 30, {}, 99)});
  EXPECT_EQ(wrong_door.ValidateAgainstGraph(g).code(),
            StatusCode::kFailedPrecondition);

  // Unknown cells are reported.
  Trace alien({Pi(42, 0, 10)});
  EXPECT_EQ(alien.ValidateAgainstGraph(g).code(), StatusCode::kNotFound);
}

TEST(TraceTest, ToStringRendersTuples) {
  const std::string s = PaperLikeTrace().ToString();
  EXPECT_NE(s.find("cell#1"), std::string::npos);
  EXPECT_NE(s.find("e#12"), std::string::npos);
}

}  // namespace
}  // namespace sitm::core
