#include <gtest/gtest.h>

#include "indoor/multilayer.h"

namespace sitm::indoor {
namespace {

using qsr::TopologicalRelation;

SpaceLayer MakeLayer(int id, const std::string& name,
                     std::initializer_list<int> cells,
                     LayerKind kind = LayerKind::kTopographic) {
  SpaceLayer layer(LayerId(id), name, kind);
  for (int c : cells) {
    EXPECT_TRUE(layer.mutable_graph()
                    .AddCell(CellSpace(CellId(c), "cell" + std::to_string(c),
                                       CellClass::kGeneric))
                    .ok());
  }
  return layer;
}

// The paper's Fig. 1 situation: hall 5 in layer i+1 subdivides into 5a,
// 5b, 5c in layer i (here: 50 covers {51, 52, 53}).
MultiLayerGraph Fig1Graph() {
  MultiLayerGraph g;
  EXPECT_TRUE(g.AddLayer(MakeLayer(1, "coarse", {10, 20, 30, 40, 50})).ok());
  EXPECT_TRUE(g.AddLayer(MakeLayer(0, "fine", {51, 52, 53})).ok());
  for (int fine : {51, 52, 53}) {
    EXPECT_TRUE(g.AddJointEdge(CellId(50), CellId(fine),
                               TopologicalRelation::kCovers)
                    .ok());
  }
  return g;
}

TEST(MultiLayerTest, LayerKindNames) {
  EXPECT_EQ(LayerKindName(LayerKind::kTopographic), "topographic");
  EXPECT_EQ(LayerKindName(LayerKind::kSemantic), "semantic");
}

TEST(MultiLayerTest, AddLayerRejectsDuplicates) {
  MultiLayerGraph g;
  ASSERT_TRUE(g.AddLayer(MakeLayer(1, "a", {1})).ok());
  EXPECT_EQ(g.AddLayer(MakeLayer(1, "b", {2})).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(g.num_layers(), 1u);
}

TEST(MultiLayerTest, CellsMayNotBeSharedAcrossLayers) {
  // ⋂ V_i = ∅ (§3.2): the same id in two layers must be rejected.
  MultiLayerGraph g;
  ASSERT_TRUE(g.AddLayer(MakeLayer(1, "a", {7})).ok());
  EXPECT_EQ(g.AddLayer(MakeLayer(2, "b", {7})).code(),
            StatusCode::kAlreadyExists);
}

TEST(MultiLayerTest, FindLayerAndLayerOf) {
  MultiLayerGraph g = Fig1Graph();
  EXPECT_TRUE(g.FindLayer(LayerId(0)).ok());
  EXPECT_FALSE(g.FindLayer(LayerId(9)).ok());
  EXPECT_EQ(g.LayerOf(CellId(50)).value(), LayerId(1));
  EXPECT_EQ(g.LayerOf(CellId(52)).value(), LayerId(0));
  EXPECT_FALSE(g.LayerOf(CellId(99)).ok());
}

TEST(MultiLayerTest, FindCellSearchesAllLayers) {
  MultiLayerGraph g = Fig1Graph();
  EXPECT_EQ(g.FindCell(CellId(53)).value()->name(), "cell53");
  EXPECT_FALSE(g.FindCell(CellId(99)).ok());
}

TEST(MultiLayerTest, LayerOfSeesCellsAddedAfterAddLayer) {
  MultiLayerGraph g = Fig1Graph();
  auto layer = g.MutableLayer(LayerId(0));
  ASSERT_TRUE(layer.ok());
  ASSERT_TRUE((*layer)
                  ->mutable_graph()
                  .AddCell(CellSpace(CellId(54), "late", CellClass::kGeneric))
                  .ok());
  EXPECT_EQ(g.LayerOf(CellId(54)).value(), LayerId(0));
}

TEST(MultiLayerTest, JointEdgeValidation) {
  MultiLayerGraph g = Fig1Graph();
  // Same layer: invalid.
  EXPECT_EQ(g.AddJointEdge(CellId(10), CellId(20),
                           TopologicalRelation::kOverlap)
                .code(),
            StatusCode::kInvalidArgument);
  // Disjoint/meet are not valid overall-state relations.
  EXPECT_EQ(g.AddJointEdge(CellId(10), CellId(51),
                           TopologicalRelation::kDisjoint)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      g.AddJointEdge(CellId(10), CellId(51), TopologicalRelation::kMeet)
          .code(),
      StatusCode::kInvalidArgument);
  // Missing cells.
  EXPECT_EQ(g.AddJointEdge(CellId(99), CellId(51),
                           TopologicalRelation::kOverlap)
                .code(),
            StatusCode::kNotFound);
}

TEST(MultiLayerTest, JointEdgeAddsConverseByDefault) {
  MultiLayerGraph g = Fig1Graph();
  ASSERT_TRUE(g.AddJointEdge(CellId(40), CellId(51),
                             TopologicalRelation::kOverlap)
                  .ok());
  const auto back = g.JointEdgesOf(CellId(51));
  bool found = false;
  for (const JointEdge& e : back) {
    if (e.to == CellId(40)) {
      EXPECT_EQ(e.relation, TopologicalRelation::kOverlap);  // symmetric
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MultiLayerTest, ConverseOfCoversIsCoveredBy) {
  MultiLayerGraph g = Fig1Graph();
  bool found = false;
  for (const JointEdge& e : g.JointEdgesOf(CellId(51))) {
    if (e.to == CellId(50)) {
      EXPECT_EQ(e.relation, TopologicalRelation::kCoveredBy);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MultiLayerTest, CandidateStatesAreTheFig1ActiveStates) {
  // "if a visitor is inside the hall represented as node 5 in layer
  // i+1, then the joint edges suggest that he can only be in either 5a,
  // 5b, or 5c in layer i".
  MultiLayerGraph g = Fig1Graph();
  const std::vector<CellId> candidates =
      g.CandidateStates(CellId(50), LayerId(0));
  EXPECT_EQ(candidates.size(), 3u);
  // A cell with no joint edges toward the target layer has none.
  EXPECT_TRUE(g.CandidateStates(CellId(10), LayerId(0)).empty());
}

TEST(MultiLayerTest, DeriveJointEdgesFromGeometry) {
  MultiLayerGraph g;
  SpaceLayer coarse(LayerId(1), "floor", LayerKind::kTopographic);
  CellSpace floor_cell(CellId(1), "floor0", CellClass::kFloor);
  floor_cell.set_geometry(geom::Polygon::Rectangle(0, 0, 10, 10));
  floor_cell.set_floor_level(0);
  ASSERT_TRUE(coarse.mutable_graph().AddCell(std::move(floor_cell)).ok());
  SpaceLayer fine(LayerId(0), "room", LayerKind::kTopographic);
  for (int i = 0; i < 2; ++i) {
    CellSpace room(CellId(10 + i), "room" + std::to_string(i),
                   CellClass::kRoom);
    room.set_geometry(
        geom::Polygon::Rectangle(i * 5.0, 0, i * 5.0 + 5.0, 10));
    room.set_floor_level(0);
    ASSERT_TRUE(fine.mutable_graph().AddCell(std::move(room)).ok());
  }
  // A cell on another floor with identical footprint must be skipped.
  CellSpace other_floor(CellId(12), "upstairs", CellClass::kRoom);
  other_floor.set_geometry(geom::Polygon::Rectangle(0, 0, 10, 10));
  other_floor.set_floor_level(1);
  ASSERT_TRUE(fine.mutable_graph().AddCell(std::move(other_floor)).ok());
  ASSERT_TRUE(g.AddLayer(std::move(coarse)).ok());
  ASSERT_TRUE(g.AddLayer(std::move(fine)).ok());

  const auto added = g.DeriveJointEdgesFromGeometry(LayerId(1), LayerId(0));
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 4);  // 2 pairs x converse
  const std::vector<CellId> children =
      g.CandidateStates(CellId(1), LayerId(0));
  EXPECT_EQ(children.size(), 2u);
  EXPECT_FALSE(
      g.DeriveJointEdgesFromGeometry(LayerId(1), LayerId(1)).ok());
}

TEST(MultiLayerTest, ValidateDetectsCorruptJointRelation) {
  MultiLayerGraph g = Fig1Graph();
  EXPECT_TRUE(g.Validate().ok());
}

TEST(MultiLayerTest, ValidateChecksLayerGraphs) {
  MultiLayerGraph g;
  SpaceLayer layer = MakeLayer(1, "bad", {1, 2});
  // Asymmetric adjacency inside a layer is a structural error.
  ASSERT_TRUE(layer.mutable_graph()
                  .AddEdge(CellId(1), CellId(2), EdgeType::kAdjacency)
                  .ok());
  ASSERT_TRUE(g.AddLayer(std::move(layer)).ok());
  EXPECT_FALSE(g.Validate().ok());
}

}  // namespace
}  // namespace sitm::indoor
