#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "sched/executor.h"
#include "core/pipeline.h"
#include "io/csv.h"
#include "louvre/museum.h"
#include "louvre/simulator.h"
#include "storage/columnar.h"
#include "storage/event_store.h"

namespace sitm::storage {
namespace {

// ---------------------------------------------------------------------------
// Columnar encoding primitives.
// ---------------------------------------------------------------------------

TEST(ColumnarTest, VarintRoundTrip) {
  std::string buf;
  const std::vector<std::uint64_t> values = {
      0, 1, 127, 128, 300, (1ull << 32), ~0ull};
  for (std::uint64_t v : values) PutVarint64(buf, v);
  ByteReader reader(buf);
  for (std::uint64_t v : values) {
    const auto decoded = reader.ReadVarint64();
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, v);
  }
  EXPECT_TRUE(reader.empty());
}

TEST(ColumnarTest, ZigZagRoundTrip) {
  for (std::int64_t v : {std::int64_t(0), std::int64_t(-1), std::int64_t(1),
                         std::int64_t(-123456789), std::int64_t(1) << 62,
                         std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v) << v;
  }
}

TEST(ColumnarTest, DeltaColumnRoundTrip) {
  const std::vector<std::int64_t> values = {100, 101, 101, 90, -5, 1000000};
  std::string buf;
  PutDeltaColumn(buf, values);
  ByteReader reader(buf);
  const auto decoded = ReadDeltaColumn(reader, values.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, values);
}

TEST(ColumnarTest, DeltaColumnExtremeValuesRoundTrip) {
  // Adjacent values at the two ends of the int64 range: the deltas wrap
  // mod 2^64 and must still round-trip exactly (and never be UB).
  const std::vector<std::int64_t> values = {
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min(), 0,
      std::numeric_limits<std::int64_t>::max()};
  std::string buf;
  PutDeltaColumn(buf, values);
  ByteReader reader(buf);
  const auto decoded = ReadDeltaColumn(reader, values.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, values);
  EXPECT_TRUE(reader.empty());
}

TEST(ColumnarTest, BitColumnRoundTrip) {
  const std::vector<bool> values = {true, false, false, true, true,
                                    false, true, false, true};
  std::string buf;
  PutBitColumn(buf, values);
  EXPECT_EQ(buf.size(), 2u);
  ByteReader reader(buf);
  const auto decoded = ReadBitColumn(reader, values.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, values);
}

TEST(ColumnarTest, TruncatedReadsAreCorruption) {
  std::string buf;
  PutVarint64(buf, 1u << 20);
  buf.pop_back();
  ByteReader reader(buf);
  EXPECT_EQ(reader.ReadVarint64().status().code(), StatusCode::kCorruption);
  ByteReader empty("", 0);
  EXPECT_EQ(empty.ReadU64().status().code(), StatusCode::kCorruption);
  EXPECT_EQ(empty.ReadBytes(1).status().code(), StatusCode::kCorruption);
}

TEST(ColumnarTest, OverlongVarintIsCorruption) {
  // 11 continuation bytes can never be a valid 64-bit varint.
  const std::string buf(11, '\x80');
  ByteReader reader(buf);
  EXPECT_EQ(reader.ReadVarint64().status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// EventStore fixtures.
// ---------------------------------------------------------------------------

const louvre::LouvreMap& Map() {
  static const louvre::LouvreMap* map =
      new louvre::LouvreMap(louvre::LouvreMap::Build().value());
  return *map;
}

const indoor::Nrg& ZoneGraph() {
  return Map().graph().FindLayer(Map().zone_layer()).value()->graph();
}

std::vector<core::RawDetection> SimulatedDetections(std::uint64_t seed,
                                                    int visitors = 150) {
  louvre::SimulatorOptions options;
  options.seed = seed;
  options.num_visitors = visitors;
  options.num_returning = visitors * 2 / 5;
  options.num_third_visits = visitors / 6;
  options.num_detections =
      (visitors + options.num_returning + options.num_third_visits) * 4;
  louvre::VisitSimulator simulator(&Map(), options);
  auto dataset = simulator.Generate();
  EXPECT_TRUE(dataset.ok()) << dataset.status();
  return dataset->ToRawDetections();
}

core::PipelineOptions FullPipelineOptions() {
  core::PipelineOptions options;
  options.builder.graph = &ZoneGraph();
  options.rules = {
      core::AnnotateStopsAndMoves(Duration::Minutes(5),
                                  {core::AnnotationKind::kBehavior, "stop"},
                                  {core::AnnotationKind::kBehavior, "move"}),
      core::AnnotateWhereAttribute("requiresTicket", "true",
                                   {core::AnnotationKind::kOther, "ticketed"}),
      core::AnnotateFinalExit(Map().exit_zones(),
                              {core::AnnotationKind::kGoal, "leaving"}),
  };
  options.infer_hidden_passages = true;
  return options;
}

std::vector<core::SemanticTrajectory> BuildTrajectories(
    std::vector<core::RawDetection> detections) {
  core::BatchPipeline pipeline(FullPipelineOptions());
  auto result = pipeline.Run(std::move(detections));
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

std::string TempPath(const std::string& name) {
  // Pid-suffixed: gtest_discover_tests runs every TEST as its own ctest
  // entry, so concurrent test processes share TempDir — a bare shared
  // name lets one process's TearDown unlink a file another process is
  // mid-SetUp on (seen as flakes under TSan's slowdown).
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

void ExpectTrajectoriesEqual(
    const std::vector<core::SemanticTrajectory>& expected,
    const std::vector<core::SemanticTrajectory>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const core::SemanticTrajectory& a = expected[i];
    const core::SemanticTrajectory& b = actual[i];
    EXPECT_EQ(a.id(), b.id()) << i;
    EXPECT_EQ(a.object(), b.object()) << i;
    EXPECT_EQ(a.annotations(), b.annotations()) << i;
    ASSERT_EQ(a.trace().size(), b.trace().size()) << i;
    for (std::size_t k = 0; k < a.trace().size(); ++k) {
      EXPECT_EQ(a.trace().at(k), b.trace().at(k)) << i << "/" << k;
    }
  }
}

Status WriteTrajectoryStore(const std::string& path,
                            const std::vector<core::SemanticTrajectory>& ts,
                            WriterOptions options = {}) {
  auto writer = EventStoreWriter::Create(path, StoreKind::kTrajectories,
                                         options);
  SITM_RETURN_IF_ERROR(writer.status());
  SITM_RETURN_IF_ERROR(writer->Append(ts));
  return writer->Finish();
}

Status WriteDetectionStore(const std::string& path,
                           const std::vector<core::RawDetection>& ds,
                           WriterOptions options = {}) {
  auto writer =
      EventStoreWriter::Create(path, StoreKind::kDetections, options);
  SITM_RETURN_IF_ERROR(writer.status());
  SITM_RETURN_IF_ERROR(writer->Append(ds));
  return writer->Finish();
}

// ---------------------------------------------------------------------------
// Roundtrip property tests.
// ---------------------------------------------------------------------------

TEST(EventStoreRoundTripTest, RandomDatasetsRoundTripLosslessly) {
  // Property: for random VisitSimulator datasets, pipeline output written
  // to a store and read back is identical, for several block sizes.
  for (const std::uint64_t seed : {1u, 7u, 20170119u}) {
    const auto trajectories = BuildTrajectories(SimulatedDetections(seed));
    ASSERT_FALSE(trajectories.empty());
    for (const std::size_t rows_per_block : {16ul, 4096ul}) {
      const std::string path = TempPath("roundtrip.evst");
      WriterOptions options;
      options.rows_per_block = rows_per_block;
      ASSERT_TRUE(WriteTrajectoryStore(path, trajectories, options).ok());
      const auto reader = EventStoreReader::Open(path);
      ASSERT_TRUE(reader.ok()) << reader.status();
      EXPECT_EQ(reader->kind(), StoreKind::kTrajectories);
      EXPECT_EQ(reader->trajectories(), trajectories.size());
      const auto restored = reader->ReadTrajectories();
      ASSERT_TRUE(restored.ok()) << restored.status();
      ExpectTrajectoriesEqual(trajectories, *restored);
      std::remove(path.c_str());
    }
  }
}

TEST(EventStoreRoundTripTest, DetectionsRoundTripLosslessly) {
  const auto detections = SimulatedDetections(42);
  const std::string path = TempPath("detections.evst");
  WriterOptions options;
  options.rows_per_block = 128;
  ASSERT_TRUE(WriteDetectionStore(path, detections, options).ok());
  const auto reader = EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->kind(), StoreKind::kDetections);
  EXPECT_EQ(reader->rows(), detections.size());
  EXPECT_GT(reader->num_blocks(), 1u);
  const auto restored = reader->ReadDetections();
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->size(), detections.size());
  for (std::size_t i = 0; i < detections.size(); ++i) {
    EXPECT_EQ((*restored)[i].object, detections[i].object) << i;
    EXPECT_EQ((*restored)[i].cell, detections[i].cell) << i;
    EXPECT_EQ((*restored)[i].start, detections[i].start) << i;
    EXPECT_EQ((*restored)[i].end, detections[i].end) << i;
  }
  std::remove(path.c_str());
}

TEST(EventStoreRoundTripTest, PipelineConsumesStraightFromStore) {
  // Store raw detections, run the pipeline off the store, and compare
  // with the pipeline over the in-memory batch: byte-identical.
  const auto detections = SimulatedDetections(99);
  const auto expected = BuildTrajectories(detections);
  const std::string path = TempPath("pipeline_source.evst");
  ASSERT_TRUE(WriteDetectionStore(path, detections).ok());
  const auto reader = EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  core::BatchPipeline pipeline(FullPipelineOptions());
  const auto from_store = RunPipelineFromStore(*reader, pipeline);
  ASSERT_TRUE(from_store.ok()) << from_store.status();
  ExpectTrajectoriesEqual(expected, *from_store);
  std::remove(path.c_str());
}

TEST(EventStoreRoundTripTest, ParallelEncodingIsByteIdentical) {
  const auto trajectories = BuildTrajectories(SimulatedDetections(5));
  const std::string seq_path = TempPath("seq.evst");
  const std::string par_path = TempPath("par.evst");
  WriterOptions seq_options;
  seq_options.rows_per_block = 64;
  ASSERT_TRUE(WriteTrajectoryStore(seq_path, trajectories, seq_options).ok());
  sched::Executor executor(3);
  WriterOptions par_options;
  par_options.rows_per_block = 64;
  par_options.executor = &executor;
  ASSERT_TRUE(WriteTrajectoryStore(par_path, trajectories, par_options).ok());
  const auto seq_bytes = io::ReadFile(seq_path);
  const auto par_bytes = io::ReadFile(par_path);
  ASSERT_TRUE(seq_bytes.ok());
  ASSERT_TRUE(par_bytes.ok());
  EXPECT_EQ(*seq_bytes, *par_bytes);
  std::remove(seq_path.c_str());
  std::remove(par_path.c_str());
}

TEST(EventStoreRoundTripTest, MultipleBatchesAccumulate) {
  const auto a = BuildTrajectories(SimulatedDetections(11));
  const auto b = BuildTrajectories(SimulatedDetections(12));
  const std::string path = TempPath("batches.evst");
  auto writer = EventStoreWriter::Create(path, StoreKind::kTrajectories);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(a).ok());
  ASSERT_TRUE(writer->Append(b).ok());
  ASSERT_TRUE(writer->Finish().ok());
  const auto reader = EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  const auto restored = reader->ReadTrajectories();
  ASSERT_TRUE(restored.ok()) << restored.status();
  std::vector<core::SemanticTrajectory> expected = a;
  expected.insert(expected.end(), b.begin(), b.end());
  ExpectTrajectoriesEqual(expected, *restored);
  std::remove(path.c_str());
}

TEST(EventStoreRoundTripTest, EmptyStoreRoundTrips) {
  const std::string path = TempPath("empty.evst");
  auto writer = EventStoreWriter::Create(path, StoreKind::kTrajectories);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Finish().ok());
  const auto reader = EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->num_blocks(), 0u);
  const auto restored = reader->ReadTrajectories();
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Predicate pushdown.
// ---------------------------------------------------------------------------

TEST(EventStoreScanTest, ObjectPushdownMatchesPostFilter) {
  const auto trajectories = BuildTrajectories(SimulatedDetections(3));
  const std::string path = TempPath("scan_object.evst");
  WriterOptions options;
  options.rows_per_block = 32;  // many blocks -> real pruning
  ASSERT_TRUE(WriteTrajectoryStore(path, trajectories, options).ok());
  const auto reader = EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  ASSERT_GT(reader->num_blocks(), 3u);

  const ObjectId target = trajectories[trajectories.size() / 2].object();
  ScanOptions scan;
  scan.objects = {target};
  const auto scanned = reader->ReadTrajectories(scan);
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  std::vector<core::SemanticTrajectory> expected;
  for (const auto& t : trajectories) {
    if (t.object() == target) expected.push_back(t);
  }
  ExpectTrajectoriesEqual(expected, *scanned);

  // The footer stats must actually prune blocks for a single object.
  std::size_t matching_blocks = 0;
  for (std::size_t i = 0; i < reader->num_blocks(); ++i) {
    matching_blocks += reader->BlockMatches(i, scan) ? 1 : 0;
  }
  EXPECT_LT(matching_blocks, reader->num_blocks());
  std::remove(path.c_str());
}

TEST(EventStoreScanTest, TimeRangePushdownMatchesPostFilter) {
  const auto trajectories = BuildTrajectories(SimulatedDetections(8));
  const std::string path = TempPath("scan_time.evst");
  WriterOptions options;
  options.rows_per_block = 32;
  ASSERT_TRUE(WriteTrajectoryStore(path, trajectories, options).ok());
  const auto reader = EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();

  // Window around the middle of the dataset's span.
  std::int64_t min_t = trajectories.front().start().seconds_since_epoch();
  std::int64_t max_t = min_t;
  for (const auto& t : trajectories) {
    min_t = std::min(min_t, t.start().seconds_since_epoch());
    max_t = std::max(max_t, t.end().seconds_since_epoch());
  }
  ScanOptions scan;
  scan.min_time = Timestamp(min_t + (max_t - min_t) / 3);
  scan.max_time = Timestamp(min_t + 2 * (max_t - min_t) / 3);
  const auto scanned = reader->ReadTrajectories(scan);
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  std::vector<core::SemanticTrajectory> expected;
  for (const auto& t : trajectories) {
    if (t.end() >= *scan.min_time && t.start() <= *scan.max_time) {
      expected.push_back(t);
    }
  }
  ASSERT_FALSE(expected.empty());
  ExpectTrajectoriesEqual(expected, *scanned);
  std::remove(path.c_str());
}

TEST(EventStoreScanTest, DetectionScanFiltersRowWise) {
  const auto detections = SimulatedDetections(17);
  const std::string path = TempPath("scan_rows.evst");
  WriterOptions options;
  options.rows_per_block = 64;
  ASSERT_TRUE(WriteDetectionStore(path, detections, options).ok());
  const auto reader = EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  ScanOptions scan;
  const ObjectId scan_object = detections[detections.size() / 2].object;
  scan.objects = {scan_object};
  const auto scanned = reader->ReadDetections(scan);
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  std::size_t expected = 0;
  for (const auto& d : detections) expected += d.object == scan_object;
  EXPECT_EQ(scanned->size(), expected);
  for (const auto& d : *scanned) EXPECT_EQ(d.object, scan_object);
  std::remove(path.c_str());
}

TEST(EventStoreScanTest, TimeRangeInclusiveAtBlockBoundaries) {
  // Two-row blocks with known timestamps: block 0 = [100,110],[120,130],
  // block 1 = [130,140],[150,160], block 2 = [200,210]. Tuples exactly
  // at a block's min/max timestamp must match a window touching them at
  // a single instant (closed-interval, inclusive-bound semantics).
  const ObjectId object(7);
  const CellId cell(1);
  const std::vector<core::RawDetection> detections = {
      {object, cell, Timestamp(100), Timestamp(110)},
      {object, cell, Timestamp(120), Timestamp(130)},
      {object, cell, Timestamp(130), Timestamp(140)},
      {object, cell, Timestamp(150), Timestamp(160)},
      {object, cell, Timestamp(200), Timestamp(210)},
  };
  const std::string path = TempPath("scan_boundaries.evst");
  WriterOptions options;
  options.rows_per_block = 2;
  ASSERT_TRUE(WriteDetectionStore(path, detections, options).ok());
  const auto reader = EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  ASSERT_EQ(reader->num_blocks(), 3u);
  ASSERT_EQ(reader->block(0).max_time, 130);
  ASSERT_EQ(reader->block(1).min_time, 130);

  // Window [130, 130]: exactly block 0's max and block 1's min. Both
  // blocks survive pruning; the two touching tuples match.
  ScanOptions scan;
  scan.min_time = Timestamp(130);
  scan.max_time = Timestamp(130);
  EXPECT_TRUE(reader->BlockMatches(0, scan));
  EXPECT_TRUE(reader->BlockMatches(1, scan));
  EXPECT_FALSE(reader->BlockMatches(2, scan));
  auto scanned = reader->ReadDetections(scan);
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  ASSERT_EQ(scanned->size(), 2u);
  EXPECT_EQ((*scanned)[0].start, Timestamp(120));
  EXPECT_EQ((*scanned)[1].start, Timestamp(130));

  // Window ending exactly at the last block's min: inclusive there too.
  scan.min_time = Timestamp(161);
  scan.max_time = Timestamp(200);
  scanned = reader->ReadDetections(scan);
  ASSERT_TRUE(scanned.ok());
  ASSERT_EQ(scanned->size(), 1u);
  EXPECT_EQ((*scanned)[0].start, Timestamp(200));

  // A window in the gap between blocks matches nothing.
  scan.min_time = Timestamp(161);
  scan.max_time = Timestamp(199);
  scanned = reader->ReadDetections(scan);
  ASSERT_TRUE(scanned.ok());
  EXPECT_TRUE(scanned->empty());
  std::remove(path.c_str());
}

TEST(EventStoreScanTest, InvertedWindowMatchesNothing) {
  // Regression: a row spanning the inversion gap (end >= min_time and
  // start <= max_time despite max < min) used to pass both one-sided
  // tests. The empty window must match no row and no block.
  const ObjectId object(3);
  const CellId cell(2);
  const std::vector<core::RawDetection> detections = {
      {object, cell, Timestamp(100), Timestamp(300)},  // spans [150, 200]
      {object, cell, Timestamp(120), Timestamp(130)},
  };
  const std::string path = TempPath("scan_inverted.evst");
  ASSERT_TRUE(WriteDetectionStore(path, detections).ok());
  const auto reader = EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  ScanOptions scan;
  scan.min_time = Timestamp(200);
  scan.max_time = Timestamp(150);
  ASSERT_TRUE(scan.EmptyWindow());
  for (std::size_t i = 0; i < reader->num_blocks(); ++i) {
    EXPECT_FALSE(reader->BlockMatches(i, scan));
  }
  EXPECT_TRUE(reader->CandidateBlocks(scan).empty());
  const auto scanned = reader->ReadDetections(scan);
  ASSERT_TRUE(scanned.ok());
  EXPECT_TRUE(scanned->empty());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Secondary object-id index (format v2).
// ---------------------------------------------------------------------------

TEST(EventStoreObjectIndexTest, PostingListsPruneBlocksExactly) {
  const auto trajectories = BuildTrajectories(SimulatedDetections(31));
  const std::string path = TempPath("object_index.evst");
  WriterOptions options;
  options.rows_per_block = 32;
  ASSERT_TRUE(WriteTrajectoryStore(path, trajectories, options).ok());
  const auto reader = EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->version(), kStoreVersion);
  ASSERT_TRUE(reader->has_object_index());
  ASSERT_GT(reader->num_blocks(), 4u);

  for (std::size_t pick : {std::size_t{0}, trajectories.size() / 2,
                           trajectories.size() - 1}) {
    const ObjectId target = trajectories[pick].object();
    ScanOptions scan;
    scan.objects = {target};
    // The posting list must be a subset of what min/max pruning admits,
    // and scanning only it must still find every match.
    const std::vector<std::size_t> candidates = reader->CandidateBlocks(scan);
    std::size_t min_max_blocks = 0;
    for (std::size_t i = 0; i < reader->num_blocks(); ++i) {
      min_max_blocks += reader->BlockMatches(i, scan) ? 1 : 0;
    }
    EXPECT_LE(candidates.size(), min_max_blocks);
    const auto scanned = reader->ReadTrajectories(scan);
    ASSERT_TRUE(scanned.ok()) << scanned.status();
    std::vector<core::SemanticTrajectory> expected;
    for (const auto& t : trajectories) {
      if (t.object() == target) expected.push_back(t);
    }
    ExpectTrajectoriesEqual(expected, *scanned);
  }

  // An object id the store never saw: the index answers "no blocks"
  // without touching any payload.
  ScanOptions missing;
  missing.objects = {ObjectId(1u << 30)};
  EXPECT_TRUE(reader->CandidateBlocks(missing).empty());
  const auto none = reader->ReadTrajectories(missing);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  std::remove(path.c_str());
}

TEST(EventStoreObjectIndexTest, Version1FilesStayReadable) {
  const auto trajectories = BuildTrajectories(SimulatedDetections(5, 80));
  const std::string v1_path = TempPath("compat_v1.evst");
  const std::string v2_path = TempPath("compat_v2.evst");
  // Under format_version 2 the object-index switch is the old v2/v1
  // lever: no index means no optional sections, i.e. the v1 format.
  WriterOptions v1_options;
  v1_options.rows_per_block = 32;
  v1_options.format_version = 2;
  v1_options.write_object_index = false;
  WriterOptions v2_options;
  v2_options.rows_per_block = 32;
  v2_options.format_version = 2;
  ASSERT_TRUE(WriteTrajectoryStore(v1_path, trajectories, v1_options).ok());
  ASSERT_TRUE(WriteTrajectoryStore(v2_path, trajectories, v2_options).ok());

  const auto v1 = EventStoreReader::Open(v1_path);
  const auto v2 = EventStoreReader::Open(v2_path);
  ASSERT_TRUE(v1.ok()) << v1.status();
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_FALSE(v1->has_object_index());
  EXPECT_TRUE(v2->has_object_index());

  // Same data, same answers — with and without the index, for full
  // scans and for point lookups (v1 falls back to min/max pruning).
  ScanOptions scan;
  scan.objects = {trajectories[trajectories.size() / 3].object()};
  const auto v1_all = v1->ReadTrajectories();
  const auto v2_all = v2->ReadTrajectories();
  ASSERT_TRUE(v1_all.ok() && v2_all.ok());
  ExpectTrajectoriesEqual(*v1_all, *v2_all);
  const auto v1_point = v1->ReadTrajectories(scan);
  const auto v2_point = v2->ReadTrajectories(scan);
  ASSERT_TRUE(v1_point.ok() && v2_point.ok());
  ExpectTrajectoriesEqual(*v1_point, *v2_point);
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
}

TEST(EventStoreObjectIndexTest, ForgedPostingBlockIsCorruption) {
  // A forged index that names a nonexistent block must be rejected even
  // when the footer checksum is made consistent again. One object, one
  // block: the final footer byte is that object's single posting delta.
  const ObjectId object(5);
  const CellId cell(1);
  const std::vector<core::RawDetection> detections = {
      {object, cell, Timestamp(100), Timestamp(110)},
      {object, cell, Timestamp(120), Timestamp(130)},
  };
  const std::string path = TempPath("forged_index.evst");
  ASSERT_TRUE(WriteDetectionStore(path, detections).ok());
  auto bytes_result = io::ReadFile(path);
  ASSERT_TRUE(bytes_result.ok());
  std::string bytes = *bytes_result;

  // Trailer: footer offset u64, length u64, checksum u64, magic.
  const std::size_t trailer_at = bytes.size() - kStoreTrailerSize;
  ByteReader trailer(bytes.data() + trailer_at, kStoreTrailerSize);
  const std::uint64_t footer_offset = *trailer.ReadU64();
  const std::uint64_t footer_length = *trailer.ReadU64();
  ASSERT_EQ(bytes[footer_offset + footer_length - 1], 0)  // posting delta 0
      << "test assumes the posting delta is the footer's last byte";
  bytes[footer_offset + footer_length - 1] = 9;  // block 9 of 1
  std::string fixed_checksum;
  PutU64(fixed_checksum,
         Checksum(std::string_view(bytes).substr(footer_offset,
                                                 footer_length)));
  bytes.replace(trailer_at + 16, 8, fixed_checksum);

  const std::string forged_path = TempPath("forged_index_variant.evst");
  ASSERT_TRUE(io::WriteFile(forged_path, bytes).ok());
  const auto reader = EventStoreReader::Open(forged_path);
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
  std::remove(forged_path.c_str());
}

// ---------------------------------------------------------------------------
// Corruption: truncation, bit flips, bad metadata. Never UB, always a
// Corruption status.
// ---------------------------------------------------------------------------

class EventStoreCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("corrupt.evst");
    const auto trajectories = BuildTrajectories(SimulatedDetections(23, 60));
    WriterOptions options;
    options.rows_per_block = 64;
    ASSERT_TRUE(WriteTrajectoryStore(path_, trajectories, options).ok());
    const auto bytes = io::ReadFile(path_);
    ASSERT_TRUE(bytes.ok());
    bytes_ = *bytes;
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Writes `content` to the store path and returns the status of a full
  /// open + checksum verify + scan.
  Status OpenAndScan(const std::string& content) {
    const std::string path = TempPath("corrupt_variant.evst");
    if (!io::WriteFile(path, content).ok()) {
      return Status::Internal("test setup: cannot write variant");
    }
    Status status = Status::OK();
    auto reader = EventStoreReader::Open(path);
    if (!reader.ok()) {
      status = reader.status();
    } else {
      status = reader->VerifyChecksums();
      if (status.ok()) status = reader->ReadTrajectories().status();
    }
    std::remove(path.c_str());
    return status;
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(EventStoreCorruptionTest, TruncationIsCorruption) {
  // Any prefix of a store file must fail cleanly — trailer magic, footer
  // bounds, or block checksum, depending on the cut.
  for (const double fraction : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    const auto cut = static_cast<std::size_t>(
        static_cast<double>(bytes_.size()) * fraction);
    const Status status = OpenAndScan(bytes_.substr(0, cut));
    EXPECT_EQ(status.code(), StatusCode::kCorruption) << "cut at " << cut;
  }
}

TEST_F(EventStoreCorruptionTest, BadChecksumIsCorruption) {
  // Flip one byte in the middle of the first block's payload.
  std::string flipped = bytes_;
  flipped[kStoreHeaderSize + 3] =
      static_cast<char>(flipped[kStoreHeaderSize + 3] ^ 0x40);
  EXPECT_EQ(OpenAndScan(flipped).code(), StatusCode::kCorruption);
}

TEST_F(EventStoreCorruptionTest, WrongVersionIsCorruption) {
  std::string flipped = bytes_;
  flipped[8] = 99;  // version field follows the 8-byte magic
  EXPECT_EQ(OpenAndScan(flipped).code(), StatusCode::kCorruption);
}

TEST_F(EventStoreCorruptionTest, WrongMagicIsCorruption) {
  std::string flipped = bytes_;
  flipped[0] = 'X';
  EXPECT_EQ(OpenAndScan(flipped).code(), StatusCode::kCorruption);
  // A non-store file entirely.
  EXPECT_EQ(OpenAndScan(std::string(4096, 'z')).code(),
            StatusCode::kCorruption);
}

TEST_F(EventStoreCorruptionTest, EveryByteFlipIsDetected) {
  // Single-byte corruption anywhere — header, block payloads, footer,
  // trailer — must surface as Corruption somewhere in open/verify/scan.
  const std::size_t step = std::max<std::size_t>(1, bytes_.size() / 64);
  for (std::size_t pos = 0; pos < bytes_.size(); pos += step) {
    std::string flipped = bytes_;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x20);
    const Status status = OpenAndScan(flipped);
    EXPECT_EQ(status.code(), StatusCode::kCorruption)
        << "undetected flip at byte " << pos;
  }
}

TEST_F(EventStoreCorruptionTest, MissingFileIsIOError) {
  EXPECT_EQ(EventStoreReader::Open("/nonexistent/store.evst").status().code(),
            StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// Writer misuse and stats.
// ---------------------------------------------------------------------------

TEST(EventStoreWriterTest, KindMismatchIsInvalidArgument) {
  const std::string path = TempPath("kind.evst");
  auto writer = EventStoreWriter::Create(path, StoreKind::kDetections);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ(writer->Append(std::vector<core::SemanticTrajectory>{}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(writer->Finish().ok());
  // And the matching reader-side check.
  const auto reader = EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->ReadTrajectories().status().code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(EventStoreWriterTest, EmptyTraceIsRejected) {
  const std::string path = TempPath("emptytrace.evst");
  auto writer = EventStoreWriter::Create(path, StoreKind::kTrajectories);
  ASSERT_TRUE(writer.ok());
  const std::vector<core::SemanticTrajectory> bad = {core::SemanticTrajectory(
      TrajectoryId(1), ObjectId(1), core::Trace(),
      core::AnnotationSet{{core::AnnotationKind::kActivity, "visit"}})};
  EXPECT_EQ(writer->Append(bad).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(EventStoreWriterTest, AppendAfterFinishFails) {
  const std::string path = TempPath("finished.evst");
  auto writer = EventStoreWriter::Create(path, StoreKind::kDetections);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Finish().ok());
  EXPECT_EQ(writer->Append(std::vector<core::RawDetection>{}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer->Finish().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(EventStoreWriterTest, StatsCountRowsBlocksAndBytes) {
  const auto trajectories = BuildTrajectories(SimulatedDetections(31));
  std::size_t rows = 0;
  for (const auto& t : trajectories) rows += t.trace().size();
  const std::string path = TempPath("stats.evst");
  WriterOptions options;
  options.rows_per_block = 100;
  auto writer =
      EventStoreWriter::Create(path, StoreKind::kTrajectories, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(trajectories).ok());
  ASSERT_TRUE(writer->Finish().ok());
  const StoreStats& stats = writer->stats();
  EXPECT_EQ(stats.rows, rows);
  EXPECT_EQ(stats.trajectories, trajectories.size());
  EXPECT_GE(stats.blocks, rows / 100 / 2);
  EXPECT_GT(stats.dictionary_entries, 0u);
  EXPECT_GT(stats.file_bytes, stats.payload_bytes);
  // The columnar event layout beats ~20 bytes/tuple on this workload.
  EXPECT_LT(stats.payload_bytes, rows * 20);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// v3 block codecs: property roundtrips across codecs and block sizes.
// ---------------------------------------------------------------------------

TEST(EventStoreCodecTest, EveryCodecRoundTripsRandomDatasets) {
  // Property: any (codec, block size) combination is lossless, for both
  // store kinds, and the reader reports version 3.
  for (const std::uint64_t seed : {4u, 77u}) {
    const auto detections = SimulatedDetections(seed, 80);
    const auto trajectories = BuildTrajectories(detections);
    for (const std::size_t rows_per_block : {16ul, 512ul, 8192ul}) {
      for (const BlockCodec codec :
           {BlockCodec::kRaw, BlockCodec::kPacked, BlockCodec::kLz,
            BlockCodec::kPackedLz}) {
        WriterOptions options;
        options.rows_per_block = rows_per_block;
        options.codec = codec;
        SCOPED_TRACE(std::string("codec=") + BlockCodecName(codec) +
                     " rpb=" + std::to_string(rows_per_block));

        const std::string traj_path = TempPath("codec_traj.evst");
        ASSERT_TRUE(WriteTrajectoryStore(traj_path, trajectories,
                                         options).ok());
        const auto traj_reader = EventStoreReader::Open(traj_path);
        ASSERT_TRUE(traj_reader.ok()) << traj_reader.status();
        EXPECT_EQ(traj_reader->version(), 3u);
        EXPECT_TRUE(traj_reader->VerifyChecksums().ok());
        const auto restored = traj_reader->ReadTrajectories();
        ASSERT_TRUE(restored.ok()) << restored.status();
        ExpectTrajectoriesEqual(trajectories, *restored);
        std::remove(traj_path.c_str());

        const std::string det_path = TempPath("codec_det.evst");
        ASSERT_TRUE(WriteDetectionStore(det_path, detections, options).ok());
        const auto det_reader = EventStoreReader::Open(det_path);
        ASSERT_TRUE(det_reader.ok()) << det_reader.status();
        const auto det_restored = det_reader->ReadDetections();
        ASSERT_TRUE(det_restored.ok()) << det_restored.status();
        ASSERT_EQ(det_restored->size(), detections.size());
        std::remove(det_path.c_str());
      }
    }
  }
}

TEST(EventStoreCodecTest, CompressedCodecsShrinkThePayload) {
  const auto trajectories = BuildTrajectories(SimulatedDetections(8));
  std::uint64_t payload_bytes[4] = {0, 0, 0, 0};
  for (int c = 0; c <= 3; ++c) {
    const std::string path = TempPath("codec_size.evst");
    WriterOptions options;
    options.codec = static_cast<BlockCodec>(c);
    auto writer =
        EventStoreWriter::Create(path, StoreKind::kTrajectories, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(trajectories).ok());
    ASSERT_TRUE(writer->Finish().ok());
    payload_bytes[c] = writer->stats().payload_bytes;
    std::remove(path.c_str());
  }
  // Every compressed codec beats raw; the LZ family beats plain packing
  // on this workload (the measured ordering the default codec pins).
  EXPECT_LT(payload_bytes[1], payload_bytes[0]);
  EXPECT_LT(payload_bytes[2], payload_bytes[1]);
  EXPECT_LT(payload_bytes[3], payload_bytes[1]);
}

TEST(EventStoreCodecTest, ParallelCodecEncodingIsByteIdentical) {
  // The determinism contract extends to compressed blocks: encode on 1
  // vs several workers, compare whole files.
  const auto trajectories = BuildTrajectories(SimulatedDetections(6));
  for (const BlockCodec codec : {BlockCodec::kLz, BlockCodec::kPackedLz}) {
    const std::string seq_path = TempPath("codec_seq.evst");
    WriterOptions seq_options;
    seq_options.rows_per_block = 64;
    seq_options.codec = codec;
    ASSERT_TRUE(WriteTrajectoryStore(seq_path, trajectories,
                                     seq_options).ok());
    sched::Executor executor(4);
    const std::string par_path = TempPath("codec_par.evst");
    WriterOptions par_options = seq_options;
    par_options.executor = &executor;
    ASSERT_TRUE(WriteTrajectoryStore(par_path, trajectories,
                                     par_options).ok());
    const auto seq_bytes = io::ReadFile(seq_path);
    const auto par_bytes = io::ReadFile(par_path);
    ASSERT_TRUE(seq_bytes.ok());
    ASSERT_TRUE(par_bytes.ok());
    EXPECT_EQ(*seq_bytes, *par_bytes) << BlockCodecName(codec);
    std::remove(seq_path.c_str());
    std::remove(par_path.c_str());
  }
}

// ---------------------------------------------------------------------------
// Version compatibility: v3 readers accept v1/v2 files, and the v3
// writer reproduces the old writers byte for byte.
// ---------------------------------------------------------------------------

/// A fixed dataset for the byte-identity goldens: 7 trajectories over 5
/// objects with shared and distinct annotations, an inferred tuple, and
/// named transitions. Changing this fixture invalidates the pinned
/// checksums below — regenerate them rather than editing either alone.
std::vector<core::SemanticTrajectory> GoldenTrajectories() {
  std::vector<core::SemanticTrajectory> out;
  for (int t = 0; t < 7; ++t) {
    core::Trace trace;
    const int rows = 2 + (t * 3) % 5;
    const std::int64_t base = 1000000 + t * 7777;
    for (int r = 0; r < rows; ++r) {
      core::PresenceInterval p;
      p.transition = (r % 3 == 1) ? BoundaryId(40 + r) : BoundaryId();
      p.cell = CellId((t * 11 + r * 5) % 23);
      p.interval =
          qsr::TimeInterval::Make(Timestamp(base + r * 60),
                                  Timestamp(base + r * 60 + 30 + r))
              .value();
      if (r % 2 == 0) {
        p.annotations.Add({core::AnnotationKind::kActivity, "stop"});
      } else {
        p.annotations.Add({core::AnnotationKind::kBehavior, "move"});
      }
      if (t % 3 == 0 && r == 0) {
        p.annotations.Add({core::AnnotationKind::kGoal, "visit"});
      }
      if (r % 4 == 3) {
        p.transition_annotations.Add({core::AnnotationKind::kOther, "door"});
      }
      p.inferred = (t == 2 && r == 1);
      trace.Append(p);
    }
    core::AnnotationSet traj_ann;
    traj_ann.Add({core::AnnotationKind::kActivity, t % 2 ? "tour" : "work"});
    out.emplace_back(TrajectoryId(t), ObjectId(t % 5), std::move(trace),
                     std::move(traj_ann));
  }
  return out;
}

TEST(EventStoreCompatTest, V2EmissionIsByteIdenticalToPinnedGoldens) {
  // The compatibility lever: format_version = 2 must reproduce the old
  // writers exactly. These checksums were generated by the pre-v3
  // writer over GoldenTrajectories(); write_object_index = false
  // downgrades to a version-1 file, covering both old formats.
  struct Golden {
    std::size_t rows_per_block;
    bool object_index;
    std::uint64_t checksum;
  };
  const Golden goldens[] = {
      {3, true, 0x72c00a0f6e4a2625ull},
      {3, false, 0x71df166c06b47831ull},
      {4096, true, 0xc24024e8c4324573ull},
      {4096, false, 0x6bf1f71ef7d37ad1ull},
  };
  const auto trajectories = GoldenTrajectories();
  for (const Golden& golden : goldens) {
    WriterOptions options;
    options.rows_per_block = golden.rows_per_block;
    options.write_object_index = golden.object_index;
    options.format_version = 2;
    const std::string path = TempPath("golden.evst");
    ASSERT_TRUE(WriteTrajectoryStore(path, trajectories, options).ok());
    const auto bytes = io::ReadFile(path);
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(Checksum(*bytes), golden.checksum)
        << "rpb=" << golden.rows_per_block
        << " index=" << golden.object_index;
    // And the v3 reader still consumes the old bytes losslessly.
    const auto reader = EventStoreReader::Open(path);
    ASSERT_TRUE(reader.ok()) << reader.status();
    EXPECT_EQ(reader->version(), golden.object_index ? 2u : 1u);
    EXPECT_FALSE(reader->has_annotation_bitmaps());
    const auto restored = reader->ReadTrajectories();
    ASSERT_TRUE(restored.ok()) << restored.status();
    ExpectTrajectoriesEqual(trajectories, *restored);
    std::remove(path.c_str());
  }
}

TEST(EventStoreCompatTest, OldVersionsRejectNonRawCodecs) {
  WriterOptions options;
  options.format_version = 2;
  options.codec = BlockCodec::kLz;
  const std::string path = TempPath("v2_codec.evst");
  // Create() normalizes the codec away rather than writing a v2 file
  // with v3 payload framing.
  auto writer =
      EventStoreWriter::Create(path, StoreKind::kTrajectories, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(GoldenTrajectories()).ok());
  ASSERT_TRUE(writer->Finish().ok());
  const auto reader = EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->version(), 2u);
  const auto restored = reader->ReadTrajectories();
  ASSERT_TRUE(restored.ok());
  ExpectTrajectoriesEqual(GoldenTrajectories(), *restored);
  std::remove(path.c_str());
}

TEST(EventStoreCompatTest, BadFormatVersionIsInvalidArgument) {
  WriterOptions options;
  options.format_version = 4;
  EXPECT_EQ(EventStoreWriter::Create(TempPath("v4.evst"),
                                     StoreKind::kTrajectories, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  options.format_version = 0;
  EXPECT_EQ(EventStoreWriter::Create(TempPath("v0.evst"),
                                     StoreKind::kTrajectories, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// v3 corruption: forged codec bytes behind a *valid* checksum, so the
// failures exercise the block decoder rather than the checksum verify.
// ---------------------------------------------------------------------------

class EventStoreCodecCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A detection store keeps the footer trivially parseable (empty
    // annotation dictionary), which the byte surgery below relies on.
    path_ = TempPath("codec_corrupt.evst");
    WriterOptions options;
    options.codec = BlockCodec::kLz;
    ASSERT_TRUE(
        WriteDetectionStore(path_, SimulatedDetections(17, 60), options)
            .ok());
    const auto bytes = io::ReadFile(path_);
    ASSERT_TRUE(bytes.ok());
    bytes_ = *bytes;

    // Locate block 0's payload and its checksum slot in the footer.
    const std::size_t trailer_at = bytes_.size() - kStoreTrailerSize;
    ByteReader trailer(bytes_.data() + trailer_at, kStoreTrailerSize);
    footer_offset_ = *trailer.ReadU64();
    footer_length_ = *trailer.ReadU64();
    ByteReader footer(bytes_.data() + footer_offset_, footer_length_);
    ASSERT_EQ(*footer.ReadVarint64(), 0u) << "detection stores have an "
                                             "empty annotation dictionary";
    ASSERT_GT(*footer.ReadVarint64(), 0u);  // block count
    block_offset_ = *footer.ReadVarint64();
    block_length_ = *footer.ReadVarint64();
    (void)*footer.ReadVarint64();   // rows
    (void)*footer.ReadVarint64();   // trajectories
    (void)*footer.ReadSVarint64();  // min_object
    (void)*footer.ReadSVarint64();  // max_object
    (void)*footer.ReadSVarint64();  // min_time
    (void)*footer.ReadSVarint64();  // max_time
    checksum_at_ =
        footer_offset_ + (footer_length_ - footer.remaining()) - 8;
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Overwrites payload bytes in place, then repairs the block checksum
  /// and the footer checksum so only the decoder can notice.
  Status MutatePayloadAndScan(std::size_t payload_pos,
                              std::string_view new_bytes) {
    std::string bytes = bytes_;
    bytes.replace(block_offset_ + payload_pos, new_bytes.size(), new_bytes);
    std::string block_checksum;
    PutU64(block_checksum,
           Checksum(std::string_view(bytes).substr(block_offset_,
                                                   block_length_)));
    bytes.replace(checksum_at_, 8, block_checksum);
    std::string footer_checksum;
    PutU64(footer_checksum,
           Checksum(std::string_view(bytes).substr(footer_offset_,
                                                   footer_length_)));
    bytes.replace(bytes.size() - kStoreTrailerSize + 16, 8,
                  footer_checksum);

    const std::string path = TempPath("codec_corrupt_variant.evst");
    Status status = io::WriteFile(path, bytes);
    if (!status.ok()) return status;
    auto reader = EventStoreReader::Open(path);
    if (reader.ok()) status = reader->ReadDetections().status();
    else status = reader.status();
    std::remove(path.c_str());
    return status;
  }

  std::string path_;
  std::string bytes_;
  std::uint64_t footer_offset_ = 0;
  std::uint64_t footer_length_ = 0;
  std::uint64_t block_offset_ = 0;
  std::uint64_t block_length_ = 0;
  std::size_t checksum_at_ = 0;
};

TEST_F(EventStoreCodecCorruptionTest, UnknownCodecIdIsCorruption) {
  // The codec id is the first varint of every v3 block payload.
  ASSERT_EQ(static_cast<unsigned char>(bytes_[block_offset_]),
            static_cast<unsigned char>(BlockCodec::kLz));
  EXPECT_EQ(MutatePayloadAndScan(0, "\x09").code(),
            StatusCode::kCorruption);
}

TEST_F(EventStoreCodecCorruptionTest, ForgedHugeRawSizeIsCorruption) {
  // Rewrite the raw-size varint to declare ~2^34 bytes: the decode
  // allocation cap (a function of the block's row count) must reject it
  // before any allocation happens.
  ASSERT_GT(block_length_, 6u);
  EXPECT_EQ(MutatePayloadAndScan(1, "\xff\xff\xff\xff\x3f").code(),
            StatusCode::kCorruption);
}

TEST_F(EventStoreCodecCorruptionTest, ShrunkenRawSizeIsCorruption) {
  // A raw size smaller than what the stream decodes to trips the LZ
  // overflow guards (a truncated-payload shape, seen from the other
  // side: stream and size no longer agree).
  EXPECT_EQ(MutatePayloadAndScan(1, std::string_view("\x00", 1)).code(),
            StatusCode::kCorruption);
}

TEST_F(EventStoreCodecCorruptionTest, BitFlippedStreamNeverMisbehaves) {
  // Arbitrary flips inside the compressed stream, hidden behind a
  // repaired checksum: decode must end in OK or Corruption, never UB
  // (the sanitizer matrix runs this test to prove the "never UB" half).
  const std::size_t step = std::max<std::size_t>(1, block_length_ / 48);
  for (std::size_t pos = 2; pos < block_length_; pos += step) {
    const char flipped =
        static_cast<char>(bytes_[block_offset_ + pos] ^ 0x11);
    const Status status =
        MutatePayloadAndScan(pos, std::string_view(&flipped, 1));
    EXPECT_TRUE(status.ok() || status.code() == StatusCode::kCorruption)
        << "flip at payload byte " << pos << ": " << status;
  }
}

// ---------------------------------------------------------------------------
// Annotation bitmaps: pruning soundness and forged-section rejection.
// ---------------------------------------------------------------------------

TEST(EventStoreAnnotationBitmapTest, PruningIsASoundOverApproximation) {
  // For every annotation term in the store and every block: when the
  // bitmap says "cannot contain", no trajectory in that block carries
  // the term (anywhere — trajectory, tuple, or transition level).
  const auto trajectories = BuildTrajectories(SimulatedDetections(13));
  const std::string path = TempPath("bitmap_sound.evst");
  WriterOptions options;
  options.rows_per_block = 48;  // many blocks
  ASSERT_TRUE(WriteTrajectoryStore(path, trajectories, options).ok());
  const auto reader = EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  ASSERT_TRUE(reader->has_annotation_bitmaps());
  ASSERT_GT(reader->num_blocks(), 3u);

  // Collect every distinct term in the dataset.
  std::vector<std::pair<core::AnnotationKind, std::string>> terms;
  auto add_terms = [&terms](const core::AnnotationSet& set) {
    for (const auto& a : set.annotations()) {
      terms.emplace_back(a.kind, a.value);
    }
  };
  for (const auto& t : trajectories) {
    add_terms(t.annotations());
    for (std::size_t k = 0; k < t.trace().size(); ++k) {
      add_terms(t.trace().at(k).annotations);
      add_terms(t.trace().at(k).transition_annotations);
    }
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  ASSERT_GT(terms.size(), 2u);

  std::size_t pruned = 0;
  for (std::size_t i = 0; i < reader->num_blocks(); ++i) {
    std::vector<core::SemanticTrajectory> block_trajectories;
    ScanOptions all;
    ASSERT_TRUE(
        reader->ReadTrajectoryBlock(i, all, block_trajectories).ok());
    for (const auto& [kind, value] : terms) {
      if (reader->BlockMayContainAnnotation(i, kind, value)) continue;
      ++pruned;
      for (const auto& t : block_trajectories) {
        EXPECT_FALSE(t.annotations().Contains({kind, value}));
        for (std::size_t k = 0; k < t.trace().size(); ++k) {
          EXPECT_FALSE(
              t.trace().at(k).annotations.Contains({kind, value}));
          EXPECT_FALSE(t.trace().at(k).transition_annotations.Contains(
              {kind, value}));
        }
      }
    }
  }
  // The dataset's rarer terms (e.g. per-zone attributes) must actually
  // prune somewhere, or the bitmaps are vacuous.
  EXPECT_GT(pruned, 0u);

  // A term absent from the file prunes every block.
  for (std::size_t i = 0; i < reader->num_blocks(); ++i) {
    EXPECT_FALSE(reader->BlockMayContainAnnotation(
        i, core::AnnotationKind::kGoal, "no-such-term"));
  }
  std::remove(path.c_str());
}

TEST(EventStoreAnnotationBitmapTest, DisabledBitmapsFallBackToMaybe) {
  const auto trajectories = BuildTrajectories(SimulatedDetections(13, 40));
  const std::string path = TempPath("bitmap_off.evst");
  WriterOptions options;
  options.write_annotation_bitmaps = false;
  ASSERT_TRUE(WriteTrajectoryStore(path, trajectories, options).ok());
  const auto reader = EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_FALSE(reader->has_annotation_bitmaps());
  // Without bitmaps every block answers "maybe" — the sound default.
  EXPECT_TRUE(reader->BlockMayContainAnnotation(
      0, core::AnnotationKind::kGoal, "no-such-term"));
  std::remove(path.c_str());
}

TEST(EventStoreAnnotationBitmapTest, ForgedBitmapSectionIsCorruption) {
  // One trajectory, one annotation term, one block: the bitmap section
  // is the footer's tail with a known byte layout, so each structural
  // field can be forged precisely (footer checksum repaired each time).
  core::Trace trace;
  core::PresenceInterval p;
  p.cell = CellId(1);
  p.interval = qsr::TimeInterval::Make(Timestamp(10), Timestamp(20)).value();
  trace.Append(p);
  const std::vector<core::SemanticTrajectory> one = {core::SemanticTrajectory(
      TrajectoryId(1), ObjectId(1), std::move(trace),
      core::AnnotationSet{{core::AnnotationKind::kGoal, "z"}})};
  const std::string path = TempPath("bitmap_forge.evst");
  ASSERT_TRUE(WriteTrajectoryStore(path, one).ok());
  auto bytes_result = io::ReadFile(path);
  ASSERT_TRUE(bytes_result.ok());
  const std::string bytes = *bytes_result;
  const std::size_t trailer_at = bytes.size() - kStoreTrailerSize;
  ByteReader trailer(bytes.data() + trailer_at, kStoreTrailerSize);
  const std::uint64_t footer_offset = *trailer.ReadU64();
  const std::uint64_t footer_length = *trailer.ReadU64();
  const std::size_t footer_end = footer_offset + footer_length;
  // Section tail layout: ... term_count=1, kind, value_len=1, 'z',
  // block_count=1, bitmap byte 0x01.
  ASSERT_EQ(bytes[footer_end - 1], 0x01);  // bitmap: bit 0 set
  ASSERT_EQ(bytes[footer_end - 2], 0x01);  // block count 1
  ASSERT_EQ(bytes[footer_end - 3], 'z');   // the term value
  ASSERT_EQ(bytes[footer_end - 4], 0x01);  // value length 1
  ASSERT_EQ(bytes[footer_end - 5],
            static_cast<char>(core::AnnotationKind::kGoal));
  ASSERT_EQ(bytes[footer_end - 6], 0x01);  // term count 1

  auto forge = [&](std::size_t back_offset, unsigned char value) {
    std::string forged = bytes;
    forged[footer_end - back_offset] = static_cast<char>(value);
    std::string fixed;
    PutU64(fixed, Checksum(std::string_view(forged).substr(footer_offset,
                                                           footer_length)));
    forged.replace(trailer_at + 16, 8, fixed);
    const std::string forged_path = TempPath("bitmap_forge_variant.evst");
    EXPECT_TRUE(io::WriteFile(forged_path, forged).ok());
    const Status status = EventStoreReader::Open(forged_path).status();
    std::remove(forged_path.c_str());
    return status;
  };
  // Block count that disagrees with the block index.
  EXPECT_EQ(forge(2, 7).code(), StatusCode::kCorruption);
  // Term count pointing past the section's bytes.
  EXPECT_EQ(forge(6, 200).code(), StatusCode::kCorruption);
  // An annotation kind the enum does not define.
  EXPECT_EQ(forge(5, 99).code(), StatusCode::kCorruption);
  // Value length overrunning the section.
  EXPECT_EQ(forge(4, 120).code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Multi-object scans.
// ---------------------------------------------------------------------------

TEST(EventStoreScanTest, MultiObjectScanEqualsPostFilterUnion) {
  const auto trajectories = BuildTrajectories(SimulatedDetections(9));
  const std::string path = TempPath("multi_object.evst");
  WriterOptions options;
  options.rows_per_block = 32;
  ASSERT_TRUE(WriteTrajectoryStore(path, trajectories, options).ok());
  const auto reader = EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();

  // Three present objects plus one absent, deliberately unsorted.
  std::vector<ObjectId> targets = {
      trajectories[trajectories.size() / 4].object(),
      trajectories[1].object(), ObjectId(1u << 30),
      trajectories[trajectories.size() - 2].object()};
  ScanOptions scan;
  scan.objects = targets;
  std::sort(scan.objects.begin(), scan.objects.end());
  scan.objects.erase(std::unique(scan.objects.begin(), scan.objects.end()),
                     scan.objects.end());

  const auto scanned = reader->ReadTrajectories(scan);
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  std::vector<core::SemanticTrajectory> expected;
  for (const auto& t : trajectories) {
    if (std::binary_search(scan.objects.begin(), scan.objects.end(),
                           t.object())) {
      expected.push_back(t);
    }
  }
  ASSERT_FALSE(expected.empty());
  ExpectTrajectoriesEqual(expected, *scanned);

  // The posting-list union prunes: candidate blocks are exactly the
  // union of each object's candidates, and fewer than the whole file.
  const auto candidates = reader->CandidateBlocks(scan);
  std::vector<std::size_t> unioned;
  for (const ObjectId object : scan.objects) {
    const auto per_object = reader->CandidateBlocks(
        ScanOptions::ForObject(object));
    unioned.insert(unioned.end(), per_object.begin(), per_object.end());
  }
  std::sort(unioned.begin(), unioned.end());
  unioned.erase(std::unique(unioned.begin(), unioned.end()), unioned.end());
  EXPECT_EQ(candidates, unioned);
  EXPECT_LT(candidates.size(), reader->num_blocks());
  std::remove(path.c_str());
}

TEST(EventStoreScanTest, EmptyObjectListScansEverything) {
  const auto trajectories = BuildTrajectories(SimulatedDetections(9, 40));
  const std::string path = TempPath("all_objects.evst");
  ASSERT_TRUE(WriteTrajectoryStore(path, trajectories).ok());
  const auto reader = EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  const auto scanned = reader->ReadTrajectories(ScanOptions{});
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  ExpectTrajectoriesEqual(trajectories, *scanned);
  std::remove(path.c_str());
}

TEST(EventStoreReaderTest, MappedOnPosix) {
  const std::string path = TempPath("mapped.evst");
  ASSERT_TRUE(WriteDetectionStore(path, SimulatedDetections(2)).ok());
  const auto reader = EventStoreReader::Open(path);
  ASSERT_TRUE(reader.ok());
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(reader->is_mapped());
#endif
  EXPECT_TRUE(reader->VerifyChecksums().ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sitm::storage
