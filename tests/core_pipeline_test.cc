// BatchPipeline determinism: for the same input, the batched parallel
// build -> enrich -> infer must produce results byte-identical to the
// sequential reference path, at every worker count.
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/builder.h"
#include "core/enrichment.h"
#include "core/inference.h"
#include "louvre/museum.h"
#include "louvre/simulator.h"
#include "sched/executor.h"

namespace sitm::core {
namespace {

const louvre::LouvreMap& Map() {
  static const louvre::LouvreMap* map = [] {
    auto result = louvre::LouvreMap::Build();
    EXPECT_TRUE(result.ok()) << result.status();
    return new louvre::LouvreMap(std::move(result).value());
  }();
  return *map;
}

const indoor::Nrg& ZoneGraph() {
  return Map().graph().FindLayer(Map().zone_layer()).value()->graph();
}

std::vector<RawDetection> LouvreDetections(int visitors, std::uint64_t seed) {
  louvre::SimulatorOptions options;
  options.num_visitors = visitors;
  options.num_returning = visitors * 2 / 5;
  options.num_third_visits = visitors / 6;
  options.num_detections =
      (visitors + options.num_returning + options.num_third_visits) * 5;
  options.seed = seed;
  louvre::VisitSimulator simulator(&Map(), options);
  auto dataset = simulator.Generate();
  EXPECT_TRUE(dataset.ok()) << dataset.status();
  return dataset->ToRawDetections();
}

std::vector<EnrichmentRule> Rules() {
  return {
      AnnotateStopsAndMoves(Duration::Minutes(5),
                            {AnnotationKind::kBehavior, "stop"},
                            {AnnotationKind::kBehavior, "move"}),
      AnnotateWhereAttribute("requiresTicket", "true",
                             {AnnotationKind::kOther, "ticketed"}),
      AnnotateFinalExit(Map().exit_zones(),
                        {AnnotationKind::kGoal, "leaving"}),
  };
}

PipelineOptions BaseOptions() {
  PipelineOptions options;
  options.builder.graph = &ZoneGraph();
  options.rules = Rules();
  options.infer_hidden_passages = true;
  return options;
}

/// The unbatched path the pipeline must replicate exactly: whole-input
/// TrajectoryBuilder, then per-trajectory enrichment and inference.
std::vector<SemanticTrajectory> SequentialReference(
    std::vector<RawDetection> detections, const PipelineOptions& options,
    PipelineReport* report) {
  TrajectoryBuilder builder(options.builder);
  auto built = builder.Build(std::move(detections));
  EXPECT_TRUE(built.ok()) << built.status();
  std::vector<SemanticTrajectory> out = std::move(built).value();
  report->build = builder.report();
  for (SemanticTrajectory& t : out) {
    if (!options.rules.empty()) {
      auto enriched = EnrichTrajectory(&t, ZoneGraph(), options.rules);
      EXPECT_TRUE(enriched.ok()) << enriched.status();
      report->enrichment.tuples_touched += enriched->tuples_touched;
      report->enrichment.annotations_added += enriched->annotations_added;
    }
    if (options.infer_hidden_passages) {
      auto inferred = InferHiddenPassages(t, ZoneGraph(), options.inference);
      EXPECT_TRUE(inferred.ok()) << inferred.status();
      t = std::move(inferred->first);
      report->inference.inserted += inferred->second.inserted;
      report->inference.already_consistent +=
          inferred->second.already_consistent;
      report->inference.ambiguous += inferred->second.ambiguous;
      report->inference.disconnected += inferred->second.disconnected;
    }
  }
  return out;
}

void ExpectIdentical(const std::vector<SemanticTrajectory>& expected,
                     const std::vector<SemanticTrajectory>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const SemanticTrajectory& e = expected[i];
    const SemanticTrajectory& a = actual[i];
    ASSERT_EQ(e.id(), a.id()) << i;
    ASSERT_EQ(e.object(), a.object()) << i;
    ASSERT_EQ(e.annotations(), a.annotations()) << i;
    ASSERT_EQ(e.trace().intervals(), a.trace().intervals())
        << "trajectory " << i << " (#" << e.id().value() << ")";
  }
}

void ExpectSameReport(const PipelineReport& expected,
                      const PipelineReport& actual) {
  EXPECT_EQ(expected.build.records_in, actual.build.records_in);
  EXPECT_EQ(expected.build.zero_duration_dropped,
            actual.build.zero_duration_dropped);
  EXPECT_EQ(expected.build.overlaps_clipped, actual.build.overlaps_clipped);
  EXPECT_EQ(expected.build.contained_dropped,
            actual.build.contained_dropped);
  EXPECT_EQ(expected.build.graph_inconsistent_dropped,
            actual.build.graph_inconsistent_dropped);
  EXPECT_EQ(expected.build.merged_same_cell, actual.build.merged_same_cell);
  EXPECT_EQ(expected.build.objects_seen, actual.build.objects_seen);
  EXPECT_EQ(expected.build.trajectories_out, actual.build.trajectories_out);
  EXPECT_EQ(expected.enrichment.tuples_touched,
            actual.enrichment.tuples_touched);
  EXPECT_EQ(expected.enrichment.annotations_added,
            actual.enrichment.annotations_added);
  EXPECT_EQ(expected.inference.inserted, actual.inference.inserted);
  EXPECT_EQ(expected.inference.already_consistent,
            actual.inference.already_consistent);
  EXPECT_EQ(expected.inference.ambiguous, actual.inference.ambiguous);
  EXPECT_EQ(expected.inference.disconnected, actual.inference.disconnected);
}

TEST(BatchPipelineTest, MatchesSequentialReferenceAtEveryPoolSize) {
  const std::vector<RawDetection> detections = LouvreDetections(120, 4242);
  PipelineReport reference_report;
  const std::vector<SemanticTrajectory> reference =
      SequentialReference(detections, BaseOptions(), &reference_report);
  ASSERT_FALSE(reference.empty());

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    sched::Executor::DefaultConcurrency()}) {
    sched::Executor executor(threads);
    for (const std::size_t per_shard : {std::size_t{1}, std::size_t{7},
                                        std::size_t{1000}}) {
      for (const bool barrier : {false, true}) {
        PipelineOptions options = BaseOptions();
        options.executor = &executor;
        options.objects_per_shard = per_shard;
        options.barrier_stages = barrier;
        BatchPipeline pipeline(options);
        auto result = pipeline.Run(detections);
        ASSERT_TRUE(result.ok())
            << result.status() << " threads=" << threads
            << " per_shard=" << per_shard << " barrier=" << barrier;
        ExpectIdentical(reference, *result);
        ExpectSameReport(reference_report, pipeline.report());
        EXPECT_EQ(pipeline.report().shards,
                  (pipeline.report().build.objects_seen + per_shard - 1) /
                      per_shard);
      }
    }
  }
}

TEST(BatchPipelineTest, NullExecutorIsTheSequentialPath) {
  const std::vector<RawDetection> detections = LouvreDetections(60, 99);
  PipelineReport reference_report;
  const std::vector<SemanticTrajectory> reference =
      SequentialReference(detections, BaseOptions(), &reference_report);
  BatchPipeline pipeline(BaseOptions());
  auto result = pipeline.Run(detections);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectIdentical(reference, *result);
  ExpectSameReport(reference_report, pipeline.report());
}

TEST(BatchPipelineTest, BuildOnlyModeSkipsEnrichAndInfer) {
  const std::vector<RawDetection> detections = LouvreDetections(40, 7);
  PipelineOptions options;  // no graph, no rules, no inference
  sched::Executor executor(2);
  options.executor = &executor;
  BatchPipeline pipeline(options);
  auto result = pipeline.Run(detections);
  ASSERT_TRUE(result.ok()) << result.status();

  TrajectoryBuilder builder{BuilderOptions{}};
  auto reference = builder.Build(detections);
  ASSERT_TRUE(reference.ok());
  ExpectIdentical(*reference, *result);
  EXPECT_EQ(pipeline.report().enrichment.annotations_added, 0u);
  EXPECT_EQ(pipeline.report().inference.inserted, 0);
}

TEST(BatchPipelineTest, HonorsFirstTrajectoryId) {
  const std::vector<RawDetection> detections = LouvreDetections(30, 11);
  PipelineOptions options = BaseOptions();
  options.builder.first_trajectory_id = TrajectoryId(500);
  sched::Executor executor(2);
  options.executor = &executor;
  options.objects_per_shard = 3;
  BatchPipeline pipeline(options);
  auto result = pipeline.Run(detections);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->empty());
  for (std::size_t i = 0; i < result->size(); ++i) {
    EXPECT_EQ((*result)[i].id().value(),
              500 + static_cast<std::int64_t>(i));
  }
}

TEST(BatchPipelineTest, EmptyInputYieldsEmptyOutput) {
  BatchPipeline pipeline(BaseOptions());
  auto result = pipeline.Run({});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(pipeline.report().shards, 0u);
  EXPECT_EQ(pipeline.report().build.records_in, 0u);
}

TEST(BatchPipelineTest, RejectsEmptyDefaultAnnotations) {
  PipelineOptions options = BaseOptions();
  options.builder.default_annotations = AnnotationSet{};
  BatchPipeline pipeline(options);
  auto result = pipeline.Run(LouvreDetections(10, 1));
  EXPECT_FALSE(result.ok());
}

TEST(BatchPipelineTest, RejectsRulesWithoutGraph) {
  PipelineOptions options;
  options.rules = Rules();  // but neither builder.graph nor enrichment_graph
  BatchPipeline pipeline(options);
  auto result = pipeline.Run(LouvreDetections(10, 2));
  EXPECT_FALSE(result.ok());
}

TEST(BatchPipelineTest, RejectsInvalidDetectionIds) {
  PipelineOptions options;
  sched::Executor executor(2);
  options.executor = &executor;
  BatchPipeline pipeline(options);
  std::vector<RawDetection> detections{
      RawDetection(ObjectId(1), CellId::Invalid(), Timestamp(0),
                   Timestamp(10))};
  auto result = pipeline.Run(std::move(detections));
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace sitm::core
