// TaskGraph construction and validation: id assignment, edge
// bounds/self-edge rejection, Kahn validation (DAG vs cycle), barrier
// nodes, and the deterministic inline execution path that nullptr
// executors flow through.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/task_graph.h"
#include "base/task_runner.h"

namespace sitm {
namespace {

TEST(TaskGraphTest, AddTaskAssignsSequentialIds) {
  TaskGraph graph;
  EXPECT_EQ(graph.size(), 0u);
  EXPECT_EQ(graph.AddTask("a", [] {}), 0u);
  EXPECT_EQ(graph.AddTask("b", [] {}), 1u);
  EXPECT_EQ(graph.AddTask("c", [] {}), 2u);
  EXPECT_EQ(graph.size(), 3u);
}

TEST(TaskGraphTest, AddEdgeRejectsOutOfBoundsAndSelfEdges) {
  TaskGraph graph;
  const TaskId a = graph.AddTask("a", [] {});
  const TaskId b = graph.AddTask("b", [] {});
  EXPECT_TRUE(graph.AddEdge(a, b).ok());
  EXPECT_FALSE(graph.AddEdge(a, a).ok());
  EXPECT_FALSE(graph.AddEdge(a, 99).ok());
  EXPECT_FALSE(graph.AddEdge(99, b).ok());
}

TEST(TaskGraphTest, ValidateAcceptsEmptyAndDagGraphs) {
  TaskGraph empty;
  EXPECT_TRUE(empty.Validate().ok());

  TaskGraph diamond;
  const TaskId a = diamond.AddTask("a", [] {});
  const TaskId b = diamond.AddTask("b", [] {});
  const TaskId c = diamond.AddTask("c", [] {});
  const TaskId d = diamond.AddTask("d", [] {});
  ASSERT_TRUE(diamond.AddEdge(a, b).ok());
  ASSERT_TRUE(diamond.AddEdge(a, c).ok());
  ASSERT_TRUE(diamond.AddEdge(b, d).ok());
  ASSERT_TRUE(diamond.AddEdge(c, d).ok());
  EXPECT_TRUE(diamond.Validate().ok());
}

TEST(TaskGraphTest, ValidateRejectsCycles) {
  TaskGraph graph;
  const TaskId a = graph.AddTask("a", [] {});
  const TaskId b = graph.AddTask("b", [] {});
  const TaskId c = graph.AddTask("c", [] {});
  ASSERT_TRUE(graph.AddEdge(a, b).ok());
  ASSERT_TRUE(graph.AddEdge(b, c).ok());
  ASSERT_TRUE(graph.AddEdge(c, a).ok());
  const Status status = graph.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("cycle"), std::string::npos)
      << status.message();
}

TEST(TaskGraphTest, DuplicateEdgesAreHarmless) {
  TaskGraph graph;
  int order = 0;
  int at_a = -1;
  int at_b = -1;
  const TaskId a = graph.AddTask("a", [&] { at_a = order++; });
  const TaskId b = graph.AddTask("b", [&] { at_b = order++; });
  ASSERT_TRUE(graph.AddEdge(a, b).ok());
  ASSERT_TRUE(graph.AddEdge(a, b).ok());
  EXPECT_TRUE(graph.Validate().ok());
  ASSERT_TRUE(RunGraphInline(std::move(graph)).ok());
  EXPECT_EQ(at_a, 0);
  EXPECT_EQ(at_b, 1);
}

TEST(TaskGraphTest, BarrierNodesCarryNoBodyButStillOrder) {
  // A null fn is a pure synchronization point (what the pipeline's
  // barrier_stages ablation inserts between build and enrich).
  TaskGraph graph;
  std::vector<std::string> sequence;
  const TaskId before = graph.AddTask("before", [&] {
    sequence.push_back("before");
  });
  const TaskId barrier = graph.AddTask("barrier", nullptr);
  const TaskId after = graph.AddTask("after", [&] {
    sequence.push_back("after");
  });
  ASSERT_TRUE(graph.AddEdge(before, barrier).ok());
  ASSERT_TRUE(graph.AddEdge(barrier, after).ok());
  ASSERT_TRUE(RunGraphInline(std::move(graph)).ok());
  EXPECT_EQ(sequence, (std::vector<std::string>{"before", "after"}));
}

TEST(TaskGraphTest, RunGraphInlineExecutesInMinIdTopologicalOrder) {
  // Among simultaneously-ready tasks the inline path picks the lowest
  // id — the deterministic order sequential callers observe.
  TaskGraph graph;
  std::vector<TaskId> order;
  const TaskId a = graph.AddTask("a", [&] { order.push_back(0); });
  const TaskId b = graph.AddTask("b", [&] { order.push_back(1); });
  const TaskId c = graph.AddTask("c", [&] { order.push_back(2); });
  const TaskId d = graph.AddTask("d", [&] { order.push_back(3); });
  // d gates on b only; a, b, c start ready.
  ASSERT_TRUE(graph.AddEdge(b, d).ok());
  (void)a;
  (void)c;
  ASSERT_TRUE(RunGraphInline(std::move(graph)).ok());
  EXPECT_EQ(order, (std::vector<TaskId>{0, 1, 2, 3}));
}

TEST(TaskGraphTest, RunGraphInlineRejectsCyclesBeforeRunningAnything) {
  TaskGraph graph;
  int ran = 0;
  const TaskId a = graph.AddTask("a", [&] { ++ran; });
  const TaskId b = graph.AddTask("b", [&] { ++ran; });
  ASSERT_TRUE(graph.AddEdge(a, b).ok());
  ASSERT_TRUE(graph.AddEdge(b, a).ok());
  EXPECT_FALSE(RunGraphInline(std::move(graph)).ok());
  EXPECT_EQ(ran, 0);
}

TEST(TaskGraphTest, RunGraphInlineReportsLowestIdFailureAndFinishesRest) {
  TaskGraph graph;
  int ran = 0;
  graph.AddTask("fine", [&] { ++ran; });
  graph.AddTask("first-boom", [] { throw std::runtime_error("one"); });
  graph.AddTask("second-boom", [] { throw std::runtime_error("two"); });
  graph.AddTask("also-fine", [&] { ++ran; });
  const Status status = RunGraphInline(std::move(graph));
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("first-boom"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("one"), std::string::npos)
      << status.message();
  EXPECT_EQ(ran, 2);
}

}  // namespace
}  // namespace sitm
