// IncrementalBuilder unit behavior: config validation, watermark
// admission and finalization, arrival-order insensitivity, bounded-
// memory eviction, Drain, and footprint peaks. (The full-stack
// batch-equivalence contract lives in live_equivalence_property_test.)
#include "live/incremental_builder.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/builder.h"

namespace sitm::live {
namespace {

core::RawDetection D(std::int64_t object, std::int64_t cell,
                     std::int64_t start, std::int64_t end) {
  return core::RawDetection(ObjectId(object), CellId(cell), Timestamp(start),
                            Timestamp(end));
}

IncrementalOptions TightOptions() {
  IncrementalOptions options;
  options.allowed_lateness = Duration::Seconds(60);
  return options;
}

TEST(IncrementalBuilderConfigTest, EmptyDefaultAnnotationsRejected) {
  IncrementalOptions options;
  options.builder.default_annotations = {};
  IncrementalBuilder builder(options);
  std::vector<core::SemanticTrajectory> out;
  const Status status = builder.Ingest({D(1, 1, 0, 10)}, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(IncrementalBuilderConfigTest, RulesNeedAGraph) {
  IncrementalOptions options;
  options.rules = {core::AnnotateStopsAndMoves(
      Duration::Minutes(5), {core::AnnotationKind::kBehavior, "stop"},
      {core::AnnotationKind::kBehavior, "move"})};
  IncrementalBuilder builder(options);
  std::vector<core::SemanticTrajectory> out;
  EXPECT_EQ(builder.Ingest({D(1, 1, 0, 10)}, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(IncrementalBuilderConfigTest, InferenceNeedsAGraph) {
  IncrementalOptions options;
  options.infer_hidden_passages = true;
  IncrementalBuilder builder(options);
  std::vector<core::SemanticTrajectory> out;
  EXPECT_EQ(builder.Drain(&out).code(), StatusCode::kInvalidArgument);
}

TEST(IncrementalBuilderTest, InvalidIdsRejected) {
  IncrementalBuilder builder(TightOptions());
  std::vector<core::SemanticTrajectory> out;
  core::RawDetection bad;  // default ids are invalid
  bad.start = Timestamp(0);
  bad.end = Timestamp(10);
  EXPECT_EQ(builder.Ingest({bad}, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(IncrementalBuilderTest, WatermarkFlushesStaleTraceMidStream) {
  IncrementalBuilder builder(TightOptions());
  std::vector<core::SemanticTrajectory> out;
  ASSERT_TRUE(builder.Ingest({D(1, 1, 0, 100), D(1, 2, 200, 300)}, &out).ok());
  // Nothing can finalize yet: the watermark (200 - 60 = 140) consumes
  // the first detection into the open trace but cannot flush it.
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(builder.stats().buffered_detections, 1u);

  // A far-future detection pushes the watermark way past the session
  // gap: the buffered prefix is consumed and the stale trace flushes,
  // while the new detection itself stays buffered.
  ASSERT_TRUE(builder.Ingest({D(1, 3, 20000, 20100)}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].object(), ObjectId(1));
  ASSERT_EQ(out[0].trace().intervals().size(), 2u);
  EXPECT_EQ(out[0].trace().intervals()[0].cell, CellId(1));
  EXPECT_EQ(out[0].trace().intervals()[1].cell, CellId(2));
  EXPECT_EQ(builder.stats().finalized, 1u);
  EXPECT_EQ(builder.stats().buffered_detections, 1u);
  EXPECT_TRUE(builder.stats().has_watermark);
  EXPECT_EQ(builder.stats().watermark, Timestamp(20000 - 60));
}

TEST(IncrementalBuilderTest, LateArrivalsAreDroppedAndCounted) {
  IncrementalBuilder builder(TightOptions());
  std::vector<core::SemanticTrajectory> out;
  ASSERT_TRUE(builder.Ingest({D(1, 1, 10000, 10100)}, &out).ok());
  // Watermark is now 9940; these start before it.
  ASSERT_TRUE(builder.Ingest({D(1, 1, 50, 60), D(2, 4, 9000, 9100)}, &out)
                  .ok());
  EXPECT_EQ(builder.stats().late_dropped, 2u);
  EXPECT_EQ(builder.stats().records_in, 3u);
  // A late drop admits no state for its object.
  EXPECT_EQ(builder.stats().open_objects, 1u);
}

TEST(IncrementalBuilderTest, OutOfOrderMatchesInOrder) {
  const std::vector<core::RawDetection> in_order = {
      D(1, 1, 0, 100),    D(1, 2, 150, 250),  D(1, 2, 260, 300),
      D(2, 5, 50, 120),   D(2, 6, 20000, 20200), D(1, 3, 30000, 30100),
  };
  std::vector<core::RawDetection> shuffled = {
      in_order[4], in_order[1], in_order[5],
      in_order[0], in_order[3], in_order[2],
  };

  const auto run = [](const std::vector<core::RawDetection>& stream) {
    IncrementalOptions options;
    options.allowed_lateness = Duration::Hours(24);  // admit everything
    IncrementalBuilder builder(options);
    std::vector<core::SemanticTrajectory> out;
    for (const core::RawDetection& d : stream) {
      EXPECT_TRUE(builder.Ingest({d}, &out).ok());
    }
    EXPECT_TRUE(builder.Drain(&out).ok());
    // Normalize finalization order to (object, start).
    std::sort(out.begin(), out.end(),
              [](const core::SemanticTrajectory& a,
                 const core::SemanticTrajectory& b) {
                if (a.object() != b.object()) {
                  return a.object().value() < b.object().value();
                }
                return a.start() < b.start();
              });
    return out;
  };

  const std::vector<core::SemanticTrajectory> a = run(in_order);
  const std::vector<core::SemanticTrajectory> b = run(shuffled);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].object(), b[i].object()) << i;
    EXPECT_EQ(a[i].trace().intervals(), b[i].trace().intervals()) << i;
    EXPECT_EQ(a[i].annotations(), b[i].annotations()) << i;
  }
}

TEST(IncrementalBuilderTest, EvictionBoundsOpenObjects) {
  IncrementalOptions options = TightOptions();
  options.max_open_objects = 2;
  IncrementalBuilder builder(options);
  std::vector<core::SemanticTrajectory> out;
  ASSERT_TRUE(builder.Ingest({D(1, 1, 0, 100)}, &out).ok());
  ASSERT_TRUE(builder.Ingest({D(2, 1, 10, 110)}, &out).ok());
  ASSERT_TRUE(builder.Ingest({D(3, 1, 20, 120)}, &out).ok());
  // Object 1 was the least recently active: force-finalized + forgotten.
  EXPECT_EQ(builder.stats().evicted_objects, 1u);
  EXPECT_EQ(builder.stats().open_objects, 2u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].object(), ObjectId(1));
  EXPECT_LE(builder.stats().peak_open_objects, 3u);
}

TEST(IncrementalBuilderTest, DrainFlushesEverythingAndResets) {
  IncrementalBuilder builder(TightOptions());
  std::vector<core::SemanticTrajectory> out;
  ASSERT_TRUE(
      builder.Ingest({D(1, 1, 0, 100), D(2, 2, 50, 150)}, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(builder.Drain(&out).ok());
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(builder.stats().open_objects, 0u);
  EXPECT_EQ(builder.stats().buffered_detections, 0u);
  EXPECT_EQ(builder.stats().finalized, 2u);

  // The builder stays usable: a fresh object streams from a clean slate.
  out.clear();
  ASSERT_TRUE(builder.Ingest({D(9, 1, 40000, 40100)}, &out).ok());
  ASSERT_TRUE(builder.Drain(&out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].object(), ObjectId(9));
}

TEST(IncrementalBuilderTest, PeaksTrackTheHighWaterMark) {
  IncrementalBuilder builder(TightOptions());
  std::vector<core::SemanticTrajectory> out;
  ASSERT_TRUE(builder
                  .Ingest({D(1, 1, 0, 10), D(2, 1, 1, 11), D(3, 1, 2, 12),
                           D(4, 1, 3, 13)},
                          &out)
                  .ok());
  EXPECT_EQ(builder.stats().peak_open_objects, 4u);
  EXPECT_EQ(builder.stats().peak_buffered_detections, 4u);
  ASSERT_TRUE(builder.Drain(&out).ok());
  // Draining empties the footprint but never lowers the peaks.
  EXPECT_EQ(builder.stats().peak_open_objects, 4u);
  EXPECT_EQ(builder.stats().peak_buffered_detections, 4u);
}

TEST(IncrementalBuilderTest, ProvisionalIdsAdvanceInFinalizationOrder) {
  IncrementalOptions options = TightOptions();
  options.builder.first_trajectory_id = TrajectoryId(100);
  IncrementalBuilder builder(options);
  EXPECT_EQ(builder.next_id(), TrajectoryId(100));
  std::vector<core::SemanticTrajectory> out;
  ASSERT_TRUE(
      builder.Ingest({D(1, 1, 0, 100), D(2, 2, 50, 150)}, &out).ok());
  ASSERT_TRUE(builder.Drain(&out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id(), TrajectoryId(100));
  EXPECT_EQ(out[1].id(), TrajectoryId(101));
  EXPECT_EQ(builder.next_id(), TrajectoryId(102));
}

}  // namespace
}  // namespace sitm::live
