#include "geom/grid_index.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "geom/box.h"
#include "geom/point.h"
#include "geom/polygon.h"

namespace sitm::geom {
namespace {

// Hot-path edge cases for the symbolic-localization index, beyond the
// smoke coverage in geom_polygon_test.cc: boundary hits, out-of-bounds
// probes, empty candidate sets, and Build precondition failures.

// Two side-by-side rooms and a detached one, as a 4x-resolution index.
// Callers ASSERT on ok() before dereferencing.
Result<GridIndex> TwoRoomsAndAnnex() {
  std::vector<Polygon> cells;
  cells.push_back(Polygon::Rectangle(0, 0, 10, 10));    // 0: left room
  cells.push_back(Polygon::Rectangle(10, 0, 20, 10));   // 1: right room
  cells.push_back(Polygon::Rectangle(30, 30, 40, 40));  // 2: detached annex
  return GridIndex::Build(std::move(cells), 4);
}

#define ASSERT_OK_AND_ASSIGN_INDEX(index)          \
  const auto index##_or = TwoRoomsAndAnnex();      \
  ASSERT_TRUE(index##_or.ok()) << index##_or.status(); \
  const GridIndex& index = *index##_or

TEST(GridIndexEdgeTest, BuildFailsOnEmptyInput) {
  const auto index = GridIndex::Build({});
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kInvalidArgument);
}

TEST(GridIndexEdgeTest, BuildFailsOnNonPositiveResolution) {
  std::vector<Polygon> one = {Polygon::Rectangle(0, 0, 1, 1)};
  EXPECT_EQ(GridIndex::Build(one, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GridIndex::Build(one, -7).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GridIndexEdgeTest, BuildFailsOnInvalidPolygon) {
  // Collinear ring: zero area, rejected by Polygon::Validate.
  std::vector<Polygon> bad = {Polygon({{0, 0}, {1, 0}, {2, 0}})};
  EXPECT_EQ(GridIndex::Build(std::move(bad), 8).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GridIndexEdgeTest, LocateOnOuterBoundaryHitsThePolygon) {
  ASSERT_OK_AND_ASSIGN_INDEX(index);
  // Edge midpoint and corner of the left room: closed-region semantics.
  EXPECT_EQ(index.Locate({0, 5}), (std::vector<std::size_t>{0}));
  EXPECT_EQ(index.Locate({0, 0}), (std::vector<std::size_t>{0}));
}

TEST(GridIndexEdgeTest, LocateOnSharedWallHitsBothRooms) {
  ASSERT_OK_AND_ASSIGN_INDEX(index);
  EXPECT_EQ(index.Locate({10, 5}), (std::vector<std::size_t>{0, 1}));
}

TEST(GridIndexEdgeTest, LocateOutsideBoundsIsEmpty) {
  ASSERT_OK_AND_ASSIGN_INDEX(index);
  EXPECT_FALSE(index.bounds().Contains({-1, -1}));
  EXPECT_TRUE(index.Locate({-1, -1}).empty());
  EXPECT_TRUE(index.Locate({1000, 5}).empty());
}

TEST(GridIndexEdgeTest, LocateInGapBetweenPolygonsIsEmpty) {
  // (25, 25) is inside bounds() but in no polygon.
  ASSERT_OK_AND_ASSIGN_INDEX(index);
  EXPECT_TRUE(index.bounds().Contains({25, 25}));
  EXPECT_TRUE(index.Locate({25, 25}).empty());
}

TEST(GridIndexEdgeTest, LocateFirstNotFound) {
  ASSERT_OK_AND_ASSIGN_INDEX(index);
  const auto miss = index.LocateFirst({25, 25});
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);

  const auto hit = index.LocateFirst({5, 5});
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value(), 0u);
}

TEST(GridIndexEdgeTest, CandidatesMissingTheGridIsEmpty) {
  ASSERT_OK_AND_ASSIGN_INDEX(index);
  EXPECT_TRUE(index.Candidates(Box(100, 100, 110, 110)).empty());
  EXPECT_TRUE(index.Candidates(Box()).empty());  // empty box
}

TEST(GridIndexEdgeTest, CandidatesSpanningAllCellsIsSortedAndComplete) {
  ASSERT_OK_AND_ASSIGN_INDEX(index);
  EXPECT_EQ(index.Candidates(Box(-5, -5, 50, 50)),
            (std::vector<std::size_t>{0, 1, 2}));
  // A box over the gap still reports bbox-overlapping candidates only.
  EXPECT_EQ(index.Candidates(Box(15, 5, 35, 35)),
            (std::vector<std::size_t>{1, 2}));
}

TEST(GridIndexEdgeTest, DegenerateExtentFallsBackToSingleCellRow) {
  // All polygons share one x-extent: bounds width > 0 but height spans
  // the full grid; probing still terminates and finds the right cell.
  std::vector<Polygon> cells = {Polygon::Rectangle(0, 0, 1, 100)};
  const auto index = GridIndex::Build(std::move(cells), 8);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_EQ(index->Locate({0.5, 99.5}), (std::vector<std::size_t>{0}));
  EXPECT_TRUE(index->Locate({2, 50}).empty());
}

}  // namespace
}  // namespace sitm::geom
