#include "geom/grid_index.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "geom/box.h"
#include "geom/point.h"
#include "geom/polygon.h"

namespace sitm::geom {
namespace {

// Hot-path edge cases for the symbolic-localization index, beyond the
// smoke coverage in geom_polygon_test.cc: boundary hits, out-of-bounds
// probes, empty candidate sets, and Build precondition failures.

// Two side-by-side rooms and a detached one, as a 4x-resolution index.
// Callers ASSERT on ok() before dereferencing.
Result<GridIndex> TwoRoomsAndAnnex() {
  std::vector<Polygon> cells;
  cells.push_back(Polygon::Rectangle(0, 0, 10, 10));    // 0: left room
  cells.push_back(Polygon::Rectangle(10, 0, 20, 10));   // 1: right room
  cells.push_back(Polygon::Rectangle(30, 30, 40, 40));  // 2: detached annex
  return GridIndex::Build(std::move(cells), 4);
}

#define ASSERT_OK_AND_ASSIGN_INDEX(index)          \
  const auto index##_or = TwoRoomsAndAnnex();      \
  ASSERT_TRUE(index##_or.ok()) << index##_or.status(); \
  const GridIndex& index = *index##_or

TEST(GridIndexEdgeTest, BuildFailsOnEmptyInput) {
  const auto index = GridIndex::Build({});
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kInvalidArgument);
}

TEST(GridIndexEdgeTest, BuildFailsOnNonPositiveResolution) {
  std::vector<Polygon> one = {Polygon::Rectangle(0, 0, 1, 1)};
  EXPECT_EQ(GridIndex::Build(one, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GridIndex::Build(one, -7).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GridIndexEdgeTest, BuildFailsBeyondMaxResolution) {
  // Cell ids are 32-bit and the grid is dense; absurd resolutions must
  // fail with a Status, not truncate or bad_alloc.
  std::vector<Polygon> one = {Polygon::Rectangle(0, 0, 1, 1)};
  EXPECT_EQ(GridIndex::Build(one, GridIndex::kMaxResolution + 1)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(GridIndex::Build(std::move(one), 128).ok());
}

TEST(GridIndexEdgeTest, BuildFailsOnInvalidPolygon) {
  // Collinear ring: zero area, rejected by Polygon::Validate.
  std::vector<Polygon> bad = {Polygon({{0, 0}, {1, 0}, {2, 0}})};
  EXPECT_EQ(GridIndex::Build(std::move(bad), 8).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GridIndexEdgeTest, LocateOnOuterBoundaryHitsThePolygon) {
  ASSERT_OK_AND_ASSIGN_INDEX(index);
  // Edge midpoint and corner of the left room: closed-region semantics.
  EXPECT_EQ(index.Locate({0, 5}), (std::vector<std::size_t>{0}));
  EXPECT_EQ(index.Locate({0, 0}), (std::vector<std::size_t>{0}));
}

TEST(GridIndexEdgeTest, LocateOnSharedWallHitsBothRooms) {
  ASSERT_OK_AND_ASSIGN_INDEX(index);
  EXPECT_EQ(index.Locate({10, 5}), (std::vector<std::size_t>{0, 1}));
}

TEST(GridIndexEdgeTest, LocateOutsideBoundsIsEmpty) {
  ASSERT_OK_AND_ASSIGN_INDEX(index);
  EXPECT_FALSE(index.bounds().Contains({-1, -1}));
  EXPECT_TRUE(index.Locate({-1, -1}).empty());
  EXPECT_TRUE(index.Locate({1000, 5}).empty());
}

TEST(GridIndexEdgeTest, LocateInGapBetweenPolygonsIsEmpty) {
  // (25, 25) is inside bounds() but in no polygon.
  ASSERT_OK_AND_ASSIGN_INDEX(index);
  EXPECT_TRUE(index.bounds().Contains({25, 25}));
  EXPECT_TRUE(index.Locate({25, 25}).empty());
}

TEST(GridIndexEdgeTest, LocateFirstNotFound) {
  ASSERT_OK_AND_ASSIGN_INDEX(index);
  const auto miss = index.LocateFirst({25, 25});
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);

  const auto hit = index.LocateFirst({5, 5});
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value(), 0u);
}

TEST(GridIndexEdgeTest, CandidatesMissingTheGridIsEmpty) {
  ASSERT_OK_AND_ASSIGN_INDEX(index);
  EXPECT_TRUE(index.Candidates(Box(100, 100, 110, 110)).empty());
  EXPECT_TRUE(index.Candidates(Box()).empty());  // empty box
}

TEST(GridIndexEdgeTest, CandidatesSpanningAllCellsIsSortedAndComplete) {
  ASSERT_OK_AND_ASSIGN_INDEX(index);
  EXPECT_EQ(index.Candidates(Box(-5, -5, 50, 50)),
            (std::vector<std::size_t>{0, 1, 2}));
  // A box over the gap still reports bbox-overlapping candidates only.
  EXPECT_EQ(index.Candidates(Box(15, 5, 35, 35)),
            (std::vector<std::size_t>{1, 2}));
}

TEST(GridIndexEdgeTest, DegenerateExtentFallsBackToSingleCellRow) {
  // All polygons share one x-extent: bounds width > 0 but height spans
  // the full grid; probing still terminates and finds the right cell.
  std::vector<Polygon> cells = {Polygon::Rectangle(0, 0, 1, 100)};
  const auto index = GridIndex::Build(std::move(cells), 8);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_EQ(index->Locate({0.5, 99.5}), (std::vector<std::size_t>{0}));
  EXPECT_TRUE(index->Locate({2, 50}).empty());
}

// --- Degenerate-bounds regressions. A joint bounding box with zero
// width or height can only arise from zero-area polygons, which Build
// rejects; these tests pin that rejection (the only consistent answer)
// and the near-degenerate behavior just above it.

TEST(GridIndexDegenerateTest, ZeroWidthExtentIsRejectedNotMisindexed) {
  // A vertical segment disguised as a polygon: zero-area ring whose
  // bounds would collapse CellX to a single column.
  std::vector<Polygon> segments = {Polygon({{3, 0}, {3, 5}, {3, 10}})};
  const auto index = GridIndex::Build(std::move(segments), 8);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kInvalidArgument);
}

TEST(GridIndexDegenerateTest, ZeroHeightExtentIsRejectedNotMisindexed) {
  std::vector<Polygon> segments = {Polygon({{0, 7}, {5, 7}, {10, 7}})};
  const auto auto_index = GridIndex::Build(std::move(segments));
  ASSERT_FALSE(auto_index.ok());
  EXPECT_EQ(auto_index.status().code(), StatusCode::kInvalidArgument);
}

TEST(GridIndexDegenerateTest, NearDegenerateSliversStayConsistent) {
  // A 1e-7-tall sliver: the y axis is almost degenerate. On-edge
  // points (including the global min/max corners) must Locate, and
  // points just past the bounds must not.
  const double h = 1e-7;
  std::vector<Polygon> slivers = {Polygon::Rectangle(0, 0, 100, h)};
  const auto index = GridIndex::Build(std::move(slivers), 16);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_EQ(index->Locate({0, 0}), (std::vector<std::size_t>{0}));
  EXPECT_EQ(index->Locate({100, h}), (std::vector<std::size_t>{0}));
  EXPECT_EQ(index->Locate({50, h / 2}), (std::vector<std::size_t>{0}));
  EXPECT_TRUE(index->Locate({50, 1}).empty());
}

TEST(GridIndexDegenerateTest, ResolutionOneGridAnswersAllEdges) {
  // A single cell holds everything; every boundary point of the global
  // bounds must stay answerable (CellX/CellY clamp, Contains accepts).
  std::vector<Polygon> cells = {Polygon::Rectangle(0, 0, 10, 10),
                                Polygon::Rectangle(10, 0, 20, 10)};
  const auto index = GridIndex::Build(std::move(cells), 1);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_EQ(index->cells_x(), 1);
  EXPECT_EQ(index->cells_y(), 1);
  EXPECT_EQ(index->Locate({0, 0}), (std::vector<std::size_t>{0}));
  EXPECT_EQ(index->Locate({20, 10}), (std::vector<std::size_t>{1}));
  EXPECT_EQ(index->Locate({10, 10}), (std::vector<std::size_t>{0, 1}));
}

// --- Max-edge clamping: polygons and probes exactly on the global
// max_x/max_y edge land in the last cell and still find each other.

TEST(GridIndexMaxEdgeTest, PolygonTouchingGlobalMaxEdgeIsFound) {
  ASSERT_OK_AND_ASSIGN_INDEX(index);
  // (20, 10) and (40, 40) are the right room's / annex's far corners,
  // exactly on bounds().max_x / max_y.
  EXPECT_EQ(index.bounds().max_x, 40.0);
  EXPECT_EQ(index.bounds().max_y, 40.0);
  EXPECT_EQ(index.Locate({20, 10}), (std::vector<std::size_t>{1}));
  EXPECT_EQ(index.Locate({40, 40}), (std::vector<std::size_t>{2}));
  EXPECT_EQ(index.Locate({35, 40}), (std::vector<std::size_t>{2}));
}

TEST(GridIndexMaxEdgeTest, MaxEdgeFoundAtEveryResolution) {
  // The clamp interacts with cell-boundary rounding differently at each
  // resolution; the answer must not.
  for (int resolution : {1, 2, 3, 7, 16, 64}) {
    std::vector<Polygon> cells;
    cells.push_back(Polygon::Rectangle(0, 0, 10, 10));
    cells.push_back(Polygon::Rectangle(10, 0, 20, 10));
    const auto index = GridIndex::Build(std::move(cells), resolution);
    ASSERT_TRUE(index.ok()) << index.status();
    EXPECT_EQ(index->Locate({20, 10}), (std::vector<std::size_t>{1}))
        << "resolution " << resolution;
    EXPECT_EQ(index->Locate({20, 5}), (std::vector<std::size_t>{1}))
        << "resolution " << resolution;
    EXPECT_EQ(index->Locate({10, 10}), (std::vector<std::size_t>{0, 1}))
        << "resolution " << resolution;
  }
}

// --- Candidates on zero-area query boxes (a point- or segment-box is
// not "empty"; only the default-constructed inverted box is).

TEST(GridIndexCandidatesTest, PointBoxReturnsContainingCandidates) {
  ASSERT_OK_AND_ASSIGN_INDEX(index);
  EXPECT_EQ(index.Candidates(Box(5, 5, 5, 5)), (std::vector<std::size_t>{0}));
  EXPECT_EQ(index.Candidates(Box(10, 5, 10, 5)),
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(index.Candidates(Box(40, 40, 40, 40)),
            (std::vector<std::size_t>{2}));
  EXPECT_TRUE(index.Candidates(Box(25, 25, 25, 25)).empty());
}

TEST(GridIndexCandidatesTest, SegmentBoxReturnsTouchedCandidates) {
  ASSERT_OK_AND_ASSIGN_INDEX(index);
  // A horizontal zero-height box crossing both rooms.
  EXPECT_EQ(index.Candidates(Box(2, 5, 18, 5)),
            (std::vector<std::size_t>{0, 1}));
}

TEST(GridIndexCandidatesTest, ClippedBucketsPruneBboxOnlyOverlap) {
  // An L-shaped hall whose bbox covers the notch: a query box fully in
  // the notch must not report the hall once cells are clipped.
  std::vector<Polygon> cells;
  cells.push_back(Polygon(
      {{0, 0}, {40, 0}, {40, 8}, {8, 8}, {8, 40}, {0, 40}}));  // L-hall
  cells.push_back(Polygon::Rectangle(50, 0, 60, 10));          // detached
  const auto index = GridIndex::Build(std::move(cells), 16);
  ASSERT_TRUE(index.ok()) << index.status();
  // Box deep inside the notch: bbox-overlaps the L but touches none of
  // its region.
  EXPECT_TRUE(index->Candidates(Box(20, 20, 30, 30)).empty());
  // Box overlapping the L's lower arm still reports it.
  EXPECT_EQ(index->Candidates(Box(20, 2, 30, 6)),
            (std::vector<std::size_t>{0}));
}

TEST(GridIndexCandidatesTest, ConcaveCavityCarriesNoBridgeArtifacts) {
  // A C-shaped hall wrapping a cavity: Sutherland-Hodgman bridge rings
  // must not register the hall in cells strictly inside the cavity, so
  // a cavity-local query stays empty (the documented clipping
  // guarantee: a cell lists a polygon iff their regions share a point).
  std::vector<Polygon> cells;
  cells.push_back(Polygon({{0, 0},
                           {30, 0},
                           {30, 10},
                           {10, 10},
                           {10, 20},
                           {30, 20},
                           {30, 30},
                           {0, 30}}));
  const auto index = GridIndex::Build(std::move(cells), 30);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_TRUE(index->Candidates(Box(15, 12, 25, 18)).empty());
  EXPECT_TRUE(index->Locate({20, 15}).empty());
  // The arms around the cavity still answer.
  EXPECT_EQ(index->Locate({20, 5}), (std::vector<std::size_t>{0}));
  EXPECT_EQ(index->Locate({20, 25}), (std::vector<std::size_t>{0}));
  EXPECT_EQ(index->Locate({5, 15}), (std::vector<std::size_t>{0}));
  // Boundary of the cavity (the inner walls) is genuine contact.
  EXPECT_EQ(index->Locate({10, 15}), (std::vector<std::size_t>{0}));
}

// --- AutoResolution heuristic bounds.

TEST(GridIndexAutoResolutionTest, StaysWithinBoundsAndMonotone) {
  EXPECT_EQ(GridIndex::AutoResolution(0), 8);
  EXPECT_GE(GridIndex::AutoResolution(1), 8);
  int previous = 0;
  for (std::size_t n : {std::size_t{1}, std::size_t{10}, std::size_t{100},
                        std::size_t{1000}, std::size_t{100000},
                        std::size_t{10000000}}) {
    const int res = GridIndex::AutoResolution(n);
    EXPECT_GE(res, 8) << n;
    EXPECT_LE(res, 256) << n;
    EXPECT_GE(res, previous) << n;
    previous = res;
  }
  EXPECT_EQ(GridIndex::AutoResolution(10000000), 256);
}

TEST(GridIndexAutoResolutionTest, AutoBuildUsesTheHeuristic) {
  std::vector<Polygon> cells;
  for (int i = 0; i < 9; ++i) {
    cells.push_back(
        Polygon::Rectangle(i * 10.0, 0, i * 10.0 + 8, 8));
  }
  const auto index = GridIndex::Build(std::move(cells));
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_EQ(index->resolution(), GridIndex::AutoResolution(9));
  EXPECT_EQ(index->cells_x(), index->resolution());
}

// --- CSR layout invariants on a mixed index.

TEST(GridIndexCsrTest, OffsetsMonotoneEntriesInRangeAndSorted) {
  ASSERT_OK_AND_ASSIGN_INDEX(index);
  const auto& offsets = index.cell_offsets();
  const auto& entries = index.cell_entries();
  ASSERT_EQ(offsets.size(),
            static_cast<std::size_t>(index.cells_x()) * index.cells_y() + 1);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), entries.size());
  for (std::size_t c = 0; c + 1 < offsets.size(); ++c) {
    ASSERT_LE(offsets[c], offsets[c + 1]);
    // Entries of one cell are sorted by polygon index (Locate's output
    // order guarantee rides on this).
    for (std::uint32_t k = offsets[c]; k + 1 < offsets[c + 1]; ++k) {
      EXPECT_LT(entries[k] & GridIndex::kEntryIndexMask,
                entries[k + 1] & GridIndex::kEntryIndexMask);
    }
  }
  for (std::uint32_t entry : entries) {
    EXPECT_LT(entry & GridIndex::kEntryIndexMask, index.polygons().size());
  }
}

TEST(GridIndexCsrTest, FullCoverBitsMarkInteriorCells) {
  // One room spanning the whole grid at resolution 8: every cell lies
  // inside the room, so every entry must carry the full-cover bit.
  std::vector<Polygon> cells = {Polygon::Rectangle(0, 0, 80, 80)};
  const auto index = GridIndex::Build(std::move(cells), 8);
  ASSERT_TRUE(index.ok()) << index.status();
  const auto& offsets = index->cell_offsets();
  const auto& entries = index->cell_entries();
  std::size_t full = 0;
  for (std::uint32_t entry : entries) {
    if ((entry & GridIndex::kFullCellBit) != 0) ++full;
  }
  // Every cell lies inside the room, so every entry is full-cover.
  EXPECT_EQ(entries.size(), static_cast<std::size_t>(8 * 8));
  EXPECT_EQ(full, entries.size());
  EXPECT_EQ(offsets.back(), entries.size());
  // And Locate resolves interior probes without exact tests (observable
  // only through correctness here).
  EXPECT_EQ(index->Locate({40, 40}), (std::vector<std::size_t>{0}));
}

}  // namespace
}  // namespace sitm::geom
