#include <gtest/gtest.h>

#include "indoor/navigation.h"

namespace sitm::indoor {
namespace {

// Two floors: rooms 1 - 2 on floor 0 connected by a door; room 3
// upstairs reachable by stairs from 2 or by elevator from 1.
Nrg Building() {
  Nrg g;
  for (int id : {1, 2, 3}) {
    EXPECT_TRUE(
        g.AddCell(CellSpace(CellId(id), "room " + std::to_string(id),
                            CellClass::kRoom))
            .ok());
  }
  EXPECT_TRUE(
      g.AddBoundary({BoundaryId(1), "door1", BoundaryType::kDoor}).ok());
  EXPECT_TRUE(
      g.AddBoundary({BoundaryId(2), "stairs", BoundaryType::kStaircase})
          .ok());
  EXPECT_TRUE(
      g.AddBoundary({BoundaryId(3), "lift", BoundaryType::kElevator}).ok());
  EXPECT_TRUE(g.AddSymmetricEdge(CellId(1), CellId(2),
                                 EdgeType::kAccessibility, BoundaryId(1))
                  .ok());
  EXPECT_TRUE(g.AddSymmetricEdge(CellId(2), CellId(3),
                                 EdgeType::kAccessibility, BoundaryId(2))
                  .ok());
  EXPECT_TRUE(g.AddSymmetricEdge(CellId(1), CellId(3),
                                 EdgeType::kAccessibility, BoundaryId(3))
                  .ok());
  return g;
}

TEST(RouteCostsTest, CostOfByType) {
  RouteCosts costs;
  EXPECT_LT(costs.CostOf(BoundaryType::kWall), 0);
  EXPECT_DOUBLE_EQ(costs.CostOf(BoundaryType::kDoor), 1.0);
  EXPECT_DOUBLE_EQ(costs.CostOf(BoundaryType::kStaircase), 5.0);
  costs.avoid_stairs = true;
  EXPECT_LT(costs.CostOf(BoundaryType::kStaircase), 0);
}

TEST(PlanRouteTest, PicksCheapestPathNotFewestHops) {
  const Nrg g = Building();
  // 2 -> 3 direct by stairs costs 5; 2 -> 1 -> 3 by door+lift costs 4.
  const auto route = PlanRoute(g, CellId(2), CellId(3));
  ASSERT_TRUE(route.ok()) << route.status();
  EXPECT_EQ(route->num_crossings(), 2u);
  EXPECT_DOUBLE_EQ(route->total_cost, 4.0);
  EXPECT_EQ(route->steps[1].cell, CellId(1));
  EXPECT_EQ(route->steps[2].cell, CellId(3));
  EXPECT_EQ(route->steps[2].boundary, BoundaryId(3));
}

TEST(PlanRouteTest, TrivialAndMissingEndpoints) {
  const Nrg g = Building();
  const auto self = PlanRoute(g, CellId(1), CellId(1));
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self->num_crossings(), 0u);
  EXPECT_DOUBLE_EQ(self->total_cost, 0.0);
  EXPECT_FALSE(PlanRoute(g, CellId(1), CellId(99)).ok());
  EXPECT_FALSE(PlanRoute(g, CellId(99), CellId(1)).ok());
}

TEST(PlanRouteTest, AvoidStairsReroutesThroughTheElevator) {
  Nrg g = Building();
  RouteCosts costs;
  costs.avoid_stairs = true;
  // Make the elevator pricier than stairs; the route must still avoid
  // the stairs entirely.
  costs.elevator = 10.0;
  const auto route = PlanRoute(g, CellId(2), CellId(3), costs);
  ASSERT_TRUE(route.ok());
  for (const RouteStep& step : route->steps) {
    if (!step.boundary.valid()) continue;
    EXPECT_NE(g.FindBoundary(step.boundary).value()->type,
              BoundaryType::kStaircase);
  }
  EXPECT_DOUBLE_EQ(route->total_cost, 11.0);  // door + lift
}

TEST(PlanRouteTest, UnreachableUnderConstraints) {
  // Only a staircase connects 4 to the rest.
  Nrg g = Building();
  ASSERT_TRUE(
      g.AddCell(CellSpace(CellId(4), "attic", CellClass::kRoom)).ok());
  ASSERT_TRUE(
      g.AddBoundary({BoundaryId(4), "attic-stairs", BoundaryType::kStaircase})
          .ok());
  ASSERT_TRUE(g.AddSymmetricEdge(CellId(3), CellId(4),
                                 EdgeType::kAccessibility, BoundaryId(4))
                  .ok());
  RouteCosts costs;
  costs.avoid_stairs = true;
  EXPECT_EQ(PlanRoute(g, CellId(1), CellId(4), costs).status().code(),
            StatusCode::kNotFound);
  // Without the constraint it works.
  EXPECT_TRUE(PlanRoute(g, CellId(1), CellId(4)).ok());
}

TEST(PlanRouteTest, RespectsEdgeDirection) {
  Nrg g;
  for (int id : {1, 2}) {
    ASSERT_TRUE(
        g.AddCell(CellSpace(CellId(id), "c", CellClass::kRoom)).ok());
  }
  ASSERT_TRUE(
      g.AddEdge(CellId(1), CellId(2), EdgeType::kAccessibility).ok());
  EXPECT_TRUE(PlanRoute(g, CellId(1), CellId(2)).ok());
  EXPECT_FALSE(PlanRoute(g, CellId(2), CellId(1)).ok());
}

TEST(DescribeRouteTest, HumanReadableDirections) {
  const Nrg g = Building();
  const auto route = PlanRoute(g, CellId(2), CellId(3));
  ASSERT_TRUE(route.ok());
  const auto text = DescribeRoute(g, *route);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text,
            "start in room 2; through door 'door1' into room 1; "
            "through elevator 'lift' into room 3");
  EXPECT_FALSE(DescribeRoute(g, Route{}).ok());
}

}  // namespace
}  // namespace sitm::indoor
