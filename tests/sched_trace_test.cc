// TraceSink: span recording, name truncation, ring overflow
// accounting, JSON serialization (including escaping), file dump, and
// Clear.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sched/trace.h"

namespace sitm::sched {
namespace {

TEST(TraceSinkTest, RecordsSpansSortedByBeginTime) {
  TraceSink sink(/*lanes=*/2);
  sink.RecordTask(1, "late", 300, 400);
  sink.RecordTask(0, "early", 100, 200);
  sink.RecordTask(0, "middle", 250, 260);
  const std::vector<TraceSpan> spans = sink.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "early");
  EXPECT_STREQ(spans[1].name, "middle");
  EXPECT_STREQ(spans[2].name, "late");
  EXPECT_EQ(spans[0].lane, 0u);
  EXPECT_EQ(spans[2].lane, 1u);
}

TEST(TraceSinkTest, StealEventsAreInstant) {
  TraceSink sink(/*lanes=*/1);
  sink.RecordSteal(0, "victim-task", 123);
  const std::vector<TraceSpan> spans = sink.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].kind, TraceSpan::Kind::kSteal);
  EXPECT_EQ(spans[0].begin_ns, 123);
  EXPECT_EQ(spans[0].end_ns, 123);
}

TEST(TraceSinkTest, NamesTruncateAtTheFixedWidth) {
  TraceSink sink(/*lanes=*/1);
  const std::string long_name(64, 'x');
  sink.RecordTask(0, long_name, 0, 1);
  const std::vector<TraceSpan> spans = sink.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::string(spans[0].name),
            std::string(TraceSpan::kNameWidth - 1, 'x'));
}

TEST(TraceSinkTest, RingOverflowKeepsNewestAndCountsDropped) {
  TraceSink sink(/*lanes=*/1, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    sink.RecordTask(0, "span-" + std::to_string(i), i, i + 1);
  }
  EXPECT_EQ(sink.dropped(), 6u);
  const std::vector<TraceSpan> spans = sink.Spans();
  ASSERT_EQ(spans.size(), 4u);
  // The four newest survive, still sorted by begin.
  EXPECT_STREQ(spans[0].name, "span-6");
  EXPECT_STREQ(spans[3].name, "span-9");
}

TEST(TraceSinkTest, OutOfRangeLanesAreIgnored) {
  TraceSink sink(/*lanes=*/1);
  sink.RecordTask(5, "nowhere", 0, 1);
  EXPECT_TRUE(sink.Spans().empty());
}

TEST(TraceSinkTest, ToJsonIsSelfDescribing) {
  TraceSink sink(/*lanes=*/2, /*capacity=*/8);
  sink.RecordTask(0, "build", 10, 20);
  sink.RecordSteal(1, "build", 15);
  const std::string json = sink.ToJson();
  EXPECT_NE(json.find("\"lanes\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"capacity\": 8"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\": \"task\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\": \"steal\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"build\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"begin_ns\": 10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"end_ns\": 20"), std::string::npos) << json;
}

TEST(TraceSinkTest, ToJsonEscapesNames) {
  TraceSink sink(/*lanes=*/1);
  sink.RecordTask(0, "q\"b\\s", 0, 1);
  const std::string json = sink.ToJson();
  EXPECT_NE(json.find("\"q\\\"b\\\\s\""), std::string::npos) << json;
}

TEST(TraceSinkTest, WriteJsonRoundTripsThroughAFile) {
  TraceSink sink(/*lanes=*/1);
  sink.RecordTask(0, "persisted", 1, 2);
  const std::string path =
      ::testing::TempDir() + "/sched_trace_test_dump.json";
  ASSERT_TRUE(sink.WriteJson(path).ok());
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), sink.ToJson());
  std::remove(path.c_str());
}

TEST(TraceSinkTest, WriteJsonReportsUnwritablePaths) {
  TraceSink sink(/*lanes=*/1);
  EXPECT_FALSE(sink.WriteJson("/nonexistent-dir/trace.json").ok());
}

TEST(TraceSinkTest, ClearDiscardsSpansAndDropCounts) {
  TraceSink sink(/*lanes=*/1, /*capacity=*/2);
  for (int i = 0; i < 5; ++i) sink.RecordTask(0, "s", i, i + 1);
  EXPECT_GT(sink.dropped(), 0u);
  sink.Clear();
  EXPECT_TRUE(sink.Spans().empty());
  EXPECT_EQ(sink.dropped(), 0u);
  sink.RecordTask(0, "fresh", 0, 1);
  EXPECT_EQ(sink.Spans().size(), 1u);
}

}  // namespace
}  // namespace sitm::sched
