#include <gtest/gtest.h>

#include "core/annotation.h"
#include "core/presence.h"

namespace sitm::core {
namespace {

TEST(AnnotationTest, KindNames) {
  EXPECT_EQ(AnnotationKindName(AnnotationKind::kActivity), "activity");
  EXPECT_EQ(AnnotationKindName(AnnotationKind::kBehavior), "behavior");
  EXPECT_EQ(AnnotationKindName(AnnotationKind::kGoal), "goal");
  EXPECT_EQ(AnnotationKindName(AnnotationKind::kOther), "other");
}

TEST(AnnotationTest, AnnotationEqualityAndOrdering) {
  const SemanticAnnotation a(AnnotationKind::kGoal, "visit");
  const SemanticAnnotation b(AnnotationKind::kGoal, "visit");
  const SemanticAnnotation c(AnnotationKind::kGoal, "buy");
  const SemanticAnnotation d(AnnotationKind::kActivity, "visit");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_LT(c, a);  // same kind, "buy" < "visit"
  EXPECT_LT(d, a);  // activity < goal in kind order
}

TEST(AnnotationSetTest, AddCollapsesDuplicates) {
  AnnotationSet set;
  EXPECT_TRUE(set.Add(AnnotationKind::kGoal, "visit"));
  EXPECT_FALSE(set.Add(AnnotationKind::kGoal, "visit"));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.Add(AnnotationKind::kGoal, "buy"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(AnnotationSetTest, InitializerListConstruction) {
  const AnnotationSet set{{AnnotationKind::kGoal, "visit"},
                          {AnnotationKind::kGoal, "visit"},
                          {AnnotationKind::kBehavior, "rushing"}};
  EXPECT_EQ(set.size(), 2u);
}

TEST(AnnotationSetTest, OrderInsensitiveEquality) {
  // Set semantics: insertion order must not matter (the A' != A test of
  // Def. 3.4 depends on this).
  AnnotationSet a;
  a.Add(AnnotationKind::kGoal, "visit");
  a.Add(AnnotationKind::kGoal, "buy");
  AnnotationSet b;
  b.Add(AnnotationKind::kGoal, "buy");
  b.Add(AnnotationKind::kGoal, "visit");
  EXPECT_EQ(a, b);
  b.Add(AnnotationKind::kBehavior, "browsing");
  EXPECT_NE(a, b);
}

TEST(AnnotationSetTest, RemoveAndContains) {
  AnnotationSet set{{AnnotationKind::kGoal, "visit"}};
  EXPECT_TRUE(set.Contains(AnnotationKind::kGoal, "visit"));
  EXPECT_TRUE(set.Remove({AnnotationKind::kGoal, "visit"}));
  EXPECT_FALSE(set.Remove({AnnotationKind::kGoal, "visit"}));
  EXPECT_TRUE(set.empty());
}

TEST(AnnotationSetTest, ValuesOfFiltersByKind) {
  const AnnotationSet set{{AnnotationKind::kGoal, "visit"},
                          {AnnotationKind::kGoal, "buy"},
                          {AnnotationKind::kActivity, "walking"}};
  EXPECT_EQ(set.ValuesOf(AnnotationKind::kGoal),
            (std::vector<std::string>{"buy", "visit"}));  // sorted
  EXPECT_TRUE(set.ValuesOf(AnnotationKind::kBehavior).empty());
  EXPECT_TRUE(set.HasKind(AnnotationKind::kActivity));
  EXPECT_FALSE(set.HasKind(AnnotationKind::kBehavior));
}

TEST(AnnotationSetTest, UnionMergesWithoutDuplicates) {
  const AnnotationSet a{{AnnotationKind::kGoal, "visit"}};
  const AnnotationSet b{{AnnotationKind::kGoal, "visit"},
                        {AnnotationKind::kGoal, "buy"}};
  const AnnotationSet u = a.Union(b);
  EXPECT_EQ(u.size(), 2u);
  EXPECT_EQ(u, b);
}

TEST(AnnotationSetTest, ToStringMatchesPaperNotation) {
  // The paper writes {goals:["visit","buy"]}.
  const AnnotationSet set{{AnnotationKind::kGoal, "visit"},
                          {AnnotationKind::kGoal, "buy"}};
  EXPECT_EQ(set.ToString(), "{goals:[buy,visit]}");
  EXPECT_EQ(AnnotationSet{}.ToString(), "{}");
}

TEST(PresenceIntervalTest, AccessorsAndToString) {
  PresenceInterval p(
      BoundaryId(12), CellId(3),
      *qsr::TimeInterval::Make(*Timestamp::FromCivil(2017, 2, 1, 11, 32, 31),
                               *Timestamp::FromCivil(2017, 2, 1, 11, 40, 0)),
      AnnotationSet{{AnnotationKind::kGoal, "visit"}});
  EXPECT_EQ(p.duration().seconds(), 449);
  EXPECT_EQ(p.ToString(),
            "(e#12, cell#3, 11:32:31, 11:40:00, {goals:[visit]})");
  PresenceInterval unknown_transition;
  unknown_transition.cell = CellId(1);
  unknown_transition.inferred = true;
  EXPECT_EQ(unknown_transition.ToString(),
            "(_, cell#1, 00:00:00, 00:00:00, {}, inferred)");
}

TEST(PresenceIntervalTest, EqualityIsFieldWise) {
  PresenceInterval a(BoundaryId(1), CellId(2),
                     *qsr::TimeInterval::Make(Timestamp(0), Timestamp(5)));
  PresenceInterval b = a;
  EXPECT_EQ(a, b);
  b.inferred = true;
  EXPECT_NE(a, b);
  b = a;
  b.annotations.Add(AnnotationKind::kGoal, "x");
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace sitm::core
