#include <gtest/gtest.h>

#include "mining/markov.h"

namespace sitm::mining {
namespace {

using core::AnnotationKind;
using core::AnnotationSet;
using core::PresenceInterval;
using core::SemanticTrajectory;
using core::Trace;

PresenceInterval Pi(int cell, std::int64_t start, std::int64_t end) {
  PresenceInterval p;
  p.cell = CellId(cell);
  p.interval = *qsr::TimeInterval::Make(Timestamp(start), Timestamp(end));
  return p;
}

SemanticTrajectory VisitOf(int id, std::initializer_list<int> cells) {
  Trace trace;
  std::int64_t t = 0;
  for (int cell : cells) {
    trace.Append(Pi(cell, t, t + 60));
    t += 100;
  }
  return SemanticTrajectory(TrajectoryId(id), ObjectId(id), std::move(trace),
                            AnnotationSet{{AnnotationKind::kActivity,
                                           "visit"}});
}

// 1 -> 2 happens 3x; 1 -> 3 happens 1x; 2 -> 3 happens 2x.
std::vector<SemanticTrajectory> Visits() {
  return {VisitOf(1, {1, 2, 3}), VisitOf(2, {1, 2, 3}),
          VisitOf(3, {1, 2}), VisitOf(4, {1, 3})};
}

TEST(MarkovTest, FitRequiresTransitions) {
  EXPECT_FALSE(MarkovModel::Fit({}).ok());
  EXPECT_FALSE(MarkovModel::Fit({VisitOf(1, {5})}).ok());
  EXPECT_FALSE(MarkovModel::Fit(Visits(), -1.0).ok());
  EXPECT_TRUE(MarkovModel::Fit(Visits()).ok());
}

TEST(MarkovTest, TransitionProbabilitiesReflectCounts) {
  const MarkovModel model = MarkovModel::Fit(Visits(), /*alpha=*/0).value();
  EXPECT_EQ(model.num_states(), 3u);
  EXPECT_DOUBLE_EQ(model.TransitionProbability(CellId(1), CellId(2)), 0.75);
  EXPECT_DOUBLE_EQ(model.TransitionProbability(CellId(1), CellId(3)), 0.25);
  EXPECT_DOUBLE_EQ(model.TransitionProbability(CellId(2), CellId(3)), 1.0);
  // Unknown origin or sink: zero.
  EXPECT_DOUBLE_EQ(model.TransitionProbability(CellId(3), CellId(1)), 0.0);
  EXPECT_DOUBLE_EQ(model.TransitionProbability(CellId(9), CellId(1)), 0.0);
}

TEST(MarkovTest, SmoothingGivesUnseenStepsMass) {
  const MarkovModel model = MarkovModel::Fit(Visits(), /*alpha=*/1).value();
  // 1 -> 1 was never observed but gets alpha mass.
  EXPECT_GT(model.TransitionProbability(CellId(1), CellId(1)), 0.0);
  EXPECT_LT(model.TransitionProbability(CellId(1), CellId(1)),
            model.TransitionProbability(CellId(1), CellId(2)));
  // Probabilities over the state space sum to ~1 for a known row.
  double sum = 0;
  for (CellId to : model.states()) {
    sum += model.TransitionProbability(CellId(1), to);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MarkovTest, PredictNext) {
  const MarkovModel model = MarkovModel::Fit(Visits()).value();
  EXPECT_EQ(model.PredictNext(CellId(1)).value(), CellId(2));
  EXPECT_EQ(model.PredictNext(CellId(2)).value(), CellId(3));
  EXPECT_FALSE(model.PredictNext(CellId(3)).ok());  // sink
  EXPECT_FALSE(model.PredictNext(CellId(9)).ok());  // unknown
}

TEST(MarkovTest, TopSuccessorsSorted) {
  const MarkovModel model = MarkovModel::Fit(Visits()).value();
  const auto top = model.TopSuccessors(CellId(1), 5);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, CellId(2));
  EXPECT_GT(top[0].second, top[1].second);
  EXPECT_EQ(model.TopSuccessors(CellId(1), 1).size(), 1u);
  EXPECT_TRUE(model.TopSuccessors(CellId(9), 3).empty());
}

TEST(MarkovTest, LikelihoodSeparatesTypicalFromAnomalous) {
  const MarkovModel model = MarkovModel::Fit(Visits()).value();
  const double typical =
      model.LogLikelihoodPerTransition(VisitOf(9, {1, 2, 3}));
  const double anomalous =
      model.LogLikelihoodPerTransition(VisitOf(9, {3, 1, 3, 1}));
  EXPECT_GT(typical, anomalous);
  EXPECT_DOUBLE_EQ(model.LogLikelihoodPerTransition(VisitOf(9, {1})), 0.0);
}

TEST(MarkovTest, StationaryDistributionSumsToOne) {
  const MarkovModel model = MarkovModel::Fit(Visits()).value();
  const auto pi = model.StationaryDistribution();
  ASSERT_EQ(pi.size(), 3u);
  double sum = 0;
  for (const auto& [cell, p] : pi) {
    EXPECT_GT(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
  // Sorted descending.
  for (std::size_t i = 1; i < pi.size(); ++i) {
    EXPECT_GE(pi[i - 1].second, pi[i].second);
  }
}

TEST(MarkovTest, SampleWalkIsDeterministicPerSeed) {
  const MarkovModel model = MarkovModel::Fit(Visits()).value();
  Rng a(5);
  Rng b(5);
  const auto walk_a = model.SampleWalk(CellId(1), 10, &a);
  const auto walk_b = model.SampleWalk(CellId(1), 10, &b);
  ASSERT_TRUE(walk_a.ok());
  ASSERT_TRUE(walk_b.ok());
  EXPECT_EQ(*walk_a, *walk_b);
  EXPECT_EQ(walk_a->front(), CellId(1));
  // Walks stop at the sink state 3.
  EXPECT_EQ(walk_a->back(), CellId(3));
  EXPECT_FALSE(model.SampleWalk(CellId(9), 5, &a).ok());
  EXPECT_FALSE(model.SampleWalk(CellId(1), 5, nullptr).ok());
}

}  // namespace
}  // namespace sitm::mining
