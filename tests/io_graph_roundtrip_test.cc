#include <gtest/gtest.h>

#include "io/graph_export.h"
#include "louvre/museum.h"

namespace sitm::io {
namespace {

TEST(GraphJsonRoundTripTest, SmallGraphSurvives) {
  indoor::MultiLayerGraph g;
  indoor::SpaceLayer floors(LayerId(1), "Floor",
                            indoor::LayerKind::kTopographic);
  indoor::CellSpace floor(CellId(10), "Floor 0", indoor::CellClass::kFloor);
  floor.set_floor_level(0);
  ASSERT_TRUE(floors.mutable_graph().AddCell(std::move(floor)).ok());
  indoor::SpaceLayer rooms(LayerId(0), "Room",
                           indoor::LayerKind::kSemantic);
  for (int r : {100, 101}) {
    indoor::CellSpace room(CellId(r), "Room " + std::to_string(r),
                           indoor::CellClass::kRoom);
    room.SetAttribute("theme", "Egyptian Antiquities");
    ASSERT_TRUE(rooms.mutable_graph().AddCell(std::move(room)).ok());
  }
  ASSERT_TRUE(rooms.mutable_graph()
                  .AddBoundary({BoundaryId(9), "door9",
                                indoor::BoundaryType::kDoor})
                  .ok());
  ASSERT_TRUE(rooms.mutable_graph()
                  .AddSymmetricEdge(CellId(100), CellId(101),
                                    indoor::EdgeType::kAccessibility,
                                    BoundaryId(9))
                  .ok());
  ASSERT_TRUE(g.AddLayer(std::move(floors)).ok());
  ASSERT_TRUE(g.AddLayer(std::move(rooms)).ok());
  for (int r : {100, 101}) {
    ASSERT_TRUE(g.AddJointEdge(CellId(10), CellId(r),
                               qsr::TopologicalRelation::kCovers)
                    .ok());
  }

  const auto restored = MultiLayerGraphFromJson(MultiLayerGraphToJson(g));
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->num_layers(), 2u);
  const auto* room_layer = restored->FindLayer(LayerId(0)).value();
  EXPECT_EQ(room_layer->kind(), indoor::LayerKind::kSemantic);
  EXPECT_EQ(room_layer->graph().num_cells(), 2u);
  EXPECT_EQ(room_layer->graph().num_edges(), 2u);
  EXPECT_TRUE(room_layer->graph().HasSymmetricEdge(
      CellId(100), CellId(101), indoor::EdgeType::kAccessibility));
  const auto* cell = restored->FindCell(CellId(100)).value();
  EXPECT_TRUE(cell->AttributeEquals("theme", "Egyptian Antiquities"));
  EXPECT_EQ(restored->joint_edges().size(), g.joint_edges().size());
  EXPECT_EQ(restored->CandidateStates(CellId(10), LayerId(0)).size(), 2u);
  // Floor level survives.
  EXPECT_EQ(*restored->FindCell(CellId(10)).value()->floor_level(), 0);
}

TEST(GraphJsonRoundTripTest, FullLouvreMapSurvives) {
  const auto map = louvre::LouvreMap::Build();
  ASSERT_TRUE(map.ok());
  const JsonValue json = MultiLayerGraphToJson(map->graph());
  // Through text and back, like a real on-disk staging step.
  const auto reparsed = JsonValue::Parse(json.Dump());
  ASSERT_TRUE(reparsed.ok());
  const auto restored = MultiLayerGraphFromJson(*reparsed);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->num_layers(), map->graph().num_layers());
  EXPECT_EQ(restored->joint_edges().size(),
            map->graph().joint_edges().size());
  for (std::size_t i = 0; i < map->graph().layers().size(); ++i) {
    EXPECT_EQ(restored->layers()[i].graph().num_cells(),
              map->graph().layers()[i].graph().num_cells());
    EXPECT_EQ(restored->layers()[i].graph().num_edges(),
              map->graph().layers()[i].graph().num_edges());
  }
  // The restored graph supports the same structural queries: the Fig. 6
  // inference chain still exists.
  const auto* zones =
      restored->FindLayer(map->zone_layer()).value();
  const auto hidden = zones->graph().UniqueShortestPathBetween(
      CellId(louvre::kZoneTemporaryExhibition),
      CellId(louvre::kZoneSouvenirShops), indoor::EdgeType::kAccessibility);
  ASSERT_TRUE(hidden.ok());
  EXPECT_EQ((*hidden)[0], CellId(louvre::kZonePassage));
}

TEST(GraphJsonRoundTripTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(MultiLayerGraphFromJson(JsonValue(1)).ok());
  JsonValue empty{JsonValue::Object{}};
  EXPECT_FALSE(MultiLayerGraphFromJson(empty).ok());
  // A layer with an unknown cell class.
  const auto bad = JsonValue::Parse(
      R"({"layers":[{"id":0,"name":"x","kind":"topographic",
           "cells":[{"id":1,"name":"c","class":"spaceship"}],
           "edges":[]}],"jointEdges":[]})");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(MultiLayerGraphFromJson(*bad).ok());
}

}  // namespace
}  // namespace sitm::io
