#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "base/result.h"
#include "base/status.h"
#include "base/types.h"

namespace sitm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("widget").ToString(), "NotFound: widget");
}

TEST(StatusTest, IsChecksCode) {
  EXPECT_TRUE(Status::NotFound("x").Is(StatusCode::kNotFound));
  EXPECT_FALSE(Status::NotFound("x").Is(StatusCode::kIOError));
}

TEST(StatusTest, WithContextPrefixesMessage) {
  const Status s = Status::NotFound("cell #3").WithContext("Trace");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "Trace: cell #3");
}

TEST(StatusTest, WithContextKeepsOkUntouched) {
  EXPECT_TRUE(Status::OK().WithContext("nope").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::IOError("a"));
}

TEST(StatusTest, StreamOperatorMatchesToString) {
  std::ostringstream os;
  os << Status::Corruption("bad bytes");
  EXPECT_EQ(os.str(), "Corruption: bad bytes");
}

TEST(StatusTest, AllCodeNamesAreDistinct) {
  std::unordered_set<std::string_view> names;
  for (int c = 0; c <= 9; ++c) {
    names.insert(StatusCodeName(static_cast<StatusCode>(c)));
  }
  EXPECT_EQ(names.size(), 10u);
}

Status FailsThenPropagates() {
  SITM_RETURN_IF_ERROR(Status::IOError("disk on fire"));
  return Status::Internal("should not get here");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(FailsThenPropagates(), Status::IOError("disk on fire"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SITM_ASSIGN_OR_RETURN(const int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnUnwrapsAndPropagates) {
  ASSERT_TRUE(Quarter(8).ok());
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
}

TEST(TypedIdTest, DefaultIsInvalid) {
  CellId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, CellId::Invalid());
}

TEST(TypedIdTest, ValueRoundTrip) {
  CellId id(60887);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 60887);
}

TEST(TypedIdTest, Ordering) {
  EXPECT_LT(CellId(1), CellId(2));
  EXPECT_GT(CellId(5), CellId(2));
  EXPECT_LE(CellId(2), CellId(2));
  EXPECT_GE(CellId(2), CellId(2));
  EXPECT_NE(CellId(1), CellId(2));
}

TEST(TypedIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<CellId, LayerId>);
  static_assert(!std::is_same_v<BoundaryId, ObjectId>);
  SUCCEED();
}

TEST(TypedIdTest, HashWorksInUnorderedContainers) {
  std::unordered_set<CellId> set;
  set.insert(CellId(1));
  set.insert(CellId(1));
  set.insert(CellId(2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(TypedIdTest, StreamFormat) {
  std::ostringstream os;
  os << CellId(7) << " " << CellId();
  EXPECT_EQ(os.str(), "#7 #invalid");
}

}  // namespace
}  // namespace sitm
