#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "geom/box.h"
#include "geom/grid_index.h"
#include "geom/point.h"
#include "geom/polygon.h"

namespace sitm::geom {
namespace {

// Property tests: GridIndex v2 (CSR layout + clipped buckets) against a
// brute-force oracle over randomized polygon soups. The soups mix
// axis-aligned rectangles (the fast build path), L-shaped rings and
// triangles (the Sutherland-Hodgman path), with overlaps allowed.

std::vector<Polygon> RandomSoup(Rng* rng, std::size_t n, double extent) {
  std::vector<Polygon> soup;
  while (soup.size() < n) {
    const double x0 = rng->NextDouble() * extent;
    const double y0 = rng->NextDouble() * extent;
    const double w = 1 + rng->NextDouble() * extent / 4;
    const double h = 1 + rng->NextDouble() * extent / 4;
    switch (rng->NextBounded(3)) {
      case 0:
        soup.push_back(Polygon::Rectangle(x0, y0, x0 + w, y0 + h));
        break;
      case 1:  // L-shape
        soup.push_back(Polygon({{x0, y0},
                                {x0 + w, y0},
                                {x0 + w, y0 + h / 2},
                                {x0 + w / 2, y0 + h / 2},
                                {x0 + w / 2, y0 + h},
                                {x0, y0 + h}}));
        break;
      default:  // triangle
        soup.push_back(
            Polygon({{x0, y0}, {x0 + w, y0}, {x0 + w / 2, y0 + h}}));
        break;
    }
    if (!soup.back().Validate().ok()) soup.pop_back();
  }
  return soup;
}

std::vector<std::size_t> BruteForceLocate(const std::vector<Polygon>& soup,
                                          Point p) {
  std::vector<std::size_t> hits;
  for (std::size_t i = 0; i < soup.size(); ++i) {
    if (soup[i].Contains(p)) hits.push_back(i);
  }
  return hits;
}

void CheckCsrInvariants(const GridIndex& index) {
  const auto& offsets = index.cell_offsets();
  const auto& entries = index.cell_entries();
  ASSERT_EQ(offsets.size(),
            static_cast<std::size_t>(index.cells_x()) * index.cells_y() + 1);
  ASSERT_EQ(offsets.front(), 0u);
  ASSERT_EQ(offsets.back(), entries.size());
  for (std::size_t c = 0; c + 1 < offsets.size(); ++c) {
    ASSERT_LE(offsets[c], offsets[c + 1]);
  }
  for (std::uint32_t entry : entries) {
    ASSERT_LT(entry & GridIndex::kEntryIndexMask, index.polygons().size());
  }
}

TEST(GridIndexPropertyTest, LocateMatchesBruteForceOracle) {
  Rng rng(20190326);
  for (int round = 0; round < 8; ++round) {
    const std::size_t n = 4 + rng.NextBounded(60);
    std::vector<Polygon> soup = RandomSoup(&rng, n, 100);
    const std::vector<Polygon> oracle_soup = soup;
    // Alternate between auto-tuned and explicit (coarse and fine)
    // resolutions so cell-boundary rounding is exercised at several
    // granularities.
    const int resolution = round % 2 == 0 ? 0 : 1 + static_cast<int>(
                                                        rng.NextBounded(96));
    const auto index = resolution == 0
                           ? GridIndex::Build(std::move(soup))
                           : GridIndex::Build(std::move(soup), resolution);
    ASSERT_TRUE(index.ok()) << index.status();
    CheckCsrInvariants(*index);
    const Box bounds = index->bounds();
    for (int q = 0; q < 400; ++q) {
      const Point p{bounds.min_x - 5 + rng.NextDouble() * (bounds.width() + 10),
                    bounds.min_y - 5 +
                        rng.NextDouble() * (bounds.height() + 10)};
      ASSERT_EQ(index->Locate(p), BruteForceLocate(oracle_soup, p))
          << "round " << round << " at (" << p.x << ", " << p.y << ")";
    }
    // Adversarial probes: polygon vertices (boundary semantics) and
    // points snapped to exact cell-boundary coordinates.
    for (const Polygon& polygon : oracle_soup) {
      for (const Point& v : polygon.vertices()) {
        ASSERT_EQ(index->Locate(v), BruteForceLocate(oracle_soup, v));
      }
    }
    const double cell_w = bounds.width() / index->cells_x();
    for (int k = 0; k <= index->cells_x(); ++k) {
      const Point p{bounds.min_x + k * cell_w,
                    bounds.min_y + rng.NextDouble() * bounds.height()};
      ASSERT_EQ(index->Locate(p), BruteForceLocate(oracle_soup, p));
    }
  }
}

TEST(GridIndexPropertyTest, CandidatesIsSoundAndBoundedByBboxOverlap) {
  Rng rng(77);
  std::vector<Polygon> soup = RandomSoup(&rng, 40, 100);
  const std::vector<Polygon> oracle_soup = soup;
  const auto index = GridIndex::Build(std::move(soup));
  ASSERT_TRUE(index.ok()) << index.status();
  for (int q = 0; q < 200; ++q) {
    const double x0 = rng.NextDouble() * 100;
    const double y0 = rng.NextDouble() * 100;
    const Box box(x0, y0, x0 + rng.NextDouble() * 30,
                  y0 + rng.NextDouble() * 30);
    const std::vector<std::size_t> candidates = index->Candidates(box);
    // Sorted and duplicate-free.
    ASSERT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
    ASSERT_TRUE(std::adjacent_find(candidates.begin(), candidates.end()) ==
                candidates.end());
    // Subset of bbox overlap.
    for (std::size_t idx : candidates) {
      ASSERT_TRUE(oracle_soup[idx].bounds().Intersects(box));
    }
    // Superset of true region overlap, witnessed by sampled points of
    // the box that some polygon contains.
    for (int s = 0; s < 40; ++s) {
      const Point p{box.min_x + rng.NextDouble() * box.width(),
                    box.min_y + rng.NextDouble() * box.height()};
      for (std::size_t i = 0; i < oracle_soup.size(); ++i) {
        if (!oracle_soup[i].Contains(p)) continue;
        ASSERT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                       i))
            << "polygon " << i << " contains (" << p.x << ", " << p.y
            << ") in the box but is not a candidate";
      }
    }
  }
}

TEST(GridIndexPropertyTest, WideBoxCandidatesKeepTheContract) {
  // Boxes spanning >= half the columns take the per-row entry-span fast
  // path; the documented contract (superset of true overlap, subset of
  // bbox overlap, sorted, unique) must hold there exactly as on the
  // fine-cell walk.
  Rng rng(123);
  std::vector<Polygon> soup = RandomSoup(&rng, 40, 100);
  const std::vector<Polygon> oracle_soup = soup;
  const auto index = GridIndex::Build(std::move(soup));
  ASSERT_TRUE(index.ok()) << index.status();
  const Box bounds = index->bounds();
  for (int q = 0; q < 100; ++q) {
    // 50%..100% of the extent per axis, randomly placed.
    const double w = bounds.width() * (0.5 + rng.NextDouble() * 0.5);
    const double h = bounds.height() * (0.5 + rng.NextDouble() * 0.5);
    const double x0 =
        bounds.min_x + rng.NextDouble() * (bounds.width() - w);
    const double y0 =
        bounds.min_y + rng.NextDouble() * (bounds.height() - h);
    const Box box(x0, y0, x0 + w, y0 + h);
    const std::vector<std::size_t> candidates = index->Candidates(box);
    ASSERT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
    ASSERT_TRUE(std::adjacent_find(candidates.begin(), candidates.end()) ==
                candidates.end());
    for (std::size_t idx : candidates) {
      ASSERT_TRUE(oracle_soup[idx].bounds().Intersects(box));
    }
    for (std::size_t i = 0; i < oracle_soup.size(); ++i) {
      // Vertex-in-box is a cheap certificate of true region overlap.
      for (const Point& v : oracle_soup[i].vertices()) {
        if (!box.Contains(v)) continue;
        ASSERT_TRUE(
            std::binary_search(candidates.begin(), candidates.end(), i))
            << "polygon " << i << " has a vertex in the box but is not a "
            << "candidate";
        break;
      }
    }
  }
}

TEST(GridIndexPropertyTest, LocateFirstAgreesWithLocate) {
  Rng rng(5);
  std::vector<Polygon> soup = RandomSoup(&rng, 25, 50);
  const auto index = GridIndex::Build(std::move(soup));
  ASSERT_TRUE(index.ok()) << index.status();
  for (int q = 0; q < 300; ++q) {
    const Point p{rng.NextDouble() * 60 - 5, rng.NextDouble() * 60 - 5};
    const std::vector<std::size_t> hits = index->Locate(p);
    const auto first = index->LocateFirst(p);
    if (hits.empty()) {
      ASSERT_FALSE(first.ok());
      ASSERT_EQ(first.status().code(), StatusCode::kNotFound);
    } else {
      ASSERT_TRUE(first.ok());
      ASSERT_EQ(*first, hits.front());
    }
  }
}

TEST(GridIndexPropertyTest, ScratchLocateMatchesAllocatingLocate) {
  Rng rng(6);
  std::vector<Polygon> soup = RandomSoup(&rng, 30, 80);
  const auto index = GridIndex::Build(std::move(soup));
  ASSERT_TRUE(index.ok()) << index.status();
  std::vector<std::size_t> scratch;
  for (int q = 0; q < 300; ++q) {
    const Point p{rng.NextDouble() * 90, rng.NextDouble() * 90};
    index->Locate(p, &scratch);
    ASSERT_EQ(scratch, index->Locate(p));
  }
}

}  // namespace
}  // namespace sitm::geom
