#include <gtest/gtest.h>

#include "core/builder.h"

namespace sitm::core {
namespace {

RawDetection Det(int object, int cell, std::int64_t start, std::int64_t end) {
  return RawDetection(ObjectId(object), CellId(cell), Timestamp(start),
                      Timestamp(end));
}

TEST(BuilderTest, SingleCleanVisit) {
  TrajectoryBuilder builder;
  const auto result = builder.Build(
      {Det(1, 10, 0, 100), Det(1, 20, 110, 300), Det(1, 30, 320, 400)});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
  const SemanticTrajectory& t = result->front();
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.object(), ObjectId(1));
  EXPECT_EQ(t.trace().size(), 3u);
  EXPECT_EQ(builder.report().records_in, 3u);
  EXPECT_EQ(builder.report().trajectories_out, 1u);
}

TEST(BuilderTest, InputNeedNotBeSorted) {
  TrajectoryBuilder builder;
  const auto result = builder.Build(
      {Det(1, 30, 320, 400), Det(1, 10, 0, 100), Det(1, 20, 110, 300)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->front().trace().at(0).cell, CellId(10));
  EXPECT_EQ(result->front().trace().at(2).cell, CellId(30));
}

TEST(BuilderTest, DropsZeroDurationDetections) {
  // §4.1: ~10% of detections have zero duration and are filtered as
  // errors.
  TrajectoryBuilder builder;
  const auto result = builder.Build(
      {Det(1, 10, 0, 100), Det(1, 20, 150, 150), Det(1, 30, 200, 300)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->front().trace().size(), 2u);
  EXPECT_EQ(builder.report().zero_duration_dropped, 1u);
}

TEST(BuilderTest, KeepsZeroDurationWhenDisabled) {
  BuilderOptions options;
  options.drop_zero_duration = false;
  TrajectoryBuilder builder(options);
  const auto result = builder.Build(
      {Det(1, 10, 0, 100), Det(1, 20, 150, 150), Det(1, 30, 200, 300)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->front().trace().size(), 3u);
  EXPECT_EQ(builder.report().zero_duration_dropped, 0u);
}

TEST(BuilderTest, ClipsSensorHandoverOverlap) {
  TrajectoryBuilder builder;
  // Second detection starts before the first ends (the paper's own
  // example trace shows such overlaps: 11:32:31 < 11:32:35).
  const auto result =
      builder.Build({Det(1, 10, 0, 100), Det(1, 20, 95, 200)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(builder.report().overlaps_clipped, 1u);
  EXPECT_EQ(result->front().trace().at(1).start(), Timestamp(101));
  EXPECT_TRUE(result->front().trace().Validate().ok());
}

TEST(BuilderTest, DropsContainedDetections) {
  TrajectoryBuilder builder;
  const auto result =
      builder.Build({Det(1, 10, 0, 300), Det(1, 20, 50, 100)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->front().trace().size(), 1u);
  EXPECT_EQ(builder.report().contained_dropped, 1u);
}

TEST(BuilderTest, SplitsVisitsAtSessionGaps) {
  BuilderOptions options;
  options.session_gap = Duration::Hours(2);
  TrajectoryBuilder builder(options);
  const auto result = builder.Build(
      {Det(1, 10, 0, 100), Det(1, 20, 200, 300),
       // 3 hours later: a second visit (a "returning" visitor).
       Det(1, 10, 11000, 11100), Det(1, 30, 11200, 11300)});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ(result->at(0).trace().size(), 2u);
  EXPECT_EQ(result->at(1).trace().size(), 2u);
  // Sequential ids.
  EXPECT_EQ(result->at(0).id(), TrajectoryId(1));
  EXPECT_EQ(result->at(1).id(), TrajectoryId(2));
}

TEST(BuilderTest, MergesConsecutiveSameCellDetections) {
  TrajectoryBuilder builder;
  const auto result = builder.Build(
      {Det(1, 10, 0, 100), Det(1, 10, 120, 200), Det(1, 20, 250, 400)});
  ASSERT_TRUE(result.ok());
  const Trace& trace = result->front().trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.at(0).start(), Timestamp(0));
  EXPECT_EQ(trace.at(0).end(), Timestamp(200));
  EXPECT_EQ(builder.report().merged_same_cell, 1u);
}

TEST(BuilderTest, SameCellBeyondMergeGapStaysSplit) {
  BuilderOptions options;
  options.same_cell_merge_gap = Duration::Seconds(10);
  TrajectoryBuilder builder(options);
  const auto result =
      builder.Build({Det(1, 10, 0, 100), Det(1, 10, 200, 300)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->front().trace().size(), 2u);
}

TEST(BuilderTest, MultipleObjectsAreSeparated) {
  TrajectoryBuilder builder;
  const auto result = builder.Build(
      {Det(2, 10, 0, 100), Det(1, 10, 0, 100), Det(1, 20, 150, 200)});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ(result->at(0).object(), ObjectId(1));
  EXPECT_EQ(result->at(1).object(), ObjectId(2));
  EXPECT_EQ(builder.report().objects_seen, 2u);
}

TEST(BuilderTest, InfersTransitionBoundaryFromGraph) {
  indoor::Nrg graph;
  for (int id : {10, 20}) {
    ASSERT_TRUE(graph
                    .AddCell(indoor::CellSpace(CellId(id), "c",
                                               indoor::CellClass::kRoom))
                    .ok());
  }
  ASSERT_TRUE(graph
                  .AddBoundary({BoundaryId(77), "door77",
                                indoor::BoundaryType::kDoor})
                  .ok());
  ASSERT_TRUE(graph
                  .AddSymmetricEdge(CellId(10), CellId(20),
                                    indoor::EdgeType::kAccessibility,
                                    BoundaryId(77))
                  .ok());
  BuilderOptions options;
  options.graph = &graph;
  TrajectoryBuilder builder(options);
  const auto result =
      builder.Build({Det(1, 10, 0, 100), Det(1, 20, 150, 200)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->front().trace().at(1).transition, BoundaryId(77));
  EXPECT_FALSE(result->front().trace().at(0).transition.valid());
}

TEST(BuilderTest, AmbiguousTransitionStaysUnknown) {
  indoor::Nrg graph;
  for (int id : {10, 20}) {
    ASSERT_TRUE(graph
                    .AddCell(indoor::CellSpace(CellId(id), "c",
                                               indoor::CellClass::kRoom))
                    .ok());
  }
  for (int b : {1, 2}) {
    ASSERT_TRUE(graph
                    .AddBoundary({BoundaryId(b), "door",
                                  indoor::BoundaryType::kDoor})
                    .ok());
    ASSERT_TRUE(graph
                    .AddEdge(CellId(10), CellId(20),
                             indoor::EdgeType::kAccessibility, BoundaryId(b))
                    .ok());
  }
  BuilderOptions options;
  options.graph = &graph;
  TrajectoryBuilder builder(options);
  const auto result =
      builder.Build({Det(1, 10, 0, 100), Det(1, 20, 150, 200)});
  ASSERT_TRUE(result.ok());
  // Two doors between the cells: the transition cannot be pinned down.
  EXPECT_FALSE(result->front().trace().at(1).transition.valid());
}

TEST(BuilderTest, DropsGraphInconsistentTeleports) {
  indoor::Nrg graph;
  for (int id : {10, 20, 30}) {
    ASSERT_TRUE(graph
                    .AddCell(indoor::CellSpace(CellId(id), "c",
                                               indoor::CellClass::kRoom))
                    .ok());
  }
  ASSERT_TRUE(graph
                  .AddSymmetricEdge(CellId(10), CellId(20),
                                    indoor::EdgeType::kAccessibility)
                  .ok());
  // Cell 30 is disconnected: a detection there after cell 10 is a
  // localization glitch.
  BuilderOptions options;
  options.graph = &graph;
  options.drop_graph_inconsistent = true;
  TrajectoryBuilder builder(options);
  const auto result = builder.Build(
      {Det(1, 10, 0, 100), Det(1, 30, 150, 200), Det(1, 20, 250, 300)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->front().trace().size(), 2u);
  EXPECT_EQ(builder.report().graph_inconsistent_dropped, 1u);
}

TEST(BuilderTest, RejectsInvalidInputs) {
  TrajectoryBuilder builder;
  EXPECT_FALSE(
      builder.Build({RawDetection(ObjectId(), CellId(1), Timestamp(0),
                                  Timestamp(1))})
          .ok());
  BuilderOptions options;
  options.default_annotations = AnnotationSet{};
  TrajectoryBuilder bad_options(options);
  EXPECT_FALSE(bad_options.Build({Det(1, 10, 0, 100)}).ok());
}

TEST(BuilderTest, AllZeroDurationVisitorVanishes) {
  TrajectoryBuilder builder;
  const auto result = builder.Build({Det(1, 10, 5, 5)});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(builder.report().zero_duration_dropped, 1u);
}

TEST(BuilderTest, DefaultAnnotationsAppliedToEveryTrajectory) {
  BuilderOptions options;
  options.default_annotations =
      AnnotationSet{{AnnotationKind::kActivity, "museum visit"}};
  options.first_trajectory_id = TrajectoryId(100);
  TrajectoryBuilder builder(options);
  const auto result = builder.Build({Det(1, 10, 0, 100)});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->front().annotations().Contains(
      AnnotationKind::kActivity, "museum visit"));
  EXPECT_EQ(result->front().id(), TrajectoryId(100));
}

}  // namespace
}  // namespace sitm::core
