#include <gtest/gtest.h>

#include "core/episode.h"

namespace sitm::core {
namespace {

PresenceInterval Pi(int cell, std::int64_t start, std::int64_t end,
                    AnnotationSet annotations = {}) {
  PresenceInterval p;
  p.cell = CellId(cell);
  p.interval = *qsr::TimeInterval::Make(Timestamp(start), Timestamp(end));
  p.annotations = std::move(annotations);
  return p;
}

// The paper's Fig. 5 walk: E(87) -> P(88) -> S(90) -> C(91), goal-
// annotated so the whole part carries "exit museum" while E->P->S also
// carries "buy souvenir".
SemanticTrajectory Fig5Visit() {
  const AnnotationSet exit_only{{AnnotationKind::kGoal, "exit museum"}};
  const AnnotationSet exit_and_buy{{AnnotationKind::kGoal, "exit museum"},
                                   {AnnotationKind::kGoal, "buy souvenir"}};
  return SemanticTrajectory(
      TrajectoryId(5), ObjectId(9),
      Trace({Pi(87, 0, 600, exit_and_buy), Pi(88, 620, 700, exit_and_buy),
             Pi(90, 710, 1500, exit_and_buy), Pi(91, 1510, 1600, exit_only)}),
      AnnotationSet{{AnnotationKind::kActivity, "visit"}});
}

TEST(EpisodeTest, IntervalInParent) {
  const SemanticTrajectory t = Fig5Visit();
  const Episode ep("x", 1, 3, AnnotationSet{{AnnotationKind::kGoal, "g"}});
  const auto iv = ep.IntervalIn(t);
  ASSERT_TRUE(iv.ok());
  EXPECT_EQ(iv->start(), Timestamp(620));
  EXPECT_EQ(iv->end(), Timestamp(1500));
  const Episode bad("x", 2, 9, {});
  EXPECT_FALSE(bad.IntervalIn(t).ok());
  const Episode empty("x", 2, 2, {});
  EXPECT_FALSE(empty.IntervalIn(t).ok());
}

TEST(EpisodePredicateTest, ForAllTuplesLiftsPointwiseConditions) {
  const SemanticTrajectory t = Fig5Visit();
  const EpisodePredicate all_long = ForAllTuples(StayAtLeast(
      Duration::Seconds(100)));
  EXPECT_FALSE(all_long(t, 0, 4));  // tuple 1 lasts only 80 s
  EXPECT_TRUE(all_long(t, 2, 3));
  EXPECT_FALSE(all_long(t, 2, 2));  // empty range is vacuously invalid
  EXPECT_FALSE(all_long(t, 3, 9));  // out of range
}

TEST(EpisodePredicateTest, InCellsAndHasAnnotation) {
  const SemanticTrajectory t = Fig5Visit();
  const TupleCondition in_shops = InCells({CellId(90), CellId(91)});
  EXPECT_FALSE(in_shops(t, 0));
  EXPECT_TRUE(in_shops(t, 2));
  const TupleCondition buying =
      HasAnnotation(AnnotationKind::kGoal, "buy souvenir");
  EXPECT_TRUE(buying(t, 0));
  EXPECT_FALSE(buying(t, 3));
}

TEST(ValidateEpisodeTest, ChecksAllThreeConditions) {
  const SemanticTrajectory t = Fig5Visit();
  const EpisodePredicate buying = ForAllTuples(
      HasAnnotation(AnnotationKind::kGoal, "buy souvenir"));
  // Valid: proper range, annotations differ from parent, predicate true.
  const Episode good("buy souvenir", 0, 3,
                     AnnotationSet{{AnnotationKind::kGoal, "buy souvenir"}});
  EXPECT_TRUE(ValidateEpisode(t, good, buying).ok());
  // (2) violated: same annotations as the parent trajectory.
  const Episode same_annotations(
      "dup", 0, 3, AnnotationSet{{AnnotationKind::kActivity, "visit"}});
  EXPECT_EQ(ValidateEpisode(t, same_annotations, buying).code(),
            StatusCode::kFailedPrecondition);
  // (3) violated: predicate fails on tuple 3.
  const Episode predicate_fails(
      "buy souvenir", 0, 4,
      AnnotationSet{{AnnotationKind::kGoal, "buy souvenir"}});
  EXPECT_FALSE(ValidateEpisode(t, predicate_fails, buying).ok());
}

TEST(ExtractMaximalEpisodesTest, FindsMaximalRuns) {
  const SemanticTrajectory t = Fig5Visit();
  // Stays >= 100 s: tuples 0, 2 qualify; tuple 1 (80 s) and 3 (90 s)
  // break the runs.
  const std::vector<Episode> stops = ExtractMaximalEpisodes(
      t, StayAtLeast(Duration::Seconds(100)), "stop",
      AnnotationSet{{AnnotationKind::kBehavior, "stopping"}});
  ASSERT_EQ(stops.size(), 2u);
  EXPECT_EQ(stops[0].begin, 0u);
  EXPECT_EQ(stops[0].end, 1u);
  EXPECT_EQ(stops[1].begin, 2u);
  EXPECT_EQ(stops[1].end, 3u);
  EXPECT_EQ(stops[0].label, "stop");
}

TEST(ExtractMaximalEpisodesTest, WholeTraceRunIsShrunk) {
  // If the condition holds everywhere the run must be trimmed to stay a
  // proper subtrajectory.
  const SemanticTrajectory t = Fig5Visit();
  const std::vector<Episode> all = ExtractMaximalEpisodes(
      t, [](const SemanticTrajectory&, std::size_t) { return true; }, "all",
      AnnotationSet{{AnnotationKind::kGoal, "g"}});
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].begin, 0u);
  EXPECT_EQ(all[0].end, t.trace().size() - 1);
}

TEST(ExtractMaximalEpisodesTest, NoMatchesNoEpisodes) {
  const SemanticTrajectory t = Fig5Visit();
  EXPECT_TRUE(ExtractMaximalEpisodes(
                  t, StayAtLeast(Duration::Hours(10)), "never",
                  AnnotationSet{{AnnotationKind::kGoal, "g"}})
                  .empty());
}

TEST(SegmentationTest, Fig5OverlappingEpisodesAreAValidSegmentation) {
  // "we may tag the whole E->P->S->C part with the 'exit museum' goal
  // and its E->P->S subsequence with the 'buy souvenir' tag" — the two
  // episodes overlap in time and together cover the trajectory.
  const SemanticTrajectory t = Fig5Visit();
  std::vector<Episode> episodes;
  episodes.emplace_back("exit museum", 0, 4,
                        AnnotationSet{{AnnotationKind::kGoal, "exit museum"}});
  episodes.emplace_back(
      "buy souvenir", 0, 3,
      AnnotationSet{{AnnotationKind::kGoal, "buy souvenir"}});
  // The full-range episode is not proper; shrink the exit episode to
  // start at tuple 1 instead (still covers when combined with the buy
  // episode starting at tuple 0).
  episodes[0].begin = 1;
  const auto seg = EpisodicSegmentation::Make(&t, episodes);
  ASSERT_TRUE(seg.ok()) << seg.status();
  EXPECT_TRUE(seg->HasOverlaps());
  const auto pairs = seg->OverlappingPairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (std::pair<std::size_t, std::size_t>{0, 1}));
}

TEST(SegmentationTest, RejectsNonCoveringEpisodeSets) {
  const SemanticTrajectory t = Fig5Visit();
  std::vector<Episode> episodes;
  episodes.emplace_back("start only", 0, 1,
                        AnnotationSet{{AnnotationKind::kGoal, "g"}});
  EXPECT_EQ(EpisodicSegmentation::Make(&t, episodes).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SegmentationTest, RejectsEpisodesEqualToParentAnnotations) {
  const SemanticTrajectory t = Fig5Visit();
  std::vector<Episode> episodes;
  episodes.emplace_back("a", 0, 3,
                        AnnotationSet{{AnnotationKind::kActivity, "visit"}});
  episodes.emplace_back("b", 2, 4,
                        AnnotationSet{{AnnotationKind::kGoal, "x"}});
  EXPECT_FALSE(EpisodicSegmentation::Make(&t, episodes).ok());
}

TEST(SegmentationTest, RejectsEmptyAndNull) {
  const SemanticTrajectory t = Fig5Visit();
  EXPECT_FALSE(EpisodicSegmentation::Make(&t, {}).ok());
  EXPECT_FALSE(EpisodicSegmentation::Make(nullptr, {}).ok());
}

TEST(SegmentationTest, NonOverlappingSegmentationHasNoPairs) {
  const SemanticTrajectory t = Fig5Visit();
  std::vector<Episode> episodes;
  episodes.emplace_back("first half", 0, 2,
                        AnnotationSet{{AnnotationKind::kGoal, "a"}});
  episodes.emplace_back("second half", 2, 4,
                        AnnotationSet{{AnnotationKind::kGoal, "b"}});
  const auto seg = EpisodicSegmentation::Make(&t, episodes);
  ASSERT_TRUE(seg.ok()) << seg.status();
  EXPECT_FALSE(seg->HasOverlaps());
}

}  // namespace
}  // namespace sitm::core
