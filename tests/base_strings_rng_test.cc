#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "base/rng.h"
#include "base/strings.h"

namespace sitm {
namespace {

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("solo", ','), (std::vector<std::string>{"solo"}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, JoinInvertsSplit) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(StrJoin(parts, ","), "a,b,c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"one"}, " - "), "one");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(StrTrim("  x  "), "x");
  EXPECT_EQ(StrTrim("\t\nx y\r "), "x y");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StringsTest, Affixes) {
  EXPECT_TRUE(StartsWith("Zone60887", "Zone"));
  EXPECT_FALSE(StartsWith("Zone", "Zone60887"));
  EXPECT_TRUE(EndsWith("visit.csv", ".csv"));
  EXPECT_FALSE(EndsWith(".csv", "visit.csv"));
}

TEST(StringsTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("60887").value(), 60887);
  EXPECT_EQ(ParseInt64(" -5 ").value(), -5);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999").ok());
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringsTest, AsciiLower) {
  EXPECT_EQ(AsciiLower("CoveredBy"), "coveredby");
  EXPECT_EQ(AsciiLower("123-XYZ"), "123-xyz");
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 15);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextBoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0;
  double sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(480.0);
  EXPECT_NEAR(sum / n, 480.0, 20.0);
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(17);
  const std::vector<double> weights{0.0, 1.0, 0.0, 3.0};
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_GT(counts[3], counts[1]);  // 3:1 odds
  EXPECT_GT(counts[1], 0);
}

TEST(RngTest, WeightedDegenerateInputs) {
  Rng rng(19);
  EXPECT_EQ(rng.NextWeighted({0.0, 0.0}), 0u);     // no mass -> first
  EXPECT_EQ(rng.NextWeighted({-1.0, 5.0}), 1u);    // negatives ignored
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
}

TEST(RngTest, ShuffleDeterministicPerSeed) {
  std::vector<int> a{1, 2, 3, 4, 5};
  std::vector<int> b{1, 2, 3, 4, 5};
  Rng ra(31);
  Rng rb(31);
  ra.Shuffle(&a);
  rb.Shuffle(&b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sitm
