// End-to-end pipeline tests: map -> simulate -> clean -> build -> infer
// -> project -> mine -> export, with cross-module invariants checked at
// every stage.
#include <gtest/gtest.h>

#include "core/builder.h"
#include "core/episode.h"
#include "core/inference.h"
#include "core/projection.h"
#include "io/graph_export.h"
#include "io/indoorgml.h"
#include "louvre/museum.h"
#include "louvre/simulator.h"
#include "mining/choropleth.h"
#include "mining/floor_switch.h"
#include "mining/flow.h"
#include "mining/patterns.h"
#include "mining/profiling.h"
#include "mining/similarity.h"
#include "mining/stats.h"

namespace sitm {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto map = louvre::LouvreMap::Build();
    ASSERT_TRUE(map.ok()) << map.status();
    map_ = new louvre::LouvreMap(std::move(map).value());

    louvre::SimulatorOptions options;
    options.num_visitors = 200;
    options.num_returning = 60;
    options.num_third_visits = 20;
    options.num_detections = 1500;
    options.seed = 777;
    louvre::VisitSimulator simulator(map_, options);
    auto dataset = simulator.Generate();
    ASSERT_TRUE(dataset.ok()) << dataset.status();
    louvre::VisitDataset cleaned = std::move(dataset).value();
    cleaned.FilterZeroDuration();
    dataset_ = new louvre::VisitDataset(std::move(cleaned));

    core::BuilderOptions builder_options;
    builder_options.graph =
        &map_->graph().FindLayer(map_->zone_layer()).value()->graph();
    core::TrajectoryBuilder builder(builder_options);
    auto visits = builder.Build(dataset_->ToRawDetections());
    ASSERT_TRUE(visits.ok()) << visits.status();
    visits_ = new std::vector<core::SemanticTrajectory>(
        std::move(visits).value());
  }

  static void TearDownTestSuite() {
    delete visits_;
    delete dataset_;
    delete map_;
  }

  static const louvre::LouvreMap* map_;
  static const louvre::VisitDataset* dataset_;
  static const std::vector<core::SemanticTrajectory>* visits_;
};

const louvre::LouvreMap* PipelineTest::map_ = nullptr;
const louvre::VisitDataset* PipelineTest::dataset_ = nullptr;
const std::vector<core::SemanticTrajectory>* PipelineTest::visits_ = nullptr;

TEST_F(PipelineTest, EveryBuiltTrajectoryIsStructurallyValid) {
  for (const core::SemanticTrajectory& t : *visits_) {
    ASSERT_TRUE(t.Validate().ok()) << t.id().value();
  }
}

TEST_F(PipelineTest, ErrorFilteringCreatesFig6GapsThatInferenceCloses) {
  // The simulator walks accessibility edges, but dropping zero-duration
  // detection errors removes steps — producing exactly the paper's
  // Fig. 6 situation: consecutive observed zones that are not adjacent,
  // whose intermediate passage must be inferred from topology.
  const indoor::Nrg& zones =
      map_->graph().FindLayer(map_->zone_layer()).value()->graph();
  int gappy_before = 0;
  int inserted = 0;
  int consistent_after = 0;
  int completed_count = 0;
  for (const core::SemanticTrajectory& t : *visits_) {
    if (!t.trace().ValidateAgainstGraph(zones).ok()) ++gappy_before;
    const auto result = core::InferHiddenPassages(t, zones);
    ASSERT_TRUE(result.ok()) << result.status();
    inserted += result->second.inserted;
    ++completed_count;
    if (result->second.ambiguous == 0 && result->second.disconnected == 0) {
      // With no ambiguity left, the completed trace must be fully
      // consistent with the accessibility graph.
      ASSERT_TRUE(result->first.trace().ValidateAgainstGraph(zones).ok())
          << t.id().value();
      ++consistent_after;
    }
  }
  EXPECT_GT(gappy_before, 0);
  EXPECT_GT(inserted, 0);
  EXPECT_GT(consistent_after, completed_count / 2);
}

TEST_F(PipelineTest, DroppedDetectionsCreateInferableGaps) {
  // Remove middle detections from a long visit and let topology-based
  // inference recover them (the Fig. 6 mechanism, exercised end to end).
  const indoor::Nrg& zones =
      map_->graph().FindLayer(map_->zone_layer()).value()->graph();
  int recovered = 0;
  int holes_made = 0;
  for (const core::SemanticTrajectory& t : *visits_) {
    if (t.trace().size() < 5) continue;
    // Drop every second interior tuple.
    core::Trace sparse;
    std::vector<CellId> dropped;
    for (std::size_t i = 0; i < t.trace().size(); ++i) {
      if (i % 2 == 1 && i + 1 < t.trace().size()) {
        dropped.push_back(t.trace().at(i).cell);
        continue;
      }
      sparse.Append(t.trace().at(i));
    }
    if (dropped.empty()) continue;
    holes_made += static_cast<int>(dropped.size());
    core::SemanticTrajectory gappy(t.id(), t.object(), std::move(sparse),
                                   t.annotations());
    const auto result = core::InferHiddenPassages(gappy, zones);
    ASSERT_TRUE(result.ok()) << result.status();
    recovered += result->second.inserted;
    if (holes_made > 200) break;
  }
  ASSERT_GT(holes_made, 0);
  // Many chains in the zone graph are unique paths, so a substantial
  // fraction must be recovered.
  EXPECT_GT(recovered, holes_made / 4);
}

TEST_F(PipelineTest, ProjectionToEveryHierarchyLevelStaysValid) {
  const auto h = map_->BuildHierarchy();
  ASSERT_TRUE(h.ok());
  const core::SemanticTrajectory& t = visits_->front();
  for (int level = louvre::kLevelZone; level >= louvre::kLevelMuseum;
       --level) {
    const auto projected = core::ProjectTrajectory(t, *h, level);
    ASSERT_TRUE(projected.ok()) << projected.status();
    EXPECT_TRUE(projected->Validate().ok());
    EXPECT_LE(projected->trace().size(), t.trace().size());
    EXPECT_EQ(projected->Span().seconds(), t.Span().seconds());
  }
  // At museum level every visit collapses to a single presence.
  const auto museum_level =
      core::ProjectTrajectory(t, *h, louvre::kLevelMuseum);
  ASSERT_TRUE(museum_level.ok());
  EXPECT_EQ(museum_level->trace().size(), 1u);
  EXPECT_EQ(museum_level->trace().at(0).cell,
            CellId(louvre::kMuseumCellId));
}

TEST_F(PipelineTest, MultiGranularityPatternsFromTheSameDataset) {
  // §3.2's promise: room-level and floor-level patterns from one
  // dataset. Zone-level sequences are longer than wing-level ones.
  const auto h = map_->BuildHierarchy();
  ASSERT_TRUE(h.ok());
  std::vector<std::vector<CellId>> zone_seqs;
  std::vector<std::vector<CellId>> wing_seqs;
  for (std::size_t i = 0; i < std::min<std::size_t>(visits_->size(), 100);
       ++i) {
    const core::SemanticTrajectory& t = (*visits_)[i];
    zone_seqs.push_back(mining::CellSequenceOf(t));
    const auto wings =
        core::ProjectTrajectory(t, *h, louvre::kLevelWing);
    ASSERT_TRUE(wings.ok());
    wing_seqs.push_back(mining::CellSequenceOf(*wings));
  }
  std::size_t zone_total = 0;
  std::size_t wing_total = 0;
  for (std::size_t i = 0; i < zone_seqs.size(); ++i) {
    zone_total += zone_seqs[i].size();
    wing_total += wing_seqs[i].size();
    EXPECT_LE(wing_seqs[i].size(), zone_seqs[i].size());
  }
  EXPECT_LT(wing_total, zone_total);
  mining::PatternOptions options;
  options.min_support = 5;
  options.max_length = 3;
  const auto zone_patterns = mining::MinePatterns(zone_seqs, options);
  const auto wing_patterns = mining::MinePatterns(wing_seqs, options);
  ASSERT_TRUE(zone_patterns.ok());
  ASSERT_TRUE(wing_patterns.ok());
  EXPECT_FALSE(zone_patterns->empty());
  EXPECT_FALSE(wing_patterns->empty());
}

TEST_F(PipelineTest, StopEpisodesAndSegmentationOnRealTrajectories) {
  for (const core::SemanticTrajectory& t : *visits_) {
    if (t.trace().size() < 4) continue;
    const std::vector<core::Episode> stops = core::ExtractMaximalEpisodes(
        t, core::StayAtLeast(Duration::Minutes(1)), "stop",
        core::AnnotationSet{{core::AnnotationKind::kBehavior, "stopping"}});
    for (const core::Episode& ep : stops) {
      EXPECT_TRUE(core::ValidateEpisode(
                      t, ep,
                      core::ForAllTuples(
                          core::StayAtLeast(Duration::Minutes(1))))
                      .ok());
    }
    break;
  }
}

TEST_F(PipelineTest, GapClassificationUsesExitZones) {
  int semantic = 0;
  int holes = 0;
  for (const core::SemanticTrajectory& t : *visits_) {
    for (const core::GapInfo& gap : core::ClassifyGaps(
             t.trace(), Duration::Minutes(5), map_->exit_zones())) {
      if (gap.kind == core::GapKind::kSemanticGap) {
        ++semantic;
      } else {
        ++holes;
      }
    }
  }
  // The simulator produces mostly continuous visits; any long pauses
  // are classified one way or the other without crashing.
  SUCCEED() << semantic << " semantic gaps, " << holes << " holes";
}

TEST_F(PipelineTest, FlowsChoroplethAndFloorSwitchingAgree) {
  const mining::FlowMatrix flows = mining::FlowMatrix::Build(*visits_);
  const mining::DatasetStats stats = mining::ComputeDatasetStats(*visits_);
  EXPECT_EQ(flows.total(), stats.num_transitions);
  const auto bins = mining::BuildChoropleth(
      *visits_,
      [&](CellId c) {
        return std::find(map_->ground_floor_zones().begin(),
                         map_->ground_floor_zones().end(),
                         c) != map_->ground_floor_zones().end();
      },
      nullptr);
  EXPECT_LE(bins.size(), 11u);
  std::size_t bin_total = 0;
  for (const auto& bin : bins) bin_total += bin.detections;
  EXPECT_LE(bin_total, stats.num_detections);
  const auto h = map_->BuildHierarchy();
  ASSERT_TRUE(h.ok());
  const auto floor_stats = mining::AnalyzeFloorSwitching(
      *visits_, *h, louvre::kLevelFloor);
  ASSERT_TRUE(floor_stats.ok());
  std::size_t histogram_total = 0;
  for (const auto& [switches, count] : floor_stats->switches_per_visit) {
    histogram_total += count;
  }
  EXPECT_EQ(histogram_total, visits_->size());
}

TEST_F(PipelineTest, ProfilingSplitsVisitorsIntoStyles) {
  std::vector<mining::VisitFeatures> features;
  std::vector<double> coverages;
  std::vector<double> stays;
  for (const core::SemanticTrajectory& t : *visits_) {
    const mining::VisitFeatures f = mining::ExtractFeatures(t, 52);
    features.push_back(f);
    coverages.push_back(f.coverage);
    stays.push_back(f.mean_stay_minutes);
  }
  std::sort(coverages.begin(), coverages.end());
  std::sort(stays.begin(), stays.end());
  const double median_coverage = coverages[coverages.size() / 2];
  const double median_stay = stays[stays.size() / 2];
  int counts[4] = {0, 0, 0, 0};
  for (const mining::VisitFeatures& f : features) {
    ++counts[static_cast<int>(
        mining::ClassifyStyle(f, median_coverage, median_stay))];
  }
  // Median-based splits necessarily populate several quadrants.
  int nonempty = 0;
  for (int c : counts) nonempty += c > 0 ? 1 : 0;
  EXPECT_GE(nonempty, 3);
}

TEST_F(PipelineTest, ExportsAreWellFormed) {
  const io::JsonValue json = io::MultiLayerGraphToJson(map_->graph());
  const auto reparsed = io::JsonValue::Parse(json.Dump());
  ASSERT_TRUE(reparsed.ok());
  const std::string xml = io::ExportIndoorGml(map_->graph());
  EXPECT_NE(xml.find("Zone60887"), std::string::npos);
  const std::string dot = io::MultiLayerGraphToDot(map_->graph());
  EXPECT_NE(dot.find("cluster_3"), std::string::npos);
  // Trajectory JSON round-trip on a real built trajectory.
  const auto restored =
      io::TrajectoryFromJson(io::TrajectoryToJson(visits_->front()));
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->trace().size(), visits_->front().trace().size());
}

TEST_F(PipelineTest, SimilarityMatrixOnRealVisits) {
  const std::size_t n = std::min<std::size_t>(visits_->size(), 20);
  const std::vector<core::SemanticTrajectory> sample(
      visits_->begin(), visits_->begin() + n);
  const std::vector<double> matrix =
      mining::DistanceMatrix(sample, mining::DwellDistributionDistance);
  Rng rng(5);
  const auto clusters = mining::KMedoids(matrix, n, 3, &rng);
  ASSERT_TRUE(clusters.ok()) << clusters.status();
  EXPECT_EQ(clusters->assignment.size(), n);
}

}  // namespace
}  // namespace sitm
