#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "io/json.h"

namespace sitm::io {
namespace {

TEST(JsonValueTest, KindPredicates) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_TRUE(JsonValue(true).is_bool());
  EXPECT_TRUE(JsonValue(42).is_int());
  EXPECT_TRUE(JsonValue(4.5).is_double());
  EXPECT_TRUE(JsonValue(42).is_number());
  EXPECT_TRUE(JsonValue("x").is_string());
  EXPECT_TRUE(JsonValue(JsonValue::Array{}).is_array());
  EXPECT_TRUE(JsonValue(JsonValue::Object{}).is_object());
}

TEST(JsonValueTest, CheckedAccessors) {
  EXPECT_EQ(JsonValue(true).AsBool().value(), true);
  EXPECT_EQ(JsonValue(42).AsInt().value(), 42);
  EXPECT_DOUBLE_EQ(JsonValue(42).AsDouble().value(), 42.0);  // int widens
  EXPECT_DOUBLE_EQ(JsonValue(2.5).AsDouble().value(), 2.5);
  EXPECT_EQ(JsonValue("hi").AsString().value(), "hi");
  EXPECT_FALSE(JsonValue(42).AsBool().ok());
  EXPECT_FALSE(JsonValue(2.5).AsInt().ok());
  EXPECT_FALSE(JsonValue("x").AsArray().ok());
  EXPECT_FALSE(JsonValue(1).AsObject().ok());
}

TEST(JsonValueTest, ObjectGetSet) {
  JsonValue obj{JsonValue::Object{}};
  ASSERT_TRUE(obj.Set("a", 1).ok());
  ASSERT_TRUE(obj.Set("b", "two").ok());
  EXPECT_EQ(obj.Get("a").value()->AsInt().value(), 1);
  EXPECT_FALSE(obj.Get("zzz").ok());
  EXPECT_FALSE(JsonValue(1).Set("a", 2).ok());
  EXPECT_FALSE(JsonValue(1).Get("a").ok());
}

TEST(JsonValueTest, ArrayAppend) {
  JsonValue arr{JsonValue::Array{}};
  ASSERT_TRUE(arr.Append(1).ok());
  ASSERT_TRUE(arr.Append("x").ok());
  EXPECT_EQ(arr.AsArray().value()->size(), 2u);
  EXPECT_FALSE(JsonValue("s").Append(1).ok());
}

TEST(JsonDumpTest, CompactFormat) {
  JsonValue obj{JsonValue::Object{}};
  ASSERT_TRUE(obj.Set("n", nullptr).ok());
  ASSERT_TRUE(obj.Set("b", false).ok());
  ASSERT_TRUE(obj.Set("i", 42).ok());
  ASSERT_TRUE(obj.Set("s", "hi").ok());
  JsonValue arr{JsonValue::Array{}};
  ASSERT_TRUE(arr.Append(1).ok());
  ASSERT_TRUE(arr.Append(2).ok());
  ASSERT_TRUE(obj.Set("a", std::move(arr)).ok());
  EXPECT_EQ(obj.Dump(),
            R"({"n":null,"b":false,"i":42,"s":"hi","a":[1,2]})");
}

TEST(JsonDumpTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonValue("a\"b\\c\nd\te").Dump(),
            R"("a\"b\\c\nd\te")");
  EXPECT_EQ(JsonValue(std::string("ctl\x01")).Dump(), "\"ctl\\u0001\"");
}

TEST(JsonDumpTest, EmptyContainers) {
  EXPECT_EQ(JsonValue(JsonValue::Array{}).Dump(), "[]");
  EXPECT_EQ(JsonValue(JsonValue::Object{}).Dump(), "{}");
  EXPECT_EQ(JsonValue(JsonValue::Array{}).Pretty(), "[]");
}

TEST(JsonDumpTest, PrettyIndents) {
  JsonValue obj{JsonValue::Object{}};
  ASSERT_TRUE(obj.Set("a", 1).ok());
  EXPECT_EQ(obj.Pretty(), "{\n  \"a\": 1\n}");
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonValue::Parse("null").value().is_null());
  EXPECT_EQ(JsonValue::Parse("true").value().AsBool().value(), true);
  EXPECT_EQ(JsonValue::Parse("false").value().AsBool().value(), false);
  EXPECT_EQ(JsonValue::Parse("-17").value().AsInt().value(), -17);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("2.5e2").value().AsDouble().value(),
                   250.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"").value().AsString().value(), "hi");
}

TEST(JsonParseTest, NestedStructures) {
  const auto v = JsonValue::Parse(
      R"({"layers":[{"id":3,"cells":[1,2]},{"id":4,"cells":[]}],"ok":true})");
  ASSERT_TRUE(v.ok()) << v.status();
  const auto layers = v->Get("layers");
  ASSERT_TRUE(layers.ok());
  const auto arr = (*layers)->AsArray();
  ASSERT_TRUE(arr.ok());
  ASSERT_EQ((*arr)->size(), 2u);
  EXPECT_EQ((*arr)->at(0).Get("id").value()->AsInt().value(), 3);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(JsonValue::Parse(R"("a\"b\\c\ndA")").value()
                .AsString()
                .value(),
            "a\"b\\c\ndA");
  EXPECT_EQ(JsonValue::Parse(R"("café")").value().AsString().value(),
            "caf\xc3\xa9");
}

TEST(JsonParseTest, WhitespaceTolerant) {
  EXPECT_TRUE(JsonValue::Parse(" {\n \"a\" :\t[ 1 , 2 ] } ").ok());
}

TEST(JsonParseTest, Errors) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("tru").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());  // trailing garbage
  EXPECT_FALSE(JsonValue::Parse("-").ok());
  EXPECT_FALSE(JsonValue::Parse("\"bad\\q\"").ok());
  EXPECT_FALSE(JsonValue::Parse("\"bad\\u00g1\"").ok());
}

TEST(JsonParseTest, NestingDepthLimit) {
  // The parser caps nesting at 96 levels so adversarial bodies (the
  // live ingest endpoint feeds network input here) cannot blow the
  // stack: the boundary parses, one past it is a clean error.
  const auto nested = [](std::size_t depth) {
    std::string text(depth, '[');
    text.append(depth, ']');
    return text;
  };
  EXPECT_TRUE(JsonValue::Parse(nested(96)).ok());
  const auto too_deep = JsonValue::Parse(nested(97));
  ASSERT_FALSE(too_deep.ok());
  EXPECT_NE(too_deep.status().message().find("nesting"), std::string::npos);
  // Unclosed deep nesting must also come back as a Status — never a
  // crash — even at pathological depth.
  EXPECT_FALSE(JsonValue::Parse(std::string(10000, '[')).ok());
  EXPECT_FALSE(JsonValue::Parse(
                   "{\"a\":" + std::string(10000, '[') + "1").ok());
}

class JsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTrip, ParseDumpParseIsStable) {
  const auto first = JsonValue::Parse(GetParam());
  ASSERT_TRUE(first.ok()) << first.status();
  const std::string dumped = first->Dump();
  const auto second = JsonValue::Parse(dumped);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->Dump(), dumped);
}

INSTANTIATE_TEST_SUITE_P(
    Documents, JsonRoundTrip,
    ::testing::Values(
        "null", "true", "42", "-3.75", "\"text\"", "[]", "{}",
        "[1,[2,[3,[4]]]]",
        R"({"trace":[{"cell":60887,"start":"2017-02-01 17:30:21"}]})",
        R"({"a":null,"b":[true,false],"c":{"d":"e"},"f":1e-3})",
        R"(["mixed",1,2.5,null,{"k":[]}])"));

}  // namespace
}  // namespace sitm::io
