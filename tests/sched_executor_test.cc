// The work-stealing executor's contracts: dependency ordering, the
// determinism discipline across worker counts, the ParallelFor /
// ParallelMap graph adapters and their edge cases, exception surfacing,
// run-after-shutdown semantics, nesting, and span tracing.

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/task_graph.h"
#include "base/task_runner.h"
#include "sched/executor.h"
#include "sched/parallel.h"

namespace sitm::sched {
namespace {

std::size_t Hc() { return Executor::DefaultConcurrency(); }

// Worker counts the determinism contract is pinned at (the ISSUE's
// {1, 2, hw} set, deduplicated).
std::vector<std::size_t> WorkerCounts() {
  std::vector<std::size_t> counts{1, 2};
  if (Hc() != 1 && Hc() != 2) counts.push_back(Hc());
  return counts;
}

TEST(ExecutorTest, DefaultConcurrencyIsAtLeastOne) {
  EXPECT_GE(Executor::DefaultConcurrency(), 1u);
  Executor defaulted;
  EXPECT_EQ(defaulted.num_workers(), Executor::DefaultConcurrency());
  Executor two(2);
  EXPECT_EQ(two.num_workers(), 2u);
}

TEST(ExecutorTest, EmptyGraphRunsToCompletion) {
  Executor executor(2);
  EXPECT_TRUE(executor.Run(TaskGraph{}).ok());
}

TEST(ExecutorTest, EdgesAreHappensBeforeAtEveryWorkerCount) {
  // A chain a -> b -> c -> d: each link's write must be visible to the
  // next. Plain (non-atomic) ints make any ordering bug a real race.
  for (const std::size_t workers : WorkerCounts()) {
    Executor executor(workers);
    int value = 0;
    TaskGraph graph;
    const TaskId a = graph.AddTask("a", [&] { value = 1; });
    const TaskId b = graph.AddTask("b", [&] { value = value * 10 + 2; });
    const TaskId c = graph.AddTask("c", [&] { value = value * 10 + 3; });
    const TaskId d = graph.AddTask("d", [&] { value = value * 10 + 4; });
    ASSERT_TRUE(graph.AddEdge(a, b).ok());
    ASSERT_TRUE(graph.AddEdge(b, c).ok());
    ASSERT_TRUE(graph.AddEdge(c, d).ok());
    ASSERT_TRUE(executor.Run(std::move(graph)).ok());
    EXPECT_EQ(value, 1234) << workers << " workers";
  }
}

TEST(ExecutorTest, DiamondJoinSeesBothBranches) {
  for (const std::size_t workers : WorkerCounts()) {
    Executor executor(workers);
    int left = 0;
    int right = 0;
    int joined = 0;
    TaskGraph graph;
    const TaskId a = graph.AddTask("a", [&] { left = 1; right = 2; });
    const TaskId b = graph.AddTask("b", [&] { left += 10; });
    const TaskId c = graph.AddTask("c", [&] { right += 20; });
    const TaskId d = graph.AddTask("d", [&] { joined = left + right; });
    ASSERT_TRUE(graph.AddEdge(a, b).ok());
    ASSERT_TRUE(graph.AddEdge(a, c).ok());
    ASSERT_TRUE(graph.AddEdge(b, d).ok());
    ASSERT_TRUE(graph.AddEdge(c, d).ok());
    ASSERT_TRUE(executor.Run(std::move(graph)).ok());
    EXPECT_EQ(joined, 33) << workers << " workers";
  }
}

TEST(ExecutorTest, RunRejectsCyclicGraphsWithoutRunningAnything) {
  Executor executor(2);
  std::atomic<int> ran{0};
  TaskGraph graph;
  const TaskId a = graph.AddTask("a", [&] { ran.fetch_add(1); });
  const TaskId b = graph.AddTask("b", [&] { ran.fetch_add(1); });
  ASSERT_TRUE(graph.AddEdge(a, b).ok());
  ASSERT_TRUE(graph.AddEdge(b, a).ok());
  EXPECT_FALSE(executor.Run(std::move(graph)).ok());
  EXPECT_EQ(ran.load(), 0);
}

TEST(ExecutorTest, ParallelMapByteIdenticalAcrossWorkerCounts) {
  // The determinism acceptance: the same map at nullptr (inline), 1, 2,
  // and hardware-concurrency workers returns byte-identical vectors.
  constexpr std::size_t kN = 4096;
  auto run = [](Executor* executor) {
    return ParallelMap<std::uint64_t>(
        executor, kN, [](std::size_t i) { return i * 2654435761u; },
        /*grain=*/29);
  };
  const std::vector<std::uint64_t> reference = run(nullptr);
  for (const std::size_t workers : WorkerCounts()) {
    Executor executor(workers);
    EXPECT_EQ(run(&executor), reference) << workers << " workers";
  }
}

TEST(ExecutorTest, ParallelForZeroItemsNeverInvokesTheBody) {
  Executor executor(2);
  std::atomic<int> calls{0};
  ParallelFor(&executor, 0,
              [&calls](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  ParallelFor(nullptr, 0,
              [&calls](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ExecutorTest, ParallelForRangeSmallerThanWorkersCoversExactlyOnce) {
  Executor executor(8);
  for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
    std::vector<std::atomic<int>> touched(n);
    for (auto& t : touched) t.store(0);
    ParallelFor(&executor, n,
                [&touched](std::size_t begin, std::size_t end) {
                  for (std::size_t i = begin; i < end; ++i) {
                    touched[i].fetch_add(1);
                  }
                });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(touched[i].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ExecutorTest, ParallelForHonorsAnExplicitGrain) {
  Executor executor(2);
  constexpr std::size_t kN = 100;
  constexpr std::size_t kGrain = 7;
  Mutex mutex;
  std::vector<std::size_t> chunk_sizes;
  ParallelFor(
      &executor, kN,
      [&](std::size_t begin, std::size_t end) {
        MutexLock lock(mutex);
        chunk_sizes.push_back(end - begin);
      },
      kGrain);
  std::size_t total = 0;
  for (const std::size_t size : chunk_sizes) {
    EXPECT_LE(size, kGrain);
    total += size;
  }
  EXPECT_EQ(total, kN);
}

TEST(ExecutorTest, ThrowingTaskSurfacesAsInternalAndRestStillRuns) {
  for (const std::size_t workers : WorkerCounts()) {
    Executor executor(workers);
    std::atomic<int> ran{0};
    TaskGraph graph;
    graph.AddTask("healthy", [&] { ran.fetch_add(1); });
    graph.AddTask("exploding-task", [] {
      throw std::runtime_error("kaboom");
    });
    graph.AddTask("bystander", [&] { ran.fetch_add(1); });
    const Status status = executor.Run(std::move(graph));
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("exploding-task"), std::string::npos)
        << status.message();
    EXPECT_NE(status.message().find("kaboom"), std::string::npos)
        << status.message();
    EXPECT_EQ(ran.load(), 2);

    // The executor survives a failed run.
    TaskGraph again;
    std::atomic<int> after{0};
    again.AddTask("recovery", [&] { after.fetch_add(1); });
    EXPECT_TRUE(executor.Run(std::move(again)).ok());
    EXPECT_EQ(after.load(), 1);
  }
}

TEST(ExecutorTest, RunAfterShutdownExecutesInlineOnTheCallingThread) {
  Executor executor(2);
  executor.Shutdown();
  executor.Shutdown();  // idempotent
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id observed;
  int value = 0;
  TaskGraph graph;
  const TaskId a = graph.AddTask("a", [&] {
    observed = std::this_thread::get_id();
    value = 41;
  });
  const TaskId b = graph.AddTask("b", [&] { ++value; });
  ASSERT_TRUE(graph.AddEdge(a, b).ok());
  ASSERT_TRUE(executor.Run(std::move(graph)).ok());
  EXPECT_EQ(observed, caller);
  EXPECT_EQ(value, 42);
}

TEST(ExecutorTest, NestedParallelForInsideATaskDoesNotDeadlock) {
  // A node of a running graph issues its own ParallelFor on the same
  // executor — the pipeline's shape (shard task -> inner loop). Caller
  // participation keeps this live even at one worker.
  for (const std::size_t workers : WorkerCounts()) {
    Executor executor(workers);
    constexpr std::size_t kInner = 512;
    std::uint64_t sum = 0;
    TaskGraph graph;
    graph.AddTask("outer", [&executor, &sum] {
      std::vector<std::uint64_t> values(kInner, 0);
      ParallelFor(
          &executor, kInner,
          [&values](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) values[i] = i;
          },
          /*grain=*/32);
      sum = std::accumulate(values.begin(), values.end(), std::uint64_t{0});
    });
    ASSERT_TRUE(executor.Run(std::move(graph)).ok());
    EXPECT_EQ(sum, kInner * (kInner - 1) / 2) << workers << " workers";
  }
}

TEST(ExecutorTest, TraceRecordsNamedTaskSpans) {
  Executor executor(2);
  TaskGraph graph;
  const TaskId a = graph.AddTask("alpha-task", [] {});
  const TaskId b = graph.AddTask("beta-task", [] {});
  ASSERT_TRUE(graph.AddEdge(a, b).ok());
  ASSERT_TRUE(executor.Run(std::move(graph)).ok());
  const std::vector<TraceSpan> spans = executor.trace().Spans();
  bool saw_alpha = false;
  bool saw_beta = false;
  for (const TraceSpan& span : spans) {
    if (span.kind != TraceSpan::Kind::kTask) continue;
    const std::string name(span.name);
    if (name == "alpha-task") saw_alpha = true;
    if (name == "beta-task") saw_beta = true;
    EXPECT_GE(span.end_ns, span.begin_ns);
    EXPECT_GE(span.begin_ns, 0);
  }
  EXPECT_TRUE(saw_alpha);
  EXPECT_TRUE(saw_beta);
}

TEST(ExecutorTest, RunGraphNullExecutorRunsInline) {
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id observed;
  TaskGraph graph;
  graph.AddTask("inline", [&] { observed = std::this_thread::get_id(); });
  ASSERT_TRUE(RunGraph(nullptr, std::move(graph)).ok());
  EXPECT_EQ(observed, caller);
}

// ---------------------------------------------------------------------------
// Detached Submit — the live ingest subsystem's dispatch primitive
// (segment compaction, HTTP connection handling).
// ---------------------------------------------------------------------------

/// Blocks until `flag` is true (callbacks run on worker threads, so the
/// test must wait without owning a joinable handle).
void AwaitFlag(const std::atomic<bool>& flag) {
  while (!flag.load(std::memory_order_acquire)) std::this_thread::yield();
}

TEST(ExecutorTest, SubmitRunsDetachedAndInvokesCallback) {
  for (const std::size_t workers : WorkerCounts()) {
    Executor executor(workers);
    std::atomic<int> ran{0};
    std::atomic<bool> called{false};
    Status observed = Status::Internal("callback never ran");
    TaskGraph graph;
    const TaskId a = graph.AddTask("first", [&] { ran.fetch_add(1); });
    const TaskId b = graph.AddTask("second", [&] { ran.fetch_add(1); });
    ASSERT_TRUE(graph.AddEdge(a, b).ok());
    executor.Submit(std::move(graph), [&](Status status) {
      observed = std::move(status);
      called.store(true, std::memory_order_release);
    });
    AwaitFlag(called);
    EXPECT_TRUE(observed.ok()) << observed;
    EXPECT_EQ(ran.load(), 2) << workers << " workers";
  }
}

TEST(ExecutorTest, SubmitWithNullCallbackIsDrainedByShutdown) {
  Executor executor(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    TaskGraph graph;
    graph.AddTask("fire-and-forget", [&] { ran.fetch_add(1); });
    executor.Submit(std::move(graph), {});
  }
  // Shutdown's contract: every submitted graph finishes before it
  // returns — no sleep, no flag needed.
  executor.Shutdown();
  EXPECT_EQ(ran.load(), 8);
}

TEST(ExecutorTest, SubmitFailurePropagatesToTheCallback) {
  Executor executor(2);
  std::atomic<bool> called{false};
  Status observed;
  TaskGraph graph;
  graph.AddTask("doomed-task", [] {
    throw std::runtime_error("submit-boom");
  });
  executor.Submit(std::move(graph), [&](Status status) {
    observed = std::move(status);
    called.store(true, std::memory_order_release);
  });
  AwaitFlag(called);
  ASSERT_FALSE(observed.ok());
  EXPECT_NE(observed.message().find("doomed-task"), std::string::npos)
      << observed.message();
  EXPECT_NE(observed.message().find("submit-boom"), std::string::npos)
      << observed.message();
}

TEST(ExecutorTest, SubmitValidationErrorDegradesToInline) {
  Executor executor(2);
  bool called = false;
  Status observed;
  TaskGraph cyclic;
  const TaskId a = cyclic.AddTask("a", [] {});
  const TaskId b = cyclic.AddTask("b", [] {});
  ASSERT_TRUE(cyclic.AddEdge(a, b).ok());
  ASSERT_TRUE(cyclic.AddEdge(b, a).ok());
  // Degenerate submissions run synchronously: the callback fires before
  // Submit returns, so plain (non-atomic) locals are safe.
  executor.Submit(std::move(cyclic), [&](Status status) {
    observed = std::move(status);
    called = true;
  });
  ASSERT_TRUE(called);
  EXPECT_FALSE(observed.ok());
}

TEST(ExecutorTest, SubmitAfterShutdownRunsInline) {
  Executor executor(2);
  executor.Shutdown();
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id observed_thread;
  bool called = false;
  TaskGraph graph;
  graph.AddTask("post-shutdown", [&] {
    observed_thread = std::this_thread::get_id();
  });
  executor.Submit(std::move(graph), [&](Status status) {
    EXPECT_TRUE(status.ok()) << status;
    called = true;
  });
  EXPECT_TRUE(called);
  EXPECT_EQ(observed_thread, caller);
}

TEST(ExecutorTest, ManyConcurrentSubmitsAllComplete) {
  constexpr int kGraphs = 64;
  Executor executor(4);
  std::atomic<int> ran{0};
  std::atomic<int> callbacks{0};
  for (int i = 0; i < kGraphs; ++i) {
    TaskGraph graph;
    const TaskId a = graph.AddTask("work-a", [&] { ran.fetch_add(1); });
    const TaskId b = graph.AddTask("work-b", [&] { ran.fetch_add(1); });
    ASSERT_TRUE(graph.AddEdge(a, b).ok());
    executor.Submit(std::move(graph), [&](Status status) {
      EXPECT_TRUE(status.ok()) << status;
      callbacks.fetch_add(1, std::memory_order_release);
    });
  }
  executor.Shutdown();
  EXPECT_EQ(ran.load(), kGraphs * 2);
  EXPECT_EQ(callbacks.load(), kGraphs);
}

}  // namespace
}  // namespace sitm::sched
