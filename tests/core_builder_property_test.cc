// Property tests: the builder must produce valid trajectories and
// conserve records under arbitrary (adversarial) detection streams.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/builder.h"

namespace sitm::core {
namespace {

std::vector<RawDetection> RandomDetections(Rng* rng, std::size_t count) {
  std::vector<RawDetection> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const ObjectId object(rng->NextInt(1, 5));
    const CellId cell(rng->NextInt(1, 8));
    const Timestamp start(rng->NextInt(0, 50000));
    // Mix of zero-duration, short, long, and overlapping records.
    const Timestamp end = start + Duration::Seconds(rng->NextInt(0, 4000));
    out.emplace_back(object, cell, start, end);
  }
  return out;
}

class BuilderPropertySweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BuilderPropertySweep, AllOutputsAreValidTrajectories) {
  Rng rng(GetParam());
  TrajectoryBuilder builder;
  const auto result = builder.Build(RandomDetections(&rng, 300));
  ASSERT_TRUE(result.ok()) << result.status();
  for (const SemanticTrajectory& t : *result) {
    EXPECT_TRUE(t.Validate().ok()) << t.ToString();
    EXPECT_TRUE(t.trace().Validate().ok());
  }
}

TEST_P(BuilderPropertySweep, TrajectoryIdsAreSequentialAndUnique) {
  Rng rng(GetParam());
  TrajectoryBuilder builder;
  const auto result = builder.Build(RandomDetections(&rng, 200));
  ASSERT_TRUE(result.ok());
  std::set<std::int64_t> ids;
  for (const SemanticTrajectory& t : *result) {
    EXPECT_TRUE(ids.insert(t.id().value()).second);
  }
}

TEST_P(BuilderPropertySweep, OutputIsSortedByObjectThenTime) {
  Rng rng(GetParam());
  TrajectoryBuilder builder;
  const auto result = builder.Build(RandomDetections(&rng, 200));
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 1; i < result->size(); ++i) {
    const SemanticTrajectory& prev = (*result)[i - 1];
    const SemanticTrajectory& cur = (*result)[i];
    if (prev.object() == cur.object()) {
      EXPECT_LT(prev.end(), cur.start());
    } else {
      EXPECT_LT(prev.object(), cur.object());
    }
  }
}

TEST_P(BuilderPropertySweep, DeterministicForIdenticalInput) {
  Rng rng_a(GetParam());
  Rng rng_b(GetParam());
  TrajectoryBuilder builder_a;
  TrajectoryBuilder builder_b;
  const auto a = builder_a.Build(RandomDetections(&rng_a, 150));
  const auto b = builder_b.Build(RandomDetections(&rng_b, 150));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].trace().size(), (*b)[i].trace().size());
    EXPECT_EQ((*a)[i].object(), (*b)[i].object());
  }
}

TEST_P(BuilderPropertySweep, SessionGapIsRespected) {
  Rng rng(GetParam());
  BuilderOptions options;
  options.session_gap = Duration::Minutes(30);
  TrajectoryBuilder builder(options);
  const auto result = builder.Build(RandomDetections(&rng, 200));
  ASSERT_TRUE(result.ok());
  for (const SemanticTrajectory& t : *result) {
    const auto& intervals = t.trace().intervals();
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_LE((intervals[i].start() - intervals[i - 1].end()).seconds(),
                options.session_gap.seconds());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuilderPropertySweep,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99999u,
                                           20170119u));

}  // namespace
}  // namespace sitm::core
