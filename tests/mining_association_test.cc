#include <gtest/gtest.h>

#include "mining/association.h"

namespace sitm::mining {
namespace {

using core::AnnotationKind;
using core::AnnotationSet;
using core::PresenceInterval;
using core::SemanticTrajectory;
using core::Trace;

PresenceInterval Pi(int cell, std::int64_t start, std::int64_t end) {
  PresenceInterval p;
  p.cell = CellId(cell);
  p.interval = *qsr::TimeInterval::Make(Timestamp(start), Timestamp(end));
  return p;
}

SemanticTrajectory VisitOf(int id, std::initializer_list<int> cells) {
  Trace trace;
  std::int64_t t = 0;
  for (int cell : cells) {
    trace.Append(Pi(cell, t, t + 60));
    t += 100;
  }
  return SemanticTrajectory(TrajectoryId(id), ObjectId(id), std::move(trace),
                            AnnotationSet{{AnnotationKind::kActivity,
                                           "visit"}});
}

// 5 visits: E(87) and S(90) co-occur in 3; P(88) occurs in all 5.
std::vector<SemanticTrajectory> Visits() {
  return {VisitOf(1, {87, 88, 90}), VisitOf(2, {87, 88, 90}),
          VisitOf(3, {87, 88, 90}), VisitOf(4, {88, 91}),
          VisitOf(5, {88})};
}

TEST(FrequentSetsTest, CountsAndPruning) {
  AssociationOptions options;
  options.min_support = 3;
  options.max_set_size = 3;
  const auto frequent = MineFrequentCellSets(Visits(), options);
  ASSERT_TRUE(frequent.ok()) << frequent.status();
  auto support_of = [&](std::vector<CellId> cells) -> int {
    for (const FrequentCellSet& f : *frequent) {
      if (f.cells == cells) return static_cast<int>(f.support);
    }
    return -1;
  };
  EXPECT_EQ(support_of({CellId(88)}), 5);
  EXPECT_EQ(support_of({CellId(87)}), 3);
  EXPECT_EQ(support_of({CellId(87), CellId(88)}), 3);
  EXPECT_EQ(support_of({CellId(87), CellId(88), CellId(90)}), 3);
  EXPECT_EQ(support_of({CellId(91)}), -1);  // support 1 < 3
}

TEST(FrequentSetsTest, RepeatVisitsToACellCountOnce) {
  // The itemset view reduces a visit to its distinct cells.
  const std::vector<SemanticTrajectory> visits = {
      VisitOf(1, {87, 88, 87, 88, 87}), VisitOf(2, {87})};
  AssociationOptions options;
  options.min_support = 2;
  const auto frequent = MineFrequentCellSets(visits, options);
  ASSERT_TRUE(frequent.ok());
  ASSERT_FALSE(frequent->empty());
  EXPECT_EQ(frequent->front().cells, std::vector<CellId>{CellId(87)});
  EXPECT_EQ(frequent->front().support, 2u);
}

TEST(FrequentSetsTest, MaxSetSizeBoundsSearch) {
  AssociationOptions options;
  options.min_support = 3;
  options.max_set_size = 1;
  const auto frequent = MineFrequentCellSets(Visits(), options);
  ASSERT_TRUE(frequent.ok());
  for (const FrequentCellSet& f : *frequent) {
    EXPECT_EQ(f.cells.size(), 1u);
  }
}

TEST(FrequentSetsTest, ValidatesOptions) {
  AssociationOptions options;
  options.min_support = 0;
  EXPECT_FALSE(MineFrequentCellSets(Visits(), options).ok());
  options.min_support = 1;
  options.max_set_size = 0;
  EXPECT_FALSE(MineFrequentCellSets(Visits(), options).ok());
}

TEST(AssociationRulesTest, ConfidenceAndLift) {
  AssociationOptions options;
  options.min_support = 3;
  options.min_confidence = 0.5;
  const auto rules = MineAssociationRules(Visits(), options);
  ASSERT_TRUE(rules.ok()) << rules.status();
  // E -> S: support 3, antecedent support 3 => confidence 1.0;
  // S occurs in 3/5 visits => lift = 1.0 / 0.6 = 1.667.
  bool found_e_to_s = false;
  for (const AssociationRule& rule : *rules) {
    if (rule.antecedent == std::vector<CellId>{CellId(87)} &&
        rule.consequent == std::vector<CellId>{CellId(90)}) {
      found_e_to_s = true;
      EXPECT_EQ(rule.support, 3u);
      EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
      EXPECT_NEAR(rule.lift, 5.0 / 3.0, 1e-9);
    }
    // 88 -> 87 has confidence 3/5 = 0.6.
    if (rule.antecedent == std::vector<CellId>{CellId(88)} &&
        rule.consequent == std::vector<CellId>{CellId(87)}) {
      EXPECT_DOUBLE_EQ(rule.confidence, 0.6);
      EXPECT_NEAR(rule.lift, 1.0, 1e-9);  // 0.6 / (3/5)
    }
  }
  EXPECT_TRUE(found_e_to_s);
}

TEST(AssociationRulesTest, ConfidenceThresholdFilters) {
  AssociationOptions options;
  options.min_support = 3;
  options.min_confidence = 0.99;
  const auto rules = MineAssociationRules(Visits(), options);
  ASSERT_TRUE(rules.ok());
  for (const AssociationRule& rule : *rules) {
    EXPECT_GE(rule.confidence, 0.99);
  }
}

TEST(AssociationRulesTest, SortedByConfidenceThenSupport) {
  AssociationOptions options;
  options.min_support = 3;
  options.min_confidence = 0.1;
  const auto rules = MineAssociationRules(Visits(), options);
  ASSERT_TRUE(rules.ok());
  for (std::size_t i = 1; i < rules->size(); ++i) {
    EXPECT_GE((*rules)[i - 1].confidence, (*rules)[i].confidence);
  }
}

TEST(AssociationRulesTest, EmptyInput) {
  AssociationOptions options;
  const auto rules = MineAssociationRules({}, options);
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());
}

}  // namespace
}  // namespace sitm::mining
