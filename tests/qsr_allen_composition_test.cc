#include <gtest/gtest.h>

#include "base/rng.h"
#include "qsr/allen_composition.h"

namespace sitm::qsr {
namespace {

AllenSet Of(std::initializer_list<AllenRelation> relations) {
  AllenSet s;
  for (AllenRelation r : relations) s = s.With(r);
  return s;
}

TEST(AllenSetTest, BasicOperations) {
  EXPECT_TRUE(AllenSet::None().empty());
  EXPECT_EQ(AllenSet::All().Count(), kNumAllenRelations);
  const AllenSet s = AllenSet::Of(AllenRelation::kBefore)
                         .With(AllenRelation::kMeets);
  EXPECT_EQ(s.Count(), 2);
  EXPECT_TRUE(s.Contains(AllenRelation::kBefore));
  EXPECT_FALSE(s.Contains(AllenRelation::kAfter));
  EXPECT_EQ(s.ToString(), "{before, meets}");
  EXPECT_EQ((s & AllenSet::Of(AllenRelation::kMeets)),
            AllenSet::Of(AllenRelation::kMeets));
}

TEST(AllenSetTest, InverseSetMapsMembers) {
  const AllenSet s = Of({AllenRelation::kBefore, AllenRelation::kDuring});
  const AllenSet inv = AllenInverseSet(s);
  EXPECT_TRUE(inv.Contains(AllenRelation::kAfter));
  EXPECT_TRUE(inv.Contains(AllenRelation::kContains));
  EXPECT_EQ(inv.Count(), 2);
}

TEST(AllenCompositionTest, EqualsIsTheIdentity) {
  for (int i = 0; i < kNumAllenRelations; ++i) {
    const auto r = static_cast<AllenRelation>(i);
    EXPECT_EQ(AllenCompose(AllenRelation::kEquals, r), AllenSet::Of(r));
    EXPECT_EQ(AllenCompose(r, AllenRelation::kEquals), AllenSet::Of(r));
  }
}

TEST(AllenCompositionTest, LiteratureEntries) {
  // Entries transcribed from Allen (1983), checked against the
  // brute-force construction.
  EXPECT_EQ(AllenCompose(AllenRelation::kBefore, AllenRelation::kBefore),
            AllenSet::Of(AllenRelation::kBefore));
  EXPECT_EQ(AllenCompose(AllenRelation::kMeets, AllenRelation::kMeets),
            AllenSet::Of(AllenRelation::kBefore));
  EXPECT_EQ(AllenCompose(AllenRelation::kDuring, AllenRelation::kDuring),
            AllenSet::Of(AllenRelation::kDuring));
  EXPECT_EQ(AllenCompose(AllenRelation::kOverlaps, AllenRelation::kOverlaps),
            Of({AllenRelation::kBefore, AllenRelation::kMeets,
                AllenRelation::kOverlaps}));
  EXPECT_EQ(AllenCompose(AllenRelation::kDuring, AllenRelation::kBefore),
            AllenSet::Of(AllenRelation::kBefore));
  // a meets b and c metBy b pin a.end == b.start == c.end: the
  // composition is exactly the same-end relations.
  EXPECT_EQ(AllenCompose(AllenRelation::kMeets, AllenRelation::kMetBy),
            Of({AllenRelation::kFinishes, AllenRelation::kEquals,
                AllenRelation::kFinishedBy}));
  // The same-start dual: metBy ; meets.
  EXPECT_EQ(AllenCompose(AllenRelation::kMetBy, AllenRelation::kMeets),
            Of({AllenRelation::kStarts, AllenRelation::kEquals,
                AllenRelation::kStartedBy}));
  EXPECT_EQ(AllenCompose(AllenRelation::kStarts, AllenRelation::kDuring),
            AllenSet::Of(AllenRelation::kDuring));
  // before ; after is total ignorance.
  EXPECT_EQ(AllenCompose(AllenRelation::kBefore, AllenRelation::kAfter),
            AllenSet::All());
}

struct AllenPair {
  AllenRelation r1;
  AllenRelation r2;
};

class AllenCompositionSweep : public ::testing::TestWithParam<AllenPair> {};

TEST_P(AllenCompositionSweep, NeverEmpty) {
  const auto [r1, r2] = GetParam();
  EXPECT_FALSE(AllenCompose(r1, r2).empty());
}

TEST_P(AllenCompositionSweep, ConverseCoherent) {
  // (R1 ; R2)^-1 == R2^-1 ; R1^-1.
  const auto [r1, r2] = GetParam();
  EXPECT_EQ(AllenInverseSet(AllenCompose(r1, r2)),
            AllenCompose(AllenInverse(r2), AllenInverse(r1)))
      << AllenRelationName(r1) << " ; " << AllenRelationName(r2);
}

TEST_P(AllenCompositionSweep, SoundOnRandomWitnesses) {
  // Any concrete triple realizing (r1, r2) must yield a relation inside
  // the composed set.
  const auto [r1, r2] = GetParam();
  Rng rng(static_cast<std::uint64_t>(static_cast<int>(r1) * 13 +
                                     static_cast<int>(r2) + 1));
  int found = 0;
  for (int trial = 0; trial < 400 && found < 10; ++trial) {
    auto interval = [&]() {
      const std::int64_t s = rng.NextInt(0, 14);
      return *TimeInterval::Make(Timestamp(s),
                                 Timestamp(s + rng.NextInt(1, 6)));
    };
    const TimeInterval a = interval();
    const TimeInterval b = interval();
    const TimeInterval c = interval();
    if (ClassifyIntervals(a, b) != r1 || ClassifyIntervals(b, c) != r2) {
      continue;
    }
    ++found;
    EXPECT_TRUE(AllenCompose(r1, r2).Contains(ClassifyIntervals(a, c)));
  }
}

std::vector<AllenPair> AllPairs() {
  std::vector<AllenPair> out;
  for (int i = 0; i < kNumAllenRelations; ++i) {
    for (int j = 0; j < kNumAllenRelations; ++j) {
      out.push_back(
          {static_cast<AllenRelation>(i), static_cast<AllenRelation>(j)});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(All169, AllenCompositionSweep,
                         ::testing::ValuesIn(AllPairs()));

TEST(AllenCompositionTest, SetCompositionIsUnionOfPointwise) {
  const AllenSet s1 = Of({AllenRelation::kBefore, AllenRelation::kMeets});
  const AllenSet s2 = AllenSet::Of(AllenRelation::kDuring);
  EXPECT_EQ(AllenCompose(s1, s2),
            AllenCompose(AllenRelation::kBefore, AllenRelation::kDuring) |
                AllenCompose(AllenRelation::kMeets, AllenRelation::kDuring));
}

}  // namespace
}  // namespace sitm::qsr
