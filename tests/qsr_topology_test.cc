#include <gtest/gtest.h>

#include "geom/polygon.h"
#include "geom/relate.h"
#include "qsr/topology.h"

namespace sitm::qsr {
namespace {

using geom::Polygon;

TEST(TopologyTest, NamesAreThePaperTerms) {
  EXPECT_EQ(TopologicalRelationName(TopologicalRelation::kDisjoint),
            "disjoint");
  EXPECT_EQ(TopologicalRelationName(TopologicalRelation::kMeet), "meet");
  EXPECT_EQ(TopologicalRelationName(TopologicalRelation::kOverlap), "overlap");
  EXPECT_EQ(TopologicalRelationName(TopologicalRelation::kCoveredBy),
            "coveredBy");
  EXPECT_EQ(TopologicalRelationName(TopologicalRelation::kInsideOf),
            "insideOf");
  EXPECT_EQ(TopologicalRelationName(TopologicalRelation::kCovers), "covers");
  EXPECT_EQ(TopologicalRelationName(TopologicalRelation::kContains),
            "contains");
  EXPECT_EQ(TopologicalRelationName(TopologicalRelation::kEqual), "equal");
}

class TopologyRelationSweep
    : public ::testing::TestWithParam<TopologicalRelation> {};

TEST_P(TopologyRelationSweep, ParseInvertsName) {
  const TopologicalRelation r = GetParam();
  const auto parsed = ParseTopologicalRelation(TopologicalRelationName(r));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, r);
}

TEST_P(TopologyRelationSweep, InverseIsAnInvolution) {
  const TopologicalRelation r = GetParam();
  EXPECT_EQ(Inverse(Inverse(r)), r);
}

TEST_P(TopologyRelationSweep, SymmetryMatchesInverseFixpoint) {
  const TopologicalRelation r = GetParam();
  EXPECT_EQ(IsSymmetric(r), Inverse(r) == r);
}

TEST_P(TopologyRelationSweep, SubsetAndSupersetAreConverses) {
  const TopologicalRelation r = GetParam();
  EXPECT_EQ(ImpliesSubsetOfSecond(r), ImpliesSupersetOfSecond(Inverse(r)));
}

INSTANTIATE_TEST_SUITE_P(AllRelations, TopologyRelationSweep,
                         ::testing::ValuesIn(kAllTopologicalRelations));

TEST(TopologyTest, ParseAcceptsRcc8Codes) {
  EXPECT_EQ(ParseTopologicalRelation("DC").value(),
            TopologicalRelation::kDisjoint);
  EXPECT_EQ(ParseTopologicalRelation("EC").value(),
            TopologicalRelation::kMeet);
  EXPECT_EQ(ParseTopologicalRelation("PO").value(),
            TopologicalRelation::kOverlap);
  EXPECT_EQ(ParseTopologicalRelation("TPP").value(),
            TopologicalRelation::kCoveredBy);
  EXPECT_EQ(ParseTopologicalRelation("NTPP").value(),
            TopologicalRelation::kInsideOf);
  EXPECT_EQ(ParseTopologicalRelation("TPPi").value(),
            TopologicalRelation::kCovers);
  EXPECT_EQ(ParseTopologicalRelation("NTPPi").value(),
            TopologicalRelation::kContains);
  EXPECT_EQ(ParseTopologicalRelation("EQ").value(),
            TopologicalRelation::kEqual);
  EXPECT_EQ(ParseTopologicalRelation("touch").value(),
            TopologicalRelation::kMeet);
  EXPECT_FALSE(ParseTopologicalRelation("adjacent").ok());
}

TEST(TopologyTest, InversePairs) {
  EXPECT_EQ(Inverse(TopologicalRelation::kContains),
            TopologicalRelation::kInsideOf);
  EXPECT_EQ(Inverse(TopologicalRelation::kCovers),
            TopologicalRelation::kCoveredBy);
  EXPECT_EQ(Inverse(TopologicalRelation::kOverlap),
            TopologicalRelation::kOverlap);
}

TEST(TopologyTest, ValidOverallStateRelations) {
  // IndoorGML admits every relation except disjoint and meet for joint
  // edges (§2.1).
  EXPECT_FALSE(ImpliesInteriorIntersection(TopologicalRelation::kDisjoint));
  EXPECT_FALSE(ImpliesInteriorIntersection(TopologicalRelation::kMeet));
  int valid = 0;
  for (TopologicalRelation r : kAllTopologicalRelations) {
    if (ImpliesInteriorIntersection(r)) ++valid;
  }
  EXPECT_EQ(valid, 6);
}

TEST(TopologyTest, HierarchyRelationsAreExactlyContainsAndCovers) {
  for (TopologicalRelation r : kAllTopologicalRelations) {
    EXPECT_EQ(IsHierarchyRelation(r),
              r == TopologicalRelation::kContains ||
                  r == TopologicalRelation::kCovers)
        << TopologicalRelationName(r);
  }
}

// ---- Geometric classification: one case per relation, plus tricky
// configurations.

TEST(ClassifyRegionsTest, Disjoint) {
  EXPECT_EQ(ClassifyRegions(Polygon::Rectangle(0, 0, 1, 1),
                            Polygon::Rectangle(5, 5, 6, 6))
                .value(),
            TopologicalRelation::kDisjoint);
}

TEST(ClassifyRegionsTest, MeetAlongSharedWall) {
  EXPECT_EQ(ClassifyRegions(Polygon::Rectangle(0, 0, 2, 2),
                            Polygon::Rectangle(2, 0, 4, 2))
                .value(),
            TopologicalRelation::kMeet);
}

TEST(ClassifyRegionsTest, MeetAtSingleCorner) {
  EXPECT_EQ(ClassifyRegions(Polygon::Rectangle(0, 0, 2, 2),
                            Polygon::Rectangle(2, 2, 4, 4))
                .value(),
            TopologicalRelation::kMeet);
}

TEST(ClassifyRegionsTest, PartialOverlap) {
  EXPECT_EQ(ClassifyRegions(Polygon::Rectangle(0, 0, 3, 3),
                            Polygon::Rectangle(2, 2, 5, 5))
                .value(),
            TopologicalRelation::kOverlap);
}

TEST(ClassifyRegionsTest, InscribedSquareIsCoveredByDiamond) {
  // The radius-2 diamond centered at (1,1) contains the unit-2 square
  // with all four square corners on the diamond's boundary: a
  // tangential proper part where every boundary contact is a vertex
  // touch.
  const Polygon square = Polygon::Rectangle(0, 0, 2, 2);
  const Polygon diamond({{1, -1}, {3, 1}, {1, 3}, {-1, 1}});
  EXPECT_EQ(ClassifyRegions(square, diamond).value(),
            TopologicalRelation::kCoveredBy);
  EXPECT_EQ(ClassifyRegions(diamond, square).value(),
            TopologicalRelation::kCovers);
}

TEST(ClassifyRegionsTest, OverlapWithOneVertexOnBoundary) {
  // The diamond's bottom vertex lies exactly on the square's boundary
  // while other edges cross properly; the vertex touch must not mask
  // the overlap.
  const Polygon square = Polygon::Rectangle(0, 0, 4, 4);
  const Polygon diamond({{2, 0}, {5, 3}, {2, 6}, {-1, 3}});
  EXPECT_EQ(ClassifyRegions(square, diamond).value(),
            TopologicalRelation::kOverlap);
}

TEST(ClassifyRegionsTest, Equal) {
  EXPECT_EQ(ClassifyRegions(Polygon::Rectangle(0, 0, 2, 2),
                            Polygon::Rectangle(0, 0, 2, 2))
                .value(),
            TopologicalRelation::kEqual);
}

TEST(ClassifyRegionsTest, EqualWithDifferentVertexSets) {
  // Same region, one ring with an extra collinear vertex.
  const Polygon a = Polygon::Rectangle(0, 0, 2, 2);
  const Polygon b({{0, 0}, {1, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_EQ(ClassifyRegions(a, b).value(), TopologicalRelation::kEqual);
}

TEST(ClassifyRegionsTest, InsideAndContains) {
  const Polygon outer = Polygon::Rectangle(0, 0, 10, 10);
  const Polygon inner = Polygon::Rectangle(4, 4, 6, 6);
  EXPECT_EQ(ClassifyRegions(inner, outer).value(),
            TopologicalRelation::kInsideOf);
  EXPECT_EQ(ClassifyRegions(outer, inner).value(),
            TopologicalRelation::kContains);
}

TEST(ClassifyRegionsTest, CoveredByAndCovers) {
  // Inner rectangle touching the outer boundary: tangential proper part.
  const Polygon outer = Polygon::Rectangle(0, 0, 10, 10);
  const Polygon inner = Polygon::Rectangle(0, 4, 2, 6);
  EXPECT_EQ(ClassifyRegions(inner, outer).value(),
            TopologicalRelation::kCoveredBy);
  EXPECT_EQ(ClassifyRegions(outer, inner).value(),
            TopologicalRelation::kCovers);
}

TEST(ClassifyRegionsTest, StripPartitionIsCoveredBy) {
  // A zone strip spanning the full height of its floor (the Louvre
  // layout): shares two edges with the parent -> coveredBy.
  const Polygon floor = Polygon::Rectangle(0, 0, 100, 20);
  const Polygon strip = Polygon::Rectangle(25, 0, 50, 20);
  EXPECT_EQ(ClassifyRegions(strip, floor).value(),
            TopologicalRelation::kCoveredBy);
}

TEST(ClassifyRegionsTest, ClassificationIsConverseCoherent) {
  // For several configurations, relation(a,b) == Inverse(relation(b,a)).
  const std::vector<std::pair<Polygon, Polygon>> cases = {
      {Polygon::Rectangle(0, 0, 1, 1), Polygon::Rectangle(3, 3, 4, 4)},
      {Polygon::Rectangle(0, 0, 2, 2), Polygon::Rectangle(2, 0, 4, 2)},
      {Polygon::Rectangle(0, 0, 3, 3), Polygon::Rectangle(1, 1, 6, 6)},
      {Polygon::Rectangle(0, 0, 9, 9), Polygon::Rectangle(2, 2, 3, 3)},
      {Polygon::Rectangle(0, 0, 9, 9), Polygon::Rectangle(0, 0, 3, 3)},
      {Polygon::Rectangle(0, 0, 5, 5), Polygon::Rectangle(0, 0, 5, 5)},
  };
  for (const auto& [a, b] : cases) {
    EXPECT_EQ(ClassifyRegions(a, b).value(),
              Inverse(ClassifyRegions(b, a).value()));
  }
}

TEST(ClassifyRegionsTest, ConcaveContainment) {
  // A small square nested in the arm of an L-shape.
  const Polygon l({{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
  const Polygon in_arm = Polygon::Rectangle(0.5, 2.5, 1.5, 3.5);
  EXPECT_EQ(ClassifyRegions(in_arm, l).value(),
            TopologicalRelation::kInsideOf);
  // A square in the notch (outside the L, touching its inner corner).
  const Polygon in_notch = Polygon::Rectangle(2, 2, 4, 4);
  EXPECT_EQ(ClassifyRegions(in_notch, l).value(),
            TopologicalRelation::kMeet);
}

TEST(ClassifyRegionsTest, RejectsInvalidPolygons) {
  EXPECT_FALSE(ClassifyRegions(Polygon({{0, 0}, {1, 0}, {2, 0}}),
                               Polygon::Rectangle(0, 0, 1, 1))
                   .ok());
  EXPECT_FALSE(ClassifyRegions(Polygon::Rectangle(0, 0, 1, 1),
                               Polygon({{0, 0}, {2, 2}, {2, 0}, {0, 2}}))
                   .ok());
}

TEST(RelateTest, EvidenceFlagsForOverlap) {
  const auto ev = geom::Relate(Polygon::Rectangle(0, 0, 3, 3),
                               Polygon::Rectangle(2, 2, 5, 5));
  ASSERT_TRUE(ev.ok());
  EXPECT_TRUE(ev->boundaries_cross);
  EXPECT_TRUE(ev->a_point_inside_b);
  EXPECT_TRUE(ev->a_point_outside_b);
}

TEST(RelateTest, ContainsRegionPredicate) {
  EXPECT_TRUE(geom::ContainsRegion(Polygon::Rectangle(0, 0, 10, 10),
                                   Polygon::Rectangle(1, 1, 2, 2))
                  .value());
  EXPECT_TRUE(geom::ContainsRegion(Polygon::Rectangle(0, 0, 10, 10),
                                   Polygon::Rectangle(0, 0, 2, 2))
                  .value());  // tangential
  EXPECT_FALSE(geom::ContainsRegion(Polygon::Rectangle(0, 0, 2, 2),
                                    Polygon::Rectangle(1, 1, 3, 3))
                   .value());
}

TEST(RelateTest, IntersectsPredicate) {
  EXPECT_TRUE(geom::Intersects(Polygon::Rectangle(0, 0, 2, 2),
                               Polygon::Rectangle(2, 0, 4, 2))
                  .value());  // touching counts
  EXPECT_FALSE(geom::Intersects(Polygon::Rectangle(0, 0, 1, 1),
                                Polygon::Rectangle(3, 3, 4, 4))
                   .value());
}

}  // namespace
}  // namespace sitm::qsr
