// HttpServer protocol behavior over real loopback sockets: routing,
// status codes for malformed/oversized input, query-string decoding,
// Content-Length bodies, and the Stop/drain contract — with handlers
// running both inline and detached on the executor.
#include "live/http_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sched/executor.h"

namespace sitm::live {
namespace {

/// Sends `raw` to 127.0.0.1:port and returns everything the server
/// writes back until it closes the connection.
std::string RawRoundTrip(int port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

int StatusOf(const std::string& response) {
  // "HTTP/1.1 NNN ..."
  if (response.size() < 12) return -1;
  return std::stoi(response.substr(9, 3));
}

std::string BodyOf(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

/// Serve() on a background thread; joined (after Stop) in TearDown.
class ServerFixture {
 public:
  explicit ServerFixture(TaskRunner* runner = nullptr) : server_(runner) {}

  HttpServer& server() { return server_; }

  void Start() {
    ASSERT_TRUE(server_.Bind(0).ok());
    // The server under test owns no threads; the accept loop needs one.
    serve_thread_ = std::thread(  // sitm-lint: allow(naked-thread)
        [this] { serve_status_ = server_.Serve(); });
  }

  Status StopAndJoin() {
    server_.Stop();
    if (serve_thread_.joinable()) serve_thread_.join();
    return serve_status_;
  }

  ~ServerFixture() {
    server_.Stop();
    if (serve_thread_.joinable()) serve_thread_.join();
  }

 private:
  HttpServer server_;
  std::thread serve_thread_;  // sitm-lint: allow(naked-thread)
  Status serve_status_;
};

void RegisterEchoRoutes(HttpServer& server) {
  server.Handle("GET", "/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong";
    return response;
  });
  server.Handle("POST", "/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.body;
    return response;
  });
  server.Handle("GET", "/params", [](const HttpRequest& request) {
    HttpResponse response;
    for (const auto& [key, value] : request.query_params) {
      response.body += key + "=" + value + ";";
    }
    return response;
  });
}

TEST(HttpServerTest, RoutesAndStatusCodes) {
  ServerFixture fixture;
  RegisterEchoRoutes(fixture.server());
  fixture.Start();
  const int port = fixture.server().port();
  ASSERT_GT(port, 0);

  const std::string ok =
      RawRoundTrip(port, "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(StatusOf(ok), 200);
  EXPECT_EQ(BodyOf(ok), "pong");
  EXPECT_NE(ok.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(ok.find("Connection: close"), std::string::npos);

  // Unknown path vs known path with the wrong method.
  EXPECT_EQ(StatusOf(RawRoundTrip(
                port, "GET /nowhere HTTP/1.1\r\n\r\n")),
            404);
  EXPECT_EQ(StatusOf(RawRoundTrip(port, "POST /ping HTTP/1.1\r\n\r\n")),
            405);
  // Malformed request line.
  EXPECT_EQ(StatusOf(RawRoundTrip(port, "NONSENSE\r\n\r\n")), 400);
  // Declared body over the 8 MiB cap: rejected before it is read.
  EXPECT_EQ(StatusOf(RawRoundTrip(
                port,
                "POST /echo HTTP/1.1\r\nContent-Length: 9000000\r\n\r\n")),
            413);
  // Bad Content-Length value.
  EXPECT_EQ(StatusOf(RawRoundTrip(
                port, "POST /echo HTTP/1.1\r\nContent-Length: abc\r\n\r\n")),
            400);
  // Headers over the 16 KiB cap.
  EXPECT_EQ(StatusOf(RawRoundTrip(
                port, "GET /ping HTTP/1.1\r\nX-Pad: " +
                          std::string(17 * 1024, 'a') + "\r\n\r\n")),
            431);

  EXPECT_TRUE(fixture.StopAndJoin().ok());
}

TEST(HttpServerTest, BodyAndQueryDecoding) {
  ServerFixture fixture;
  RegisterEchoRoutes(fixture.server());
  fixture.Start();
  const int port = fixture.server().port();

  const std::string payload = "{\"detections\": []}";
  const std::string echoed = RawRoundTrip(
      port, "POST /echo HTTP/1.1\r\nContent-Length: " +
                std::to_string(payload.size()) + "\r\n\r\n" + payload);
  EXPECT_EQ(StatusOf(echoed), 200);
  EXPECT_EQ(BodyOf(echoed), payload);

  // Percent- and plus-decoding in query values, order preserved,
  // repeated keys kept.
  const std::string params = RawRoundTrip(
      port,
      "GET /params?cell=42&name=mona%20lisa&q=a%2Bb+c&cell=7 "
      "HTTP/1.1\r\n\r\n");
  EXPECT_EQ(StatusOf(params), 200);
  EXPECT_EQ(BodyOf(params), "cell=42;name=mona lisa;q=a+b c;cell=7;");

  // Percent-decoded path still routes exactly.
  EXPECT_EQ(StatusOf(RawRoundTrip(port, "GET /%70ing HTTP/1.1\r\n\r\n")),
            200);

  EXPECT_TRUE(fixture.StopAndJoin().ok());
}

TEST(HttpServerTest, ConcurrentConnectionsOnExecutor) {
  sched::Executor executor(4);
  ServerFixture fixture(&executor);
  RegisterEchoRoutes(fixture.server());
  fixture.Start();
  const int port = fixture.server().port();

  std::vector<std::thread> clients;  // sitm-lint: allow(naked-thread)
  std::vector<std::string> responses(16);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    clients.emplace_back(  // sitm-lint: allow(naked-thread)
        [port, i, &responses] {
          const std::string body = "client-" + std::to_string(i);
          responses[i] = RawRoundTrip(
              port, "POST /echo HTTP/1.1\r\nContent-Length: " +
                        std::to_string(body.size()) + "\r\n\r\n" + body);
        });
  }
  // sitm-lint: allow(naked-thread)
  for (std::thread& t : clients) t.join();
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(StatusOf(responses[i]), 200) << i;
    EXPECT_EQ(BodyOf(responses[i]), "client-" + std::to_string(i));
  }

  // Stop from the main thread while the server idles: Serve must
  // return OK with every connection drained.
  EXPECT_TRUE(fixture.StopAndJoin().ok());
}

TEST(HttpServerTest, StopIsIdempotentAndServeReturnsClean) {
  ServerFixture fixture;
  RegisterEchoRoutes(fixture.server());
  fixture.Start();
  EXPECT_EQ(StatusOf(RawRoundTrip(fixture.server().port(),
                                  "GET /ping HTTP/1.1\r\n\r\n")),
            200);
  fixture.server().Stop();
  fixture.server().Stop();  // idempotent
  EXPECT_TRUE(fixture.StopAndJoin().ok());
}

}  // namespace
}  // namespace sitm::live
